"""Observability tour: trace, metrics, watchdogs, and profiling.

``repro.obs`` attaches to the simulation kernel's observer/profiler
hooks, so any kernel-driven run can be watched without being changed.
This example drives one failure-injected serving run four ways:

1. **bare** — the reference result;
2. **fully observed** — a Chrome-trace recorder, a grid-sampled metrics
   registry, and a kernel hotspot profiler, all composed onto one hook;
   the result must be byte-identical to the bare run (that is the
   contract the trace-identity goldens pin);
3. **watched** — an SLO watchdog evaluating burn-rate/fleet-down alert
   rules online, annotating the trace, and feeding ``obs diff``-style
   run-to-run regression analytics;
4. **a profiled DSE sweep** — cache hit/miss split and per-worker
   busy/idle over a tiny design space, cold then warm.

Run:  python examples/observability_tour.py
"""

import json
import tempfile
from pathlib import Path

from repro import FailurePlan, ProTEA, SynthParams
from repro.dse import Axis, Objective, SearchSpace, explore
from repro.obs import (
    AnomalyDetector,
    KernelProfiler,
    MetricsSampler,
    TraceRecorder,
    Watchdog,
    compose,
    diff_runs,
    render_diff,
    render_kernel_profile,
)
from repro.serving import (
    ModelMix,
    PoissonArrivals,
    fixed_size,
    render_serving_report,
    simulate,
    summarize,
)

accel = ProTEA.synthesize(SynthParams())
mix = ModelMix({"model2-lhc-trigger": 3.0, "model1-peng-isqed21": 1.0})
reqs = PoissonArrivals(500, mix, seed=0).generate(800)
plan = FailurePlan(mtbf_ms=300.0, mttr_ms=25.0, seed=7)
knobs = dict(scheduler="model-affinity", batching=fixed_size(4),
             reprogram_latency_ms=5.0, failures=plan)

# ------------------------------------------------------------------ #
# 1 + 2. The same run, bare and fully observed — byte-identical.
# ------------------------------------------------------------------ #
bare = simulate(accel, reqs, 3, **knobs)

tracer = TraceRecorder()
sampler = MetricsSampler(grid_ms=20.0)
profiler = KernelProfiler()
observed = simulate(accel, reqs, 3, observer=compose(tracer, sampler),
                    profiler=profiler, **knobs)

assert observed.trace == bare.trace
assert observed.records == bare.records
print(render_serving_report(
    summarize(observed, slo_ms=50.0),
    title="Observed run (identical to the bare run)"))

counters = sampler.registry.as_dict()["counters"]
print(f"\nmetrics: {counters['arrivals']:.0f} arrivals -> "
      f"{counters['completions']:.0f} completions, "
      f"{counters['failures']:.0f} fault(s), "
      f"{counters['requeues']:.0f} requeue(s), "
      f"{len(sampler.registry.series)} grid samples")
assert counters["arrivals"] == counters["completions"] == len(reqs)
assert sampler.registry.gauges["queued"].value == 0.0  # drained

with tempfile.TemporaryDirectory() as tmp:
    trace_path = Path(tmp) / "serve.trace.json"
    tracer.dump(trace_path, run_config={"qps": 500, "seed": 0})
    doc = json.loads(trace_path.read_text())
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    print(f"trace: {len(doc['traceEvents'])} events ({len(spans)} spans) "
          "-> open in chrome://tracing or ui.perfetto.dev")
    assert any(e["name"] == "down" for e in spans)  # fault windows drawn

print()
print(render_kernel_profile(profiler))
assert profiler.total_events > len(reqs)  # arrivals + frees + faults

# ------------------------------------------------------------------ #
# 3. The same run again under an SLO watchdog: burn-rate paging and
#    anomaly onsets computed online, in simulated time — and still
#    byte-identical to the bare run.
# ------------------------------------------------------------------ #
watchdog = Watchdog(slo_ms=50.0, target=0.99, fast_window_ms=100.0,
                    slow_window_ms=400.0,
                    detector=AnomalyDetector(min_samples=16, debounce=3))
watched = simulate(accel, reqs, 3, observer=watchdog, **knobs)
assert watched.records == bare.records  # watching never perturbs

summary = watchdog.summary()
print(f"\nwatchdog: {summary['violations']} SLO violation(s) across "
      f"{summary['completions']} completions "
      f"(attainment {summary['attainment']:.4f}), "
      f"{summary['alerts']} alert(s), "
      f"max burn {summary['max_burn_rate']:.3g}x budget")
assert summary["completions"] == len(reqs)
assert summary["rules"]["fleet_down"]["alerts"] > 0   # faults paged
assert summary["rules"]["burn_rate"]["alerts"] > 0    # budget burned
report = summarize(watched, slo_ms=50.0, watch=summary)
assert report.watch == summary  # rides into the report / --json block

watchdog.annotate(tracer)  # alert spans land on the alerts row
assert any(e.get("tid") == 10_000 for e in tracer.events)

# Run-to-run analytics, same engine as `repro obs diff`: a clean fleet
# vs the failure-injected one flags real regressions; a run diffed
# against itself never does.
clean = simulate(accel, reqs, 3, scheduler="model-affinity",
                 batching=fixed_size(4), reprogram_latency_ms=5.0)
self_diff = diff_runs(report.as_dict(), report.as_dict())
assert self_diff.ok and not self_diff.regressions

vs_clean = diff_runs(summarize(clean, slo_ms=50.0).as_dict(),
                     report.as_dict())
assert not vs_clean.ok  # failures must register as regressions
regressed = {e.key for e in vs_clean.regressions}
assert "availability" in regressed or "slo_attainment" in regressed \
    or any("p99" in k for k in regressed)
print(f"obs diff vs clean fleet: {len(vs_clean.regressions)} "
      f"regression(s), e.g. {sorted(regressed)[0]}")
print(render_diff(self_diff, name_a="run.json", name_b="rerun.json"))

# ------------------------------------------------------------------ #
# 4. A profiled DSE sweep: cold misses, then a warm all-hit resume.
# ------------------------------------------------------------------ #


def measure(point, settings):
    accel = ProTEA.synthesize(SynthParams(n_tiles_mha=point["tiles"]))
    latency = accel.latency_ms("model2-lhc-trigger")
    return {"latency_ms": latency, "tiles": float(point["tiles"])}


space = SearchSpace((Axis("tiles", (8, 12, 48)),))
objectives = (Objective("latency_ms", "min"),)

from repro.dse import EvalCache  # noqa: E402 - grouped with its use

with tempfile.TemporaryDirectory() as tmp:
    cache = EvalCache(Path(tmp) / "cache")
    cold = explore(space, measure, objectives=objectives, cache=cache,
                   profile=True)
    warm = explore(space, measure, objectives=objectives, cache=cache,
                   profile=True)

print(f"\nDSE cold: {cold.profile.cache_misses} miss(es), "
      f"{cold.profile.eval_wall_s * 1e3:.1f} ms of evaluation across "
      f"{sorted(cold.profile.workers())}")
print(f"DSE warm: {warm.profile.cache_hits} hit(s), "
      f"{len(warm.profile.points)} fresh evaluation(s)")
assert cold.profile.cache_misses == 3 and cold.profile.cache_hits == 0
assert warm.profile.cache_hits == 3 and not warm.profile.points
assert ([r.objectives for r in cold.results]
        == [r.objectives for r in warm.results])

print("\nOK: observation changed nothing, and every pillar — trace, "
      "metrics, watchdog, profile — saw the run")
