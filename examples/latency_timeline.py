"""Where do the cycles go?  Event-driven timeline of one inference.

Replays the compiled controller program against the engine/AXI resource
constraints and renders a Gantt chart of one encoder layer — making the
paper's claims visible: the FFN engines dominate ("the most time- and
resource-intensive components"), attention is a sliver, and weight
loading strings along the shared AXI port.

Also cross-checks the event-driven total against the closed-form
latency model (they are independent implementations of the same
hardware semantics).

Run:  python examples/latency_timeline.py
"""

from repro import BERT_VARIANT, SynthParams
from repro.core import DatapathFormats, TimelineSimulator
from repro.core.attention_module import AttentionModule
from repro.core.ffn_module import FFNModule
from repro.core.latency import LatencyModel, LatencyOptions

synth = SynthParams()
fmts = DatapathFormats.fix8()
att, ffn = AttentionModule(synth, fmts), FFNModule(synth, fmts)

one_layer = BERT_VARIANT.with_(num_layers=1)
for label, opts in (("single-buffered (published)", LatencyOptions()),
                    ("double-buffered (what-if)",
                     LatencyOptions(double_buffered=True))):
    sim = TimelineSimulator(att, ffn, opts)
    timeline = sim.simulate(one_layer)
    analytic = LatencyModel(synth, att, ffn, opts).evaluate(one_layer, 200.0)
    delta = timeline.total_cycles / analytic.total_cycles - 1
    print(f"\n=== {label} ===")
    print(f"event-driven total : {timeline.total_cycles:>10,} cycles "
          f"({timeline.total_cycles / 200e3:.1f} ms @ 200 MHz)")
    print(f"closed-form total  : {analytic.total_cycles:>10,} cycles "
          f"(agreement: {delta:+.2%})")
    busiest = {k: v for k, v in timeline.occupancy().items()
               if v > 0.02}
    print("occupancy >2%:", {k: f"{v:.0%}" for k, v in busiest.items()})
    assert abs(delta) < 0.02

print("\nGantt, one layer, single-buffered (collapsed per-head rows):")
sim = TimelineSimulator(att, ffn, LatencyOptions())
timeline = sim.simulate(one_layer)
# Collapse the 8 per-head rows into one line each for readability.
chart = timeline.gantt(width=68)
lines = [l for l in chart.splitlines()
         if "[" not in l or "[0]" in l]
print("\n".join(lines))
print("timeline OK")
