"""Bench: regenerate Table III (cross-platform comparison)."""

from repro.experiments import table3


def test_table3_regeneration(benchmark, save_artifact):
    result = benchmark(table3.run)
    protea_rows = [r for r in result.rows if "ProTEA" in r[2]]
    assert len(protea_rows) == 4
    # The paper's qualitative outcome per model row.
    speedups = {r[0]: r[-1] for r in protea_rows}
    assert speedups["#2"] > 1.0  # beats Titan XP (HEP)
    assert speedups["#4"] > 1.0  # beats Titan XP (NLP)
    assert speedups["#1"] < 1.0  # loses to pruned-model CPU run
    text = table3.render(result)
    save_artifact("table3.txt", text)
    print("\n" + text)
