"""Micro-benchmarks: the functional fixed-point datapath.

These time the simulator itself (Python-side throughput), which is
what a user iterating on quantization or tiling options experiences.
"""

import numpy as np
import pytest

from repro import ProTEA, SynthParams, TransformerConfig
from repro.core import DatapathFormats, SoftmaxUnit
from repro.core.engines import tiled_fx_matmul_2d, tiled_fx_matmul_reduction
from repro.fixedpoint import FxTensor, QFormat
from repro.nn import build_encoder

CFG = TransformerConfig("bench", d_model=128, num_heads=4, num_layers=2,
                        seq_len=32)
SYNTH = SynthParams(ts_mha=32, ts_ffn=64, max_heads=4, max_layers=4,
                    max_d_model=128, max_seq_len=64, seq_chunk=32)


@pytest.fixture(scope="module")
def accel():
    a = ProTEA.synthesize(SYNTH, enforce_fit=False)
    a.program(CFG).load_weights(build_encoder(CFG, seed=0))
    return a


@pytest.fixture(scope="module")
def x_fx(accel):
    x = np.random.default_rng(0).normal(0, 0.5, (32, 128))
    return FxTensor.from_float(x, accel.formats.activation)


def test_bench_full_forward_fix8(benchmark, accel, x_fx):
    out = benchmark(accel.run_fx, x_fx)
    assert out.raw.shape == (32, 128)


def test_bench_attention_module(benchmark, accel, x_fx):
    layer = accel.weights.layers[0]
    concat, _ = benchmark(accel.attention.forward, x_fx, layer)
    assert concat.raw.shape == (32, 128)


def test_bench_ffn_module(benchmark, accel, x_fx):
    layer = accel.weights.layers[0]
    concat, _ = accel.attention.forward(x_fx, layer)
    trace = benchmark(accel.ffn.forward, concat, x_fx, layer)
    assert trace.out.raw.shape == (32, 128)


def test_bench_softmax_unit(benchmark):
    unit = SoftmaxUnit()
    scores = FxTensor.from_float(
        np.random.default_rng(1).normal(0, 2, (64, 64)), QFormat(8, 4))
    probs = benchmark(unit, scores)
    assert probs.raw.shape == (64, 64)


def test_bench_tiled_matmul_reduction(benchmark):
    rng = np.random.default_rng(2)
    x = FxTensor(rng.integers(-128, 128, (64, 768)), QFormat(8, 4))
    w = FxTensor(rng.integers(-128, 128, (768, 96)), QFormat(8, 4))
    out = benchmark(tiled_fx_matmul_reduction, x, w, 64)
    assert np.array_equal(out.raw, x.raw @ w.raw)


def test_bench_tiled_matmul_2d(benchmark):
    rng = np.random.default_rng(3)
    x = FxTensor(rng.integers(-128, 128, (64, 768)), QFormat(8, 4))
    w = FxTensor(rng.integers(-128, 128, (768, 768)), QFormat(8, 4))
    out = benchmark(tiled_fx_matmul_2d, x, w, 128, 128)
    assert out.raw.shape == (64, 768)


def test_bench_quantize_roundtrip(benchmark):
    from repro.fixedpoint import dequantize, quantize

    data = np.random.default_rng(4).normal(size=(256, 768))
    fmt = QFormat(8, 4)

    def roundtrip():
        return dequantize(quantize(data, fmt), fmt)

    out = benchmark(roundtrip)
    assert out.shape == data.shape


def test_bench_fix16_overhead(benchmark):
    """fix16 is the same code path — the bench documents its cost."""
    a = ProTEA.synthesize(SYNTH, formats=DatapathFormats.fix16(),
                          enforce_fit=False)
    a.program(CFG).load_weights(build_encoder(CFG, seed=0))
    x = FxTensor.from_float(
        np.random.default_rng(0).normal(0, 0.5, (32, 128)),
        a.formats.activation)
    out = benchmark(a.run_fx, x)
    assert out.raw.shape == (32, 128)
