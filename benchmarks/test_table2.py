"""Bench: regenerate Table II (FPGA accelerator comparison)."""

from repro.experiments import table2


def test_table2_regeneration(benchmark, save_artifact):
    result = benchmark(table2.run)
    assert len(result.rows) == 10
    text = table2.render(result)
    save_artifact("table2.txt", text)
    print("\n" + text)
