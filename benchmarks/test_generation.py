"""Bench: token-level continuous batching + the KV-cache decode win.

Times a generation simulation pushing thousands of token-level steps
through the event heap, and pins the two domain regressions the
generation path exists to deliver: continuous batching beats
single-sequence slots on the TTFT tail under load, and the prefill/
decode split stays weight-streaming bound.  Appends TTFT/TPOT/goodput
records to ``benchmarks/output/BENCH_results.json`` and writes the
rendered report to ``benchmarks/output/generation_report.txt``.
"""

from repro import ProTEA, SynthParams, get_model
from repro.serving import (
    LengthSampler,
    ModelMix,
    PoissonArrivals,
    attach_generation_lengths,
    render_generation_report,
    simulate_generation,
    summarize_generation,
)


def _workload(accel, qps, duration_ms, seed=0):
    arrivals = PoissonArrivals(
        qps, ModelMix("model2-lhc-trigger"), seed=seed).generate(duration_ms)
    return attach_generation_lengths(
        arrivals, LengthSampler("uniform", 8, 16),
        LengthSampler("geometric", 8, 64, mean_extra=12.0),
        seed=seed, max_total=accel.synth.max_seq_len)


def test_bench_continuous_batching(benchmark, save_artifact, record_perf):
    accel = ProTEA.synthesize(SynthParams())
    requests = _workload(accel, qps=400, duration_ms=4_000)
    assert len(requests) > 1_000

    result = benchmark(simulate_generation, accel, requests, 2, slots=8)
    report = summarize_generation(result, ttft_slo_ms=50.0, tpot_slo_ms=5.0)

    # Conservation + sane tails.
    assert result.total_requests == len(requests)
    assert result.total_tokens == sum(r.output_tokens for r in requests)
    assert report.p50_ttft_ms <= report.p95_ttft_ms <= report.p99_ttft_ms

    # The continuous-batching win: single-sequence slots serialize whole
    # requests, so the same load must show a worse TTFT tail.
    solo = summarize_generation(
        simulate_generation(accel, requests, 2, slots=1))
    assert report.p99_ttft_ms < solo.p99_ttft_ms

    record_perf("generation", "ttft_p99", report.p99_ttft_ms, "ms")
    record_perf("generation", "tpot_mean", report.mean_tpot_ms, "ms")
    record_perf("generation", "tokens_per_s", report.tokens_per_s, "tok/s")
    if report.goodput_tokens_per_s is not None:
        record_perf("generation", "goodput", report.goodput_tokens_per_s,
                    "tok/s")
    record_perf("generation", "batching_ttft_p99_speedup",
                solo.p99_ttft_ms / report.p99_ttft_ms, "x")
    save_artifact("generation_report.txt", render_generation_report(
        report, title="Bench: 2 instances x 8 slots, Poisson 400 qps"))


def test_bench_prefill_decode_split(record_perf):
    accel = ProTEA.synthesize(SynthParams())
    rep = accel.generation_report(get_model("bert-variant"),
                                  prompt_len=32, output_len=32)
    # Decode must be weight-streaming bound on the published instance.
    layer = rep.decode_layer
    assert layer.load_total > layer.compute_total
    # The cache-dependent attention term must actually grow.
    model = accel.latency_model
    short = model.decode_layer_cycles(8, 768, 8)
    long = model.decode_layer_cycles(96, 768, 8)
    assert long.compute["qk"] > short.compute["qk"]

    record_perf("generation", "ttft_bert", rep.ttft_ms, "ms")
    record_perf("generation", "tpot_bert", rep.tpot_ms, "ms")
    record_perf("generation", "decode_stream_ratio",
                layer.load_total / layer.compute_total, "x")
