"""Bench: unified-kernel engine vs the legacy closure loops.

Runs the serving benchmark scenario (10k mixed-model requests over 8
instances, model-affinity dispatch, fixed-4 batching, 5 ms reprogram
penalty) through both engines of the *same* ``ClusterSimulator`` and
records the wall-clock speedup in ``BENCH_results.json``.  The two
engines are bit-identical on this scenario (asserted here and pinned
by the trace-identity goldens), so the speedup is pure overhead
reduction — the kernel must stay >= 2x or the bench fails.

Also records the generation engine's speedup (informational: the
continuous-batching loop is lighter, so the win is smaller), and the
million-request scale benchmark ``serving_1M_requests``: the calendar
queue + merged arrivals + batched completions + summary detail against
the seed kernel (the legacy loop), gated at >= 10x
(``sim_kernel_scale_x``, enforced again by the CI bench-trend job).
"""

import gc
import math
import time

from repro import ProTEA, SynthParams
from repro.serving import (
    LengthSampler,
    ModelMix,
    PoissonArrivals,
    attach_generation_lengths,
    fixed_size,
    summarize,
)
from repro.serving.cluster import ClusterSimulator
from repro.serving.generation import GenerationClusterSimulator

MIX = ModelMix({
    "model2-lhc-trigger": 4.0,
    "model1-peng-isqed21": 2.0,
    "model3-efa-trans": 1.0,
})


def _race(fn_a, fn_b, rounds=7):
    """Interleaved best-of timing for two equivalent functions.

    Alternating A/B within each round decorrelates slow drift (CPU
    frequency, cache pressure from earlier benches) from the ratio;
    GC is paused around each timed call so collection pauses don't
    land on one side of the comparison.
    """
    best_a = best_b = float("inf")
    result_a = result_b = None
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(rounds):
            gc.collect()
            gc.disable()
            t0 = time.perf_counter()
            result_a = fn_a()
            best_a = min(best_a, time.perf_counter() - t0)
            gc.enable()
            gc.collect()
            gc.disable()
            t0 = time.perf_counter()
            result_b = fn_b()
            best_b = min(best_b, time.perf_counter() - t0)
            gc.enable()
    finally:
        if gc_was_enabled:
            gc.enable()
    return best_a, result_a, best_b, result_b


def test_bench_kernel_vs_legacy_serving(record_perf):
    accel = ProTEA.synthesize(SynthParams())
    requests = PoissonArrivals(900, MIX, seed=0).generate(11_500)
    assert len(requests) > 9_000
    sim = ClusterSimulator(accel, 8, scheduler="model-affinity",
                           batching=fixed_size(4),
                           reprogram_latency_ms=5.0)
    sim.run(requests)  # warm the service-time memos for both engines

    t_legacy, legacy, t_kernel, kernel = _race(
        lambda: sim.run_legacy(requests), lambda: sim.run(requests))

    # Identical simulations — the comparison is apples to apples.
    assert legacy.trace == kernel.trace
    assert legacy.records == kernel.records
    assert legacy.instances == kernel.instances

    speedup = t_legacy / t_kernel
    record_perf("sim", "serving_kernel_speedup", speedup, "x")
    record_perf("sim", "serving_legacy_run", t_legacy, "s")
    record_perf("sim", "serving_kernel_run", t_kernel, "s")
    assert speedup >= 2.0, (
        f"kernel engine must be >= 2x the legacy loop, got "
        f"{speedup:.2f}x ({t_legacy * 1e3:.1f} ms -> "
        f"{t_kernel * 1e3:.1f} ms)")


def test_bench_kernel_vs_legacy_generation(record_perf):
    accel = ProTEA.synthesize(SynthParams())
    arrivals = PoissonArrivals(40, MIX, seed=1).generate(4_000)
    requests = attach_generation_lengths(
        arrivals, LengthSampler("fixed", 16), LengthSampler("fixed", 24),
        max_total=accel.synth.max_seq_len)
    assert len(requests) > 100
    sim = GenerationClusterSimulator(accel, 2, slots=8,
                                     scheduler="least-loaded")
    sim.run(requests)  # warm the prefill/decode memos

    t_legacy, legacy, t_kernel, kernel = _race(
        lambda: sim.run_legacy(requests), lambda: sim.run(requests))
    assert legacy.trace == kernel.trace
    assert legacy.records == kernel.records

    speedup = t_legacy / t_kernel
    record_perf("sim", "generation_kernel_speedup", speedup, "x")
    assert speedup >= 1.0, (
        f"generation kernel regressed below the legacy loop: "
        f"{speedup:.2f}x")


def _timed_once(fn):
    """One GC-quiet wall-clock measurement (the runs are seconds-long,
    so best-of racing would triple an already heavy bench)."""
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
    finally:
        if gc_was_enabled:
            gc.enable()
    return elapsed, result


def test_bench_serving_1M_requests(record_perf):
    """The web-scale row: ~1M requests through one serving fleet.

    Seed kernel = the preserved legacy loop (full per-request records,
    binary heap, every arrival an event).  Scaled kernel = the calendar
    queue with merged arrivals, batched completions, and summary
    detail.  Both reduce through :func:`summarize`, and the reports
    must agree (percentiles exactly, means to the ulp) before any
    number is recorded — the 10x is a refactor, not an approximation.
    """
    accel = ProTEA.synthesize(SynthParams())
    requests = PoissonArrivals(
        12_600, ModelMix({"model2-lhc-trigger": 1.0}),
        seed=7).generate(80_000)
    assert len(requests) > 1_000_000
    sim = ClusterSimulator(accel, 8, scheduler="round-robin",
                           batching=fixed_size(8))
    # Warm the service-time memos on a prefix so neither timed run
    # pays first-call synthesis costs.
    sim.run(requests[:2_000], detail="summary")
    sim.run_legacy(requests[:2_000])

    t_seed, legacy = _timed_once(lambda: sim.run_legacy(requests))
    t_fast, summary = _timed_once(
        lambda: sim.run(requests, detail="summary"))

    rep_seed = summarize(legacy)
    rep_fast = summarize(summary)
    assert rep_fast.total_requests == len(requests)
    assert rep_fast.total_requests == rep_seed.total_requests
    assert rep_fast.p50_ms == rep_seed.p50_ms
    assert rep_fast.p99_ms == rep_seed.p99_ms
    assert rep_fast.horizon_ms == rep_seed.horizon_ms
    assert math.isclose(rep_fast.mean_latency_ms,
                        rep_seed.mean_latency_ms, rel_tol=1e-12)

    scale = t_seed / t_fast
    record_perf("sim", "sim_kernel_scale_x", scale, "x",
                context={"requests": len(requests)})
    record_perf("sim", "serving_1M_seed_s", t_seed, "s")
    record_perf("sim", "serving_1M_requests_s", t_fast, "s")
    assert scale >= 10.0, (
        f"scale refactor must hold >= 10x over the seed kernel at 1M "
        f"requests, got {scale:.2f}x ({t_seed:.2f} s -> {t_fast:.2f} s)")
