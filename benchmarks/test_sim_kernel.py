"""Bench: unified-kernel engine vs the legacy closure loops.

Runs the serving benchmark scenario (10k mixed-model requests over 8
instances, model-affinity dispatch, fixed-4 batching, 5 ms reprogram
penalty) through both engines of the *same* ``ClusterSimulator`` and
records the wall-clock speedup in ``BENCH_results.json``.  The two
engines are bit-identical on this scenario (asserted here and pinned
by the trace-identity goldens), so the speedup is pure overhead
reduction — the kernel must stay >= 2x or the bench fails.

Also records the generation engine's speedup (informational: the
continuous-batching loop is lighter, so the win is smaller).
"""

import gc
import time

from repro import ProTEA, SynthParams
from repro.serving import (
    LengthSampler,
    ModelMix,
    PoissonArrivals,
    attach_generation_lengths,
    fixed_size,
)
from repro.serving.cluster import ClusterSimulator
from repro.serving.generation import GenerationClusterSimulator

MIX = ModelMix({
    "model2-lhc-trigger": 4.0,
    "model1-peng-isqed21": 2.0,
    "model3-efa-trans": 1.0,
})


def _race(fn_a, fn_b, rounds=7):
    """Interleaved best-of timing for two equivalent functions.

    Alternating A/B within each round decorrelates slow drift (CPU
    frequency, cache pressure from earlier benches) from the ratio;
    GC is paused around each timed call so collection pauses don't
    land on one side of the comparison.
    """
    best_a = best_b = float("inf")
    result_a = result_b = None
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(rounds):
            gc.collect()
            gc.disable()
            t0 = time.perf_counter()
            result_a = fn_a()
            best_a = min(best_a, time.perf_counter() - t0)
            gc.enable()
            gc.collect()
            gc.disable()
            t0 = time.perf_counter()
            result_b = fn_b()
            best_b = min(best_b, time.perf_counter() - t0)
            gc.enable()
    finally:
        if gc_was_enabled:
            gc.enable()
    return best_a, result_a, best_b, result_b


def test_bench_kernel_vs_legacy_serving(record_perf):
    accel = ProTEA.synthesize(SynthParams())
    requests = PoissonArrivals(900, MIX, seed=0).generate(11_500)
    assert len(requests) > 9_000
    sim = ClusterSimulator(accel, 8, scheduler="model-affinity",
                           batching=fixed_size(4),
                           reprogram_latency_ms=5.0)
    sim.run(requests)  # warm the service-time memos for both engines

    t_legacy, legacy, t_kernel, kernel = _race(
        lambda: sim.run_legacy(requests), lambda: sim.run(requests))

    # Identical simulations — the comparison is apples to apples.
    assert legacy.trace == kernel.trace
    assert legacy.records == kernel.records
    assert legacy.instances == kernel.instances

    speedup = t_legacy / t_kernel
    record_perf("sim", "serving_kernel_speedup", speedup, "x")
    record_perf("sim", "serving_legacy_run", t_legacy, "s")
    record_perf("sim", "serving_kernel_run", t_kernel, "s")
    assert speedup >= 2.0, (
        f"kernel engine must be >= 2x the legacy loop, got "
        f"{speedup:.2f}x ({t_legacy * 1e3:.1f} ms -> "
        f"{t_kernel * 1e3:.1f} ms)")


def test_bench_kernel_vs_legacy_generation(record_perf):
    accel = ProTEA.synthesize(SynthParams())
    arrivals = PoissonArrivals(40, MIX, seed=1).generate(4_000)
    requests = attach_generation_lengths(
        arrivals, LengthSampler("fixed", 16), LengthSampler("fixed", 24),
        max_total=accel.synth.max_seq_len)
    assert len(requests) > 100
    sim = GenerationClusterSimulator(accel, 2, slots=8,
                                     scheduler="least-loaded")
    sim.run(requests)  # warm the prefill/decode memos

    t_legacy, legacy, t_kernel, kernel = _race(
        lambda: sim.run_legacy(requests), lambda: sim.run(requests))
    assert legacy.trace == kernel.trace
    assert legacy.records == kernel.records

    speedup = t_legacy / t_kernel
    record_perf("sim", "generation_kernel_speedup", speedup, "x")
    assert speedup >= 1.0, (
        f"generation kernel regressed below the legacy loop: "
        f"{speedup:.2f}x")
