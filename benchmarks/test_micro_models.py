"""Micro-benchmarks: the analytical models (scheduler, latency, DSE).

These are the models a design-space exploration loops over thousands
of times; their evaluation speed is the simulator's headline capability
versus the paper's 36-hour HLS compile per point.
"""

import pytest

from repro import ProTEA, SynthParams
from repro.core import accelerator_resources, tile_size_sweep
from repro.core.attention_module import AttentionModule
from repro.core.engines import DatapathFormats
from repro.core.ffn_module import FFNModule
from repro.core.latency import LatencyModel
from repro.isa import compile_program
from repro.nn import BERT_VARIANT


@pytest.fixture(scope="module")
def latency_model():
    synth = SynthParams()
    fmts = DatapathFormats.fix8()
    return LatencyModel(synth, AttentionModule(synth, fmts),
                        FFNModule(synth, fmts))


def test_bench_latency_evaluation(benchmark, latency_model):
    rep = benchmark(latency_model.evaluate, BERT_VARIANT, 200.0)
    assert rep.latency_ms > 0


def test_bench_synthesize(benchmark):
    accel = benchmark(ProTEA.synthesize, SynthParams())
    assert accel.clock_mhz == pytest.approx(200.0)


def test_bench_resource_estimation(benchmark):
    est = benchmark(accelerator_resources, SynthParams())
    assert est.dsps == 3612


def test_bench_compile_bert_program(benchmark):
    prog = benchmark(compile_program, BERT_VARIANT, SynthParams())
    assert len(prog) > 1000


def test_bench_full_tile_sweep(benchmark):
    points = benchmark(tile_size_sweep)
    assert len(points) == 15


def test_bench_scheduler_deep_nest(benchmark):
    from repro.core.engines import qkv_loop_nest
    from repro.hls import schedule_loop

    nest = qkv_loop_nest(64, 96, 64)
    sched = benchmark(schedule_loop, nest)
    assert sched.cycles > 0
