"""Bench: persistent-pool + prescreen DSE vs brute force, as perf records.

The headline race: a brute-force **serial full-grid** sweep against
the production configuration — persistent worker pool plus surrogate
prescreen — over the same grid, with the frontier asserted *identical*
before any timing is recorded.  ``dse_parallel_speedup_x`` is the
ratio, and it is **enforced**: the run fails (and records nothing)
below ``max(2.0, 0.5 * host_cores)``.  On multi-core hosts the pool
provides the scaling; on small hosts the surrogate prescreen provides
it by fully evaluating only the surviving fronts — same answer, less
work, measured honestly against the strongest serial baseline.

Also recorded: ``dse_prescreen_reduction_x`` (full evaluations saved
by the prescreen), the pooled-without-prescreen time (so the pool's
own contribution is trackable), and the cold/warm cache split.  The
warm-resume contract (zero re-evaluations, identical frontier) stays
hard-asserted, along with the paper regression that the 12 MHA x 6 FFN
tile optimum sits on its own grid's frontier.

Writes the rendered exploration table to ``benchmarks/output/dse.txt``.
"""

import os
import time

from repro.dse import (
    EvalCache,
    evaluate_point,
    explore,
    get_objectives,
    render_exploration,
    standard_space,
)

#: A workload heavy enough that evaluation dominates engine overhead.
SETTINGS = {"qps": 2000.0, "duration_ms": 1000.0, "seed": 0}

SPACE = standard_space(models=("bert-variant", "model2-lhc-trigger"),
                       tiles_mha=(8, 12, 16, 24, 48), tiles_ffn=(3, 4, 6))
OBJECTIVES = get_objectives()

HOST_CPUS = os.cpu_count() or 1
JOBS = max(2, HOST_CPUS)
#: Fraction of each batch the prescreen forwards (whole fronts kept).
KEEP = 0.25


def _explore(**kwargs):
    return explore(SPACE, evaluate_point, objectives=OBJECTIVES,
                   settings=SETTINGS, **kwargs)


def _frontier(result):
    return [(r.point, r.objectives) for r in result.frontier]


def test_bench_parallel_speedup(record_perf, save_artifact):
    _explore()  # warm the per-process synthesis memo for a fair race

    t0 = time.perf_counter()
    brute = _explore(jobs=1)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    pooled = _explore(jobs=JOBS)
    t_pool = time.perf_counter() - t0

    t0 = time.perf_counter()
    fast = _explore(jobs=JOBS, strategy="prescreen",
                    strategy_options={"inner": "grid", "keep": KEEP})
    t_fast = time.perf_counter() - t0

    # The pool must change nothing but the wall clock...
    assert ([(r.point, r.objectives, r.error) for r in brute.results]
            == [(r.point, r.objectives, r.error) for r in pooled.results])
    assert brute.n_evaluated == pooled.n_evaluated == SPACE.size
    # ...and the prescreen must keep the exact frontier while actually
    # saving full evaluations.
    assert _frontier(fast) == _frontier(brute)
    assert 0 < fast.n_evaluated < brute.n_evaluated

    # The published optimum sits on its own grid's frontier.
    frontier_tiles = {(r.point["tiles_mha"], r.point["tiles_ffn"])
                      for r in brute.frontier}
    assert (12, 6) in frontier_tiles

    speedup = t_serial / t_fast
    gate = max(2.0, 0.5 * HOST_CPUS)
    assert speedup >= gate, (
        f"prescreen+pool sweep only {speedup:.2f}x faster than brute "
        f"serial (gate {gate:.1f}x): serial {t_serial:.2f}s, "
        f"pool {t_pool:.2f}s, prescreen+pool {t_fast:.2f}s")

    context = {"host_cpus": HOST_CPUS, "jobs": JOBS, "keep": KEEP,
               "full_evals": brute.n_evaluated,
               "prescreen_evals": fast.n_evaluated}
    record_perf("dse", "dse_serial_s", t_serial, "s")
    record_perf("dse", "dse_pool_s", t_pool, "s")
    record_perf("dse", "dse_parallel_s", t_fast, "s")
    record_perf("dse", "dse_parallel_speedup_x", speedup, "x",
                context)
    record_perf("dse", "dse_prescreen_reduction_x",
                brute.n_evaluated / fast.n_evaluated, "x", context)
    record_perf("dse", "dse_host_cpus", float(HOST_CPUS), "cores")
    record_perf("dse", "dse_grid_points", float(SPACE.size), "points")
    save_artifact("dse.txt", render_exploration(
        brute, title=f"DSE bench grid ({SPACE.size} points)"))


def test_bench_cache_speedup(record_perf, tmp_path):
    t0 = time.perf_counter()
    cold = _explore(cache=EvalCache(tmp_path))
    t_cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = _explore(cache=EvalCache(tmp_path))
    t_warm = time.perf_counter() - t0

    # Resume contract: zero re-evaluations, identical frontier.
    assert cold.n_evaluated == SPACE.size
    assert warm.n_evaluated == 0
    assert warm.cache_hits == SPACE.size
    assert _frontier(warm) == _frontier(cold)

    record_perf("dse", "dse_cold_s", t_cold, "s")
    record_perf("dse", "dse_warm_s", t_warm, "s")
    record_perf("dse", "dse_warm_speedup_x", t_cold / t_warm, "x")
