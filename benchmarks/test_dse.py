"""Bench: the DSE engine's two headline speedups, as perf records.

Measures (a) serial vs ``multiprocessing``-pool evaluation of one
standard grid and (b) cold vs warm (cache-resumed) runs of the same
sweep, appending all six numbers to ``BENCH_results.json`` (schema in
``benchmarks/README.md``).  The parallel speedup is recorded, not
asserted — it tracks the host's core count — while the cache contract
(warm run re-evaluates *nothing* and reproduces the frontier exactly)
is hard-asserted, along with a frontier-sanity regression: the paper's
12 MHA x 6 FFN tile optimum must sit on the frontier of its own grid.

Writes the rendered exploration table to ``benchmarks/output/dse.txt``.
"""

import os
import time

from repro.dse import (
    EvalCache,
    evaluate_point,
    explore,
    get_objectives,
    render_exploration,
    standard_space,
)

#: A workload heavy enough that evaluation dominates engine overhead.
SETTINGS = {"qps": 1000.0, "duration_ms": 500.0, "seed": 0}

SPACE = standard_space(models=("bert-variant", "model2-lhc-trigger"),
                       tiles_mha=(8, 12, 16, 24, 48), tiles_ffn=(3, 4, 6))
OBJECTIVES = get_objectives()


def _explore(**kwargs):
    return explore(SPACE, evaluate_point, objectives=OBJECTIVES,
                   settings=SETTINGS, **kwargs)


def test_bench_parallel_speedup(record_perf, save_artifact):
    _explore()  # warm the per-process synthesis memo for a fair race

    t0 = time.perf_counter()
    serial = _explore(jobs=1)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    pooled = _explore(jobs=2)
    t_parallel = time.perf_counter() - t0

    # The pool must change nothing but the wall clock.
    assert ([(r.point, r.objectives, r.error) for r in serial.results]
            == [(r.point, r.objectives, r.error) for r in pooled.results])
    assert serial.n_evaluated == pooled.n_evaluated == SPACE.size

    # The published optimum sits on its own grid's frontier.
    frontier_tiles = {(r.point["tiles_mha"], r.point["tiles_ffn"])
                      for r in serial.frontier}
    assert (12, 6) in frontier_tiles

    record_perf("dse", "dse_serial_s", t_serial, "s")
    record_perf("dse", "dse_parallel_s", t_parallel, "s")
    record_perf("dse", "dse_parallel_speedup_x",
                t_serial / t_parallel, "x")
    # The speedup tracks the host: record its core count next to it so
    # a < 1x reading on a single-core CI box is interpretable.
    record_perf("dse", "dse_host_cpus", float(os.cpu_count() or 1),
                "cores")
    record_perf("dse", "dse_grid_points", float(SPACE.size), "points")
    save_artifact("dse.txt", render_exploration(
        serial, title=f"DSE bench grid ({SPACE.size} points)"))


def test_bench_cache_speedup(record_perf, tmp_path):
    t0 = time.perf_counter()
    cold = _explore(cache=EvalCache(tmp_path))
    t_cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = _explore(cache=EvalCache(tmp_path))
    t_warm = time.perf_counter() - t0

    # Resume contract: zero re-evaluations, identical frontier.
    assert cold.n_evaluated == SPACE.size
    assert warm.n_evaluated == 0
    assert warm.cache_hits == SPACE.size
    assert ([(r.point, r.objectives) for r in warm.frontier]
            == [(r.point, r.objectives) for r in cold.frontier])

    record_perf("dse", "dse_cold_s", t_cold, "s")
    record_perf("dse", "dse_warm_s", t_warm, "s")
    record_perf("dse", "dse_warm_speedup_x", t_cold / t_warm, "x")
