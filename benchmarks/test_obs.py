"""Bench: observability must be free when disabled, cheap when on.

PR 6 threaded observer/profiler hooks through the kernel and engine
drain loops.  With nothing attached, the engines execute the exact
pre-hook code path, so the hooks must cost nothing — this bench holds
that contract against the committed perf history.

The detector is legacy-normalized: the serving benchmark scenario runs
through both the untouched legacy loop and the kernel engine
(interleaved best-of timing), and the kernel's speedup is compared
against the median of the historical ``serving_kernel_speedup``
records in ``BENCH_results.json``.  The legacy loop predates the hooks
and was not modified, so dividing by it cancels machine speed, and

    obs_overhead_x = median(historical speedup) / current speedup

is the bare path's slowdown relative to the pre-hook kernel — asserted
<= 1.05x.  A second bench records what a fully instrumented run
(TraceRecorder + MetricsSampler + KernelProfiler) costs relative to a
bare one; that ratio is informational, since observability is opt-in,
but the instrumented results must stay byte-identical.
"""

import json
import statistics
from pathlib import Path

from repro import ProTEA, SynthParams
from repro.obs import KernelProfiler, MetricsSampler, TraceRecorder, compose
from repro.serving import ModelMix, PoissonArrivals, fixed_size
from repro.serving.cluster import ClusterSimulator

from test_sim_kernel import _race

RESULTS_PATH = Path(__file__).parent / "output" / "BENCH_results.json"

#: The serving benchmark scenario (same as test_sim_kernel, so the
#: historical speedup records are comparable).
MIX = ModelMix({
    "model2-lhc-trigger": 4.0,
    "model1-peng-isqed21": 2.0,
    "model3-efa-trans": 1.0,
})


def _scenario():
    accel = ProTEA.synthesize(SynthParams())
    requests = PoissonArrivals(900, MIX, seed=0).generate(11_500)
    sim = ClusterSimulator(accel, 8, scheduler="model-affinity",
                           batching=fixed_size(4),
                           reprogram_latency_ms=5.0)
    sim.run(requests)  # warm the service-time memos
    return sim, requests


def _historical_speedups():
    """Committed ``serving_kernel_speedup`` history (pre-hook runs)."""
    if not RESULTS_PATH.exists():
        return []
    try:
        history = json.loads(RESULTS_PATH.read_text())
    except (ValueError, OSError):
        return []
    return [r["value"] for r in history
            if isinstance(r, dict)
            and r.get("suite") == "sim"
            and r.get("metric") == "serving_kernel_speedup"]


def test_bench_disabled_path_overhead(record_perf):
    sim, requests = _scenario()

    t_legacy, legacy, t_kernel, kernel = _race(
        lambda: sim.run_legacy(requests), lambda: sim.run(requests))
    assert legacy.trace == kernel.trace
    assert legacy.records == kernel.records

    current = t_legacy / t_kernel
    prior = _historical_speedups()
    # A fresh checkout with no history falls back to the kernel bench's
    # own >= 2x floor as the reference (conservative: the recorded
    # medians sit well above it, so the fallback only loosens).
    baseline = statistics.median(prior) if prior else 2.0
    overhead = baseline / current

    record_perf("obs", "obs_overhead_x", overhead, "x",
                context={"baseline_speedup": baseline,
                         "baseline_runs": len(prior),
                         "current_speedup": current})
    assert overhead <= 1.05, (
        f"disabled-observability kernel is {overhead:.3f}x the pre-hook "
        f"kernel (legacy-normalized: speedup {current:.2f}x vs "
        f"historical median {baseline:.2f}x over {len(prior)} runs) — "
        "the observer/profiler hooks must be free when detached")


def test_bench_enabled_path_cost(record_perf):
    sim, requests = _scenario()

    def observed_run():
        tracer = TraceRecorder()
        sampler = MetricsSampler(grid_ms=10.0)
        profiler = KernelProfiler()
        result = sim.run(requests, observer=compose(tracer, sampler),
                         profiler=profiler)
        return result, tracer, sampler, profiler

    t_bare, bare, t_obs, (obs, tracer, sampler, profiler) = _race(
        lambda: sim.run(requests), observed_run, rounds=5)

    # Instrumentation watched a byte-identical simulation...
    assert bare.trace == obs.trace
    assert bare.records == obs.records
    # ...and actually saw it: spans recorded, counters conserved,
    # every popped event profiled.
    assert len(tracer.events) > len(requests)  # arrive instants + spans
    counters = sampler.registry.as_dict()["counters"]
    assert counters["arrivals"] == len(requests)
    assert counters["completions"] == len(requests)
    assert profiler.total_events > 0

    ratio = t_obs / t_bare
    record_perf("obs", "obs_enabled_overhead_x", ratio, "x",
                context={"observers": "trace+metrics+profiler",
                         "requests": len(requests)})
    # Informational, not a perf gate — but a runaway ratio means an
    # observer grew per-event work far beyond bookkeeping.
    assert ratio < 25.0, (
        f"fully instrumented run costs {ratio:.1f}x a bare one")
