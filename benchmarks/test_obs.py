"""Bench: observability must be free when disabled, cheap when on.

PR 6 threaded observer/profiler hooks through the kernel and engine
drain loops.  With nothing attached, the engines execute the exact
pre-hook code path, so the hooks must cost nothing — this bench holds
that contract against the committed perf history.

The detector is legacy-normalized: the serving benchmark scenario runs
through both the untouched legacy loop and the kernel engine
(interleaved best-of timing), and the kernel's speedup is compared
against the median of the historical ``serving_kernel_speedup``
records in ``BENCH_results.json``.  The legacy loop predates the hooks
and was not modified, so dividing by it cancels machine speed, and

    obs_overhead_x = median(historical speedup) / current speedup

is the bare path's slowdown relative to the pre-hook kernel — asserted
<= 1.05x.  A second bench records what a fully instrumented run
(TraceRecorder + MetricsSampler + KernelProfiler) costs relative to a
bare one; that ratio is informational, since observability is opt-in,
but the instrumented results must stay byte-identical.

PR 7 added the SLO watchdog (another observer).  Its gate is

    watch_overhead_x = t(watchdog attached) / t(trace+metrics+profiler)

on a generation failure scenario — the watchdog must not cost more
than the reference instrumented stack users already accept (asserted
<= 1.05x).  Normalizing by another *attached* run on the same machine
cancels machine speed and the shared hook-dispatch cost, which a raw
attached-vs-bare ratio (recorded in the context as
``watch_vs_bare_x``, informational) cannot: per-event Python dispatch
alone puts that ratio far above any useful gate.
"""

import json
import statistics
from pathlib import Path

from repro import FailurePlan, ProTEA, SynthParams
from repro.obs import (
    AnomalyDetector,
    KernelProfiler,
    MetricsSampler,
    TraceRecorder,
    Watchdog,
    compose,
)
from repro.serving import (
    LengthSampler,
    ModelMix,
    PoissonArrivals,
    attach_generation_lengths,
    fixed_size,
)
from repro.serving.cluster import ClusterSimulator
from repro.serving.generation import GenerationClusterSimulator

from test_sim_kernel import _race

RESULTS_PATH = Path(__file__).parent / "output" / "BENCH_results.json"

#: The serving benchmark scenario (same as test_sim_kernel, so the
#: historical speedup records are comparable).
MIX = ModelMix({
    "model2-lhc-trigger": 4.0,
    "model1-peng-isqed21": 2.0,
    "model3-efa-trans": 1.0,
})


def _scenario():
    accel = ProTEA.synthesize(SynthParams())
    requests = PoissonArrivals(900, MIX, seed=0).generate(11_500)
    sim = ClusterSimulator(accel, 8, scheduler="model-affinity",
                           batching=fixed_size(4),
                           reprogram_latency_ms=5.0)
    sim.run(requests)  # warm the service-time memos
    return sim, requests


def _historical_speedups():
    """Committed ``serving_kernel_speedup`` history (pre-hook runs)."""
    if not RESULTS_PATH.exists():
        return []
    try:
        history = json.loads(RESULTS_PATH.read_text())
    except (ValueError, OSError):
        return []
    return [r["value"] for r in history
            if isinstance(r, dict)
            and r.get("suite") == "sim"
            and r.get("metric") == "serving_kernel_speedup"]


def test_bench_disabled_path_overhead(record_perf):
    sim, requests = _scenario()

    t_legacy, legacy, t_kernel, kernel = _race(
        lambda: sim.run_legacy(requests), lambda: sim.run(requests))
    assert legacy.trace == kernel.trace
    assert legacy.records == kernel.records

    current = t_legacy / t_kernel
    prior = _historical_speedups()
    # A fresh checkout with no history falls back to the kernel bench's
    # own >= 2x floor as the reference (conservative: the recorded
    # medians sit well above it, so the fallback only loosens).
    baseline = statistics.median(prior) if prior else 2.0
    overhead = baseline / current

    record_perf("obs", "obs_overhead_x", overhead, "x",
                context={"baseline_speedup": baseline,
                         "baseline_runs": len(prior),
                         "current_speedup": current})
    assert overhead <= 1.05, (
        f"disabled-observability kernel is {overhead:.3f}x the pre-hook "
        f"kernel (legacy-normalized: speedup {current:.2f}x vs "
        f"historical median {baseline:.2f}x over {len(prior)} runs) — "
        "the observer/profiler hooks must be free when detached")


def test_bench_enabled_path_cost(record_perf):
    sim, requests = _scenario()

    def observed_run():
        tracer = TraceRecorder()
        sampler = MetricsSampler(grid_ms=10.0)
        profiler = KernelProfiler()
        result = sim.run(requests, observer=compose(tracer, sampler),
                         profiler=profiler)
        return result, tracer, sampler, profiler

    t_bare, bare, t_obs, (obs, tracer, sampler, profiler) = _race(
        lambda: sim.run(requests), observed_run, rounds=5)

    # Instrumentation watched a byte-identical simulation...
    assert bare.trace == obs.trace
    assert bare.records == obs.records
    # ...and actually saw it: spans recorded, counters conserved,
    # every popped event profiled.
    assert len(tracer.events) > len(requests)  # arrive instants + spans
    counters = sampler.registry.as_dict()["counters"]
    assert counters["arrivals"] == len(requests)
    assert counters["completions"] == len(requests)
    assert profiler.total_events > 0

    ratio = t_obs / t_bare
    record_perf("obs", "obs_enabled_overhead_x", ratio, "x",
                context={"observers": "trace+metrics+profiler",
                         "requests": len(requests)})
    # Informational, not a perf gate — but a runaway ratio means an
    # observer grew per-event work far beyond bookkeeping.
    assert ratio < 25.0, (
        f"fully instrumented run costs {ratio:.1f}x a bare one")


def test_bench_watchdog_overhead(record_perf):
    """The SLO watchdog must cost no more than the trace+metrics+
    profiler stack it rides alongside (<= 1.05x, gated)."""
    accel = ProTEA.synthesize(SynthParams())
    mix = ModelMix({"model2-lhc-trigger": 2.0, "model1-peng-isqed21": 1.0})
    arrivals = PoissonArrivals(400, mix, seed=3).generate(4_000)
    requests = attach_generation_lengths(
        arrivals, LengthSampler("uniform", 8, 24),
        LengthSampler("geometric", 4, mean_extra=12.0), seed=5,
        max_total=accel.synth.max_seq_len)
    sim = GenerationClusterSimulator(
        accel, 4, scheduler="least-loaded",
        failures=FailurePlan(mtbf_ms=900.0, mttr_ms=40.0, seed=11))
    sim.run(requests)  # warm the service-time memos

    def watched_run():
        watchdog = Watchdog(slo_ms=30.0, target=0.9, fast_window_ms=50.0,
                            slow_window_ms=200.0, burn_threshold=1.5,
                            detector=AnomalyDetector(min_samples=16,
                                                     debounce=2))
        return sim.run(requests, observer=watchdog), watchdog

    def instrumented_run():
        tracer = TraceRecorder()
        sampler = MetricsSampler(grid_ms=10.0)
        return sim.run(requests, observer=compose(tracer, sampler),
                       profiler=KernelProfiler())

    t_obs, instrumented, t_watch, (watched, watchdog) = _race(
        instrumented_run, watched_run, rounds=5)
    t_bare, bare, _, _ = _race(lambda: sim.run(requests), watched_run,
                               rounds=3)

    # The watchdog watched a byte-identical simulation...
    assert watched.records == bare.records == instrumented.records
    assert watched.trace == bare.trace
    # ...and actually armed: completions counted, rules evaluated.
    assert watchdog.completions == len(requests)
    assert watchdog.rules()

    overhead = t_watch / t_obs
    record_perf("obs", "watch_overhead_x", overhead, "x",
                context={"reference": "trace+metrics+profiler",
                         "watch_vs_bare_x": t_watch / t_bare,
                         "requests": len(requests),
                         "completions": watchdog.completions,
                         "alerts": len(watchdog.alerts())})
    assert overhead <= 1.05, (
        f"watchdog-attached run costs {overhead:.3f}x the reference "
        "instrumented run (trace+metrics+profiler) — the watchdog's "
        "per-completion bookkeeping must stay within the established "
        "observer cost envelope")
