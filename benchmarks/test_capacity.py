"""Bench: analytic-first capacity planning vs the seed probe search.

The seed ``plan_capacity`` probed fleet sizes from 1 with exponential
doubling, every probe a full-detail event simulation.  The analytic
rewiring proposes a fleet with closed-form M/M/c + fluid estimates and
confirms with a couple of summary-detail simulations bracketing the
proposal.  Both searches must land on the *same* plan (asserted before
any number is recorded), so ``plan_capacity_speedup_x`` is pure search
overhead removed — gated >= 5x here and by the CI bench-trend job.

The scenario is capacity-planning scale (~250k requests over a 20 s
horizon): the regime the analytic-first path exists for, where every
avoided probe is seconds of event-loop time.
"""

import gc
import time

from repro import ProTEA, SynthParams
from repro.serving import (
    ModelMix,
    PoissonArrivals,
    fixed_size,
    plan_capacity,
)

TARGET_P99_MS = 12.0


def _timed_once(fn):
    """One GC-quiet wall-clock measurement (the probe-mode run is
    tens of seconds, so best-of racing would triple the bench)."""
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
    finally:
        if gc_was_enabled:
            gc.enable()
    return elapsed, result


def test_bench_plan_capacity_analytic_first(record_perf):
    accel = ProTEA.synthesize(SynthParams())
    requests = PoissonArrivals(
        12_600, ModelMix({"model2-lhc-trigger": 1.0}),
        seed=7).generate(20_000.0)
    assert len(requests) > 200_000
    qps = len(requests) / 20.0
    kw = dict(target_p99_ms=TARGET_P99_MS, target_qps=qps,
              scheduler="round-robin", batching=fixed_size(8))

    # Warm the service-time memos so neither timed search pays
    # first-call synthesis costs.
    plan_capacity(accel, requests[:2_000], target_p99_ms=TARGET_P99_MS,
                  scheduler="round-robin", batching=fixed_size(8))

    t_seed, seed_plan = _timed_once(
        lambda: plan_capacity(accel, requests, mode="probe",
                              probe_detail="full", **kw))
    t_fast, fast_plan = _timed_once(
        lambda: plan_capacity(accel, requests, **kw))

    # Identity first: the speedup only counts if the plans agree.
    assert fast_plan.instances == seed_plan.instances
    assert fast_plan.report.p99_ms == seed_plan.report.p99_ms
    assert fast_plan.meets_slo and seed_plan.meets_slo
    assert len(fast_plan.probes) < len(seed_plan.probes)

    speedup = t_seed / t_fast
    record_perf("capacity", "plan_capacity_speedup_x", speedup, "x",
                context={"requests": len(requests),
                         "instances": fast_plan.instances,
                         "probes_seed": len(seed_plan.probes),
                         "probes_analytic": len(fast_plan.probes)})
    record_perf("capacity", "plan_capacity_seed_s", t_seed, "s")
    record_perf("capacity", "plan_capacity_analytic_s", t_fast, "s")
    assert speedup >= 5.0, (
        f"analytic-first planning must hold >= 5x over the seed "
        f"probe-from-1 search, got {speedup:.2f}x "
        f"({t_seed:.2f} s -> {t_fast:.2f} s)")
