"""Bench: event-driven timeline simulation throughput + agreement."""

from repro.core import DatapathFormats, TimelineSimulator
from repro.core.attention_module import AttentionModule
from repro.core.ffn_module import FFNModule
from repro.core.latency import LatencyModel, LatencyOptions
from repro.isa import SynthParams
from repro.nn import BERT_VARIANT


def test_bench_timeline_simulation(benchmark, save_artifact, record_perf):
    synth = SynthParams()
    fmts = DatapathFormats.fix8()
    att, ffn = AttentionModule(synth, fmts), FFNModule(synth, fmts)
    opts = LatencyOptions()
    sim = TimelineSimulator(att, ffn, opts)
    cfg = BERT_VARIANT  # full 12-layer program (~10k instructions)

    timeline = benchmark(sim.simulate, cfg)
    analytic = LatencyModel(synth, att, ffn, opts).evaluate(cfg, 200.0)
    ratio = timeline.total_cycles / analytic.total_cycles
    assert 0.98 < ratio < 1.02
    record_perf("timeline", "bert_total_cycles", timeline.total_cycles,
                "cycles")
    save_artifact("timeline_gantt.txt",
                  timeline.gantt(width=100)
                  + f"\n\nagreement with closed form: {ratio:.4f}")
