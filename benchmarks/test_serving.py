"""Bench: serving-simulator event throughput + policy regression.

Times a 10k-request mixed-model simulation over 8 instances and pins
the policy-comparison regressions (affinity < round-robin switches,
batching > unbatched throughput) so perf work cannot silently change
serving behavior.  Writes the rendered serving report to
``benchmarks/output/serving_report.txt``.
"""

from repro import ProTEA, SynthParams
from repro.serving import (
    ModelMix,
    PoissonArrivals,
    fixed_size,
    render_serving_report,
    simulate,
    summarize,
)

MIX = ModelMix({
    "model2-lhc-trigger": 4.0,
    "model1-peng-isqed21": 2.0,
    "model3-efa-trans": 1.0,
})


def test_bench_cluster_simulation(benchmark, save_artifact, record_perf):
    accel = ProTEA.synthesize(SynthParams())
    # ~0.7 fleet utilization: loaded enough to exercise queueing and
    # batching, not so hot that affinity degenerates into spilling.
    requests = PoissonArrivals(900, MIX, seed=0).generate(11_500)
    assert len(requests) > 9_000  # ~10k events through the heap

    result = benchmark(
        simulate, accel, requests, 8,
        scheduler="model-affinity", batching=fixed_size(4),
        reprogram_latency_ms=5.0,
    )
    report = summarize(result, slo_ms=100.0)

    # Regression guards: conservation, sane utilization, bounded tails.
    assert result.total_requests == len(requests)
    assert 0 < report.utilization < 1
    assert report.p50_ms <= report.p95_ms <= report.p99_ms

    # Affinity must keep reprogramming rare relative to batch count.
    batches = sum(i.batches for i in result.instances)
    assert result.total_switches < 0.2 * batches
    record_perf("serving", "cluster_throughput", report.throughput_rps,
                "req/s")
    record_perf("serving", "cluster_p99_latency", report.p99_ms, "ms")

    save_artifact("serving_report.txt",
                  render_serving_report(report, title="Bench: 8 instances, "
                                        "model-affinity, fixed-4 batching"))
