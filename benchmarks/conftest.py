"""Benchmark support: artifacts and machine-readable perf records.

Two session-scoped sinks:

* ``save_artifact`` — every table/figure bench writes its rendered
  table to ``benchmarks/output/`` so the regenerated artifacts survive
  the run even under pytest's output capture.
* ``record_perf`` — benches append domain metrics (suite, metric,
  value, units) to ``benchmarks/output/BENCH_results.json``.  At
  session end every pytest-benchmark timing is appended automatically
  (metric ``<test>_mean``, units ``s``), so the perf trajectory of each
  suite is trackable across PRs without parsing text dumps.

``BENCH_results.json`` is a JSON array of records; each run *appends*
(tagged with a run timestamp) rather than overwriting, preserving
history.  The record schema is documented in ``benchmarks/README.md``
and validated here at append time.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import List

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"
RESULTS_PATH = OUTPUT_DIR / "BENCH_results.json"

#: Records accumulated by this session (flushed in sessionfinish).
_records: List[dict] = []
_run_stamp = time.strftime("%Y-%m-%dT%H:%M:%S")

#: Units pinned per headline metric.  CI gates compare these metrics
#: across runs by name (`obs bench --gate`), which is only meaningful
#: if every run records them in the same units — a record that
#: disagrees fails the bench that produced it.
METRIC_UNITS = {
    "dse_parallel_speedup_x": "x",
    "dse_prescreen_reduction_x": "x",
    "dse_warm_speedup_x": "x",
    "dse_serial_s": "s",
    "dse_parallel_s": "s",
    "dse_pool_s": "s",
    "dse_cold_s": "s",
    "dse_warm_s": "s",
    "dse_host_cpus": "cores",
    "dse_grid_points": "points",
    "sim_kernel_scale_x": "x",
    "serving_1M_seed_s": "s",
    "serving_1M_requests_s": "s",
    "plan_capacity_speedup_x": "x",
    "plan_capacity_seed_s": "s",
    "plan_capacity_analytic_s": "s",
}


def _validate_record(record: dict) -> None:
    """Enforce the schema in benchmarks/README.md before appending.

    A malformed record fails the bench that produced it instead of
    silently corrupting the shared history file.
    """
    expected = {"run", "suite", "metric", "value", "units"}
    if set(record) - {"context"} != expected:
        raise ValueError(
            f"perf record fields {sorted(record)} != {sorted(expected)} "
            "(plus optional 'context')")
    for key in ("run", "suite", "metric", "units"):
        if not isinstance(record[key], str) or not record[key]:
            raise ValueError(f"perf record {key!r} must be a non-empty "
                             f"string, got {record[key]!r}")
    if not isinstance(record["value"], float) or not math.isfinite(
            record["value"]):
        raise ValueError(
            f"perf record value must be a finite number, "
            f"got {record['value']!r}")
    pinned = METRIC_UNITS.get(record["metric"])
    if pinned is not None and record["units"] != pinned:
        raise ValueError(
            f"metric {record['metric']!r} must be recorded in "
            f"{pinned!r} (gated across runs by name), "
            f"got {record['units']!r}")
    if "context" in record:
        context = record["context"]
        if not isinstance(context, dict) or not context:
            raise ValueError(
                f"perf record context must be a non-empty dict, "
                f"got {context!r}")
        for key, value in context.items():
            if not isinstance(key, str) or not key:
                raise ValueError(
                    f"perf record context key must be a non-empty "
                    f"string, got {key!r}")
            ok = (isinstance(value, bool)
                  or (isinstance(value, str) and value)
                  or (isinstance(value, (int, float))
                      and math.isfinite(value)))
            if not ok:
                raise ValueError(
                    f"perf record context[{key!r}] must be a finite "
                    f"number, non-empty string, or bool, got {value!r}")


def _append(suite: str, metric: str, value: float, units: str,
            context: dict = None) -> None:
    record = {
        "run": _run_stamp,
        "suite": suite,
        "metric": metric,
        "value": float(value),
        "units": units,
    }
    if context is not None:
        record["context"] = dict(context)
    _validate_record(record)
    _records.append(record)


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def save_artifact(artifact_dir):
    def _save(name: str, text: str) -> Path:
        path = artifact_dir / name
        path.write_text(text + "\n")
        return path

    return _save


@pytest.fixture(scope="session")
def record_perf():
    """Append one (suite, metric, value, units) perf record."""
    return _append


def pytest_sessionfinish(session, exitstatus):
    """Flush this run's records, including every benchmark timing.

    Failed or interrupted sessions flush nothing: a history point from
    a run whose regression assertions tripped would be
    indistinguishable from a good one.
    """
    if exitstatus != 0:
        return
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is not None:
        for bench in bench_session.benchmarks:
            mean = bench.get("mean")
            if mean is None:
                continue
            suite = Path(bench.fullname.split("::")[0]).stem
            _append(suite.replace("test_", "", 1),
                    f"{bench.name}_mean", mean, "s")
    if not _records:
        return
    OUTPUT_DIR.mkdir(exist_ok=True)
    history: List[dict] = []
    if RESULTS_PATH.exists():
        try:
            history = json.loads(RESULTS_PATH.read_text())
        except (ValueError, OSError):
            history = []  # corrupt history: restart rather than crash
    if not isinstance(history, list):
        history = []
    history.extend(_records)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")
