"""Benchmark support: every table/figure bench writes its rendered
table to ``benchmarks/output/`` so the regenerated artifacts survive
the run even under pytest's output capture."""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def save_artifact(artifact_dir):
    def _save(name: str, text: str) -> Path:
        path = artifact_dir / name
        path.write_text(text + "\n")
        return path

    return _save
