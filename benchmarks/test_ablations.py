"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation sweeps one modelling/design axis on the BERT-variant
workload and prints a table: what the published design chose, what the
alternatives would have cost.  These answer the "why" questions the
paper leaves implicit:

* **buffering** — how much would double-buffered weight tiles save?
* **AXI width** — how sensitive is latency to the load-path width?
* **sequence chunk** — what does the 64-deep score buffer cost at
  SL=128?
* **attention-score scaling** — Eq. (1) vs the Algorithm-2 divisor
  (accuracy, not latency).
"""

import numpy as np
import pytest

from repro.analysis import grid_sweep, render_table
from repro.core import DatapathFormats
from repro.core.attention_module import AttentionModule
from repro.core.ffn_module import FFNModule
from repro.core.latency import LatencyModel, LatencyOptions
from repro.isa import SynthParams
from repro.memory import AXI4Master
from repro.nn import BERT_VARIANT


def _latency_ms(double_buffered=False, axi_bits=64, seq_chunk=64,
                seq_len=64):
    synth = SynthParams(seq_chunk=seq_chunk)
    fmts = DatapathFormats.fix8()
    options = LatencyOptions(double_buffered=double_buffered,
                             axi=AXI4Master(data_bits=axi_bits))
    model = LatencyModel(synth, AttentionModule(synth, fmts),
                         FFNModule(synth, fmts), options)
    cfg = BERT_VARIANT if seq_len == 64 else BERT_VARIANT.with_(
        seq_len=seq_len)
    return model.evaluate(cfg, 200.0).latency_ms


def test_ablation_double_buffering(benchmark, save_artifact):
    def sweep():
        return grid_sweep({"double_buffered": [False, True]},
                          lambda double_buffered: _latency_ms(
                              double_buffered=double_buffered))

    results = benchmark(sweep)
    serial, overlapped = (r.value for r in results)
    assert overlapped < serial
    text = render_table(
        ["buffering", "latency_ms", "saving_%"],
        [("single (published)", round(serial, 1), 0.0),
         ("double", round(overlapped, 1),
          round(100 * (1 - overlapped / serial), 1))],
        title="Ablation: weight-tile buffering")
    save_artifact("ablation_buffering.txt", text)
    print("\n" + text)


def test_ablation_axi_width(benchmark, save_artifact):
    widths = [32, 64, 128, 256, 512]

    def sweep():
        return grid_sweep({"axi_bits": widths},
                          lambda axi_bits: _latency_ms(axi_bits=axi_bits))

    results = benchmark(sweep)
    lat = [r.value for r in results]
    assert lat == sorted(lat, reverse=True)  # wider is never slower
    text = render_table(
        ["axi_bits", "latency_ms"],
        [(w, round(v, 1)) for w, v in zip(widths, lat)],
        title="Ablation: weight-load AXI width")
    save_artifact("ablation_axi_width.txt", text)
    print("\n" + text)


def test_ablation_sequence_chunk(benchmark, save_artifact):
    """At SL=128, a 128-deep score buffer removes the chunk-pair
    overhead of the attention engines."""
    def sweep():
        return grid_sweep(
            {"seq_chunk": [32, 64, 128]},
            lambda seq_chunk: _latency_ms(seq_chunk=seq_chunk, seq_len=128))

    results = benchmark(sweep)
    lat = {r.params["seq_chunk"]: r.value for r in results}
    assert lat[128] < lat[32]
    text = render_table(
        ["seq_chunk", "latency_ms @ SL=128"],
        [(k, round(v, 1)) for k, v in sorted(lat.items())],
        title="Ablation: attention sequence chunk")
    save_artifact("ablation_seq_chunk.txt", text)
    print("\n" + text)


def test_ablation_score_scaling_accuracy(benchmark, save_artifact):
    """Eq. (1)'s 1/sqrt(d_k) vs Algorithm 2's 1/d_model divisor: the
    latter shrinks scores ~2.9x (d=64, dk=32 here), flattening the
    softmax — measurably worse agreement with the float encoder."""
    from repro import ProTEA
    from repro.nn import TransformerConfig, build_encoder

    cfg = TransformerConfig("abl", d_model=64, num_heads=2, num_layers=2,
                            seq_len=16)
    synth = SynthParams(ts_mha=16, ts_ffn=32, max_heads=2, max_layers=2,
                        max_d_model=64, max_seq_len=16, seq_chunk=16)
    enc = build_encoder(cfg, seed=5)
    x = np.random.default_rng(5).normal(0, 0.5, (16, 64))
    golden = enc(x)

    def run_both():
        out = {}
        for mode in ("sqrt_dk", "paper_alg2"):
            accel = ProTEA.synthesize(synth, scale_mode=mode,
                                      enforce_fit=False)
            accel.program(cfg).load_weights(enc)
            y = accel.run(x)
            out[mode] = float(np.sqrt(np.mean((y - golden) ** 2)))
        return out

    errs = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert errs["sqrt_dk"] <= errs["paper_alg2"] * 1.5
    text = render_table(
        ["scale mode", "RMS error vs float golden"],
        [(k, f"{v:.4f}") for k, v in errs.items()],
        title="Ablation: attention-score scaling (Eq.1 vs Algorithm 2)")
    save_artifact("ablation_score_scaling.txt", text)
    print("\n" + text)
