"""Bench: regenerate Fig. 7 (tile-size sweep)."""

from repro.core import find_optimum
from repro.experiments import figure7


def test_figure7_regeneration(benchmark, save_artifact):
    result = benchmark(figure7.run)
    assert len(result.rows) == 15
    assert max(result.column("fmax_MHz")) >= 199.0
    text = figure7.render(result) + "\n\n" + figure7.ascii_plot(result)
    save_artifact("figure7.txt", text)
    print("\n" + text)


def test_figure7_optimum_stability(benchmark):
    """The sweep's argmin must be deterministic run to run."""

    def optimum():
        from repro.core import tile_size_sweep

        best_freq, best_lat = find_optimum(tile_size_sweep())
        return (best_freq.tiles_mha, best_freq.tiles_ffn,
                best_lat.tiles_mha, best_lat.tiles_ffn)

    assert benchmark(optimum) == (12, 6, 12, 6)
