"""Bench: regenerate Table I (runtime programmability).

Times the full nine-test sweep on the synthesized instance and writes
the paper-style table to ``benchmarks/output/table1.txt``.
"""

from repro.experiments import table1


def test_table1_regeneration(benchmark, save_artifact, record_perf):
    result = benchmark(table1.run)
    # Headline checks (the full shape suite lives in tests/experiments).
    latencies = dict(zip(result.column("test"), result.column("latency_ms")))
    assert latencies[5] < latencies[4] < latencies[1] < latencies[8]
    record_perf("table1", "bert_variant_latency", latencies[1], "ms")
    text = table1.render(result)
    save_artifact("table1.txt", text)
    print("\n" + text)
