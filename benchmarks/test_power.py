"""Bench: power/efficiency profile of the published instance.

Not a paper table (the paper reports no watts) — this bench supplies
the energy-efficiency column the comparison implicitly argues about,
using published comparator TDPs.
"""

from repro.analysis import gops, render_table
from repro.analysis.traffic import analyze_traffic
from repro.experiments.common import default_accelerator
from repro.fpga.power import GPU_CPU_TDP_W, PowerModel, PowerReport
from repro.nn import BERT_VARIANT, get_model


def test_power_profile(benchmark, save_artifact):
    accel = default_accelerator()

    def profile():
        rows = []
        for cfg in (BERT_VARIANT, get_model("model2-lhc-trigger")):
            rep = accel.latency_report(cfg)
            traffic = analyze_traffic(accel, cfg)
            g = gops(cfg, rep.latency_s)
            power = PowerReport.evaluate(
                PowerModel(), accel.resources, accel.clock_mhz,
                rep.latency_s, g, traffic.achieved_gbps)
            rows.append((cfg.name, round(power.total_w, 1),
                         round(power.energy_per_inference_j, 4),
                         round(power.gops_per_w, 2)))
        return rows

    rows = benchmark(profile)
    watts = rows[0][1]
    assert 8.0 < watts < 40.0  # plausible U55C kernel power band

    # Efficiency comparison against comparator TDPs (GOPS at their
    # published latencies over their TDP).
    titan_eff = (2.07 / GPU_CPU_TDP_W["NVIDIA Titan XP GPU"])
    table = render_table(
        ["workload", "board W", "J/inference", "GOPS/W"],
        rows, title="ProTEA power profile (model, not measured by paper)")
    table += (f"\n  Titan XP GOPS/TDP on model2 ≈ {titan_eff:.4f} — "
              f"ProTEA is >{rows[1][3] / max(titan_eff, 1e-9):.0f}x more "
              f"energy-efficient on that workload")
    save_artifact("power_profile.txt", table)
    print("\n" + table)
