"""Bench: multi-FPGA partition planning speed + scaling regression.

Times the full depth x width plan search for the 12-layer workload and
pins the scaling regressions (4-stage steady state strictly beats one
device; deeper balanced pipelines never lose throughput) so partitioner
changes cannot silently regress the multi-device story.  Writes the
rendered scaling table to ``benchmarks/output/scaling.txt``.
"""

from repro import ProTEA, SynthParams, get_model
from repro.experiments import scaling
from repro.parallel import AURORA_64B66B, PipelinePartitioner


def test_bench_partition_search(benchmark, save_artifact, record_perf):
    accel = ProTEA.synthesize(SynthParams())
    partitioner = PipelinePartitioner(accel, AURORA_64B66B)
    cfg = get_model("bert-variant")

    plan = benchmark(partitioner.best_plan, cfg, 8)
    single = partitioner.plan(cfg, 1)

    # Scaling regressions: monotone throughput, bounded fill overhead.
    p4 = partitioner.plan(cfg, 4)
    assert (p4.steady_state_inf_per_s
            > single.steady_state_inf_per_s)
    assert (plan.steady_state_inf_per_s
            >= p4.steady_state_inf_per_s)
    # Fill may exceed one device only by the interconnect cost.
    assert plan.fill_cycles <= (single.fill_cycles
                                + plan.interconnect_cycles)

    record_perf("parallel", "bert_8dev_inf_per_s",
                plan.steady_state_inf_per_s, "inf/s")
    record_perf("parallel", "bert_8dev_speedup",
                plan.speedup_over(single.bottleneck_cycles), "x")
    save_artifact("scaling.txt", scaling.render())
