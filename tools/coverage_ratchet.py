#!/usr/bin/env python
"""Coverage ratchet: fail CI when line coverage drops below baseline.

Usage::

    python tools/coverage_ratchet.py coverage.json [tests/coverage_baseline.json]

``coverage.json`` is the JSON report pytest-cov writes
(``--cov-report=json``); the baseline file is committed in-repo and
holds the last accepted coverage percent plus the allowed drop::

    {"percent": 86.0, "max_drop": 0.5}

The check fails (exit 1) when measured < percent - max_drop.  When the
measured value exceeds the committed baseline by more than ``max_drop``
the script prints a ratchet-up hint — commit the new number so the
floor follows the suite upward.

The comparison logic lives in :func:`check` so the tier-1 suite can
unit-test the ratchet without installing coverage tooling.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Tuple

DEFAULT_BASELINE = Path(__file__).parent.parent / "tests" / \
    "coverage_baseline.json"


def check(measured_percent: float, baseline_percent: float,
          max_drop: float = 0.5) -> Tuple[bool, str]:
    """(ok, message) for a measured coverage vs. the committed floor."""
    floor = baseline_percent - max_drop
    if measured_percent < floor:
        return False, (
            f"coverage {measured_percent:.2f}% fell below the ratchet "
            f"floor {floor:.2f}% (baseline {baseline_percent:.2f}% - "
            f"{max_drop:.2f}% allowance) — add tests or, if the drop "
            "is justified, lower tests/coverage_baseline.json in the "
            "same PR with a rationale")
    if measured_percent > baseline_percent + max_drop:
        return True, (
            f"coverage {measured_percent:.2f}% beats the baseline "
            f"{baseline_percent:.2f}% — ratchet up: set \"percent\": "
            f"{measured_percent:.2f} in tests/coverage_baseline.json")
    return True, (
        f"coverage {measured_percent:.2f}% holds the baseline "
        f"{baseline_percent:.2f}% (floor {floor:.2f}%)")


def read_measured(report_path: Path) -> float:
    """Total line-coverage percent from a coverage.py JSON report."""
    data = json.loads(report_path.read_text())
    return float(data["totals"]["percent_covered"])


def read_baseline(baseline_path: Path) -> Tuple[float, float]:
    data = json.loads(baseline_path.read_text())
    return float(data["percent"]), float(data.get("max_drop", 0.5))


def main(argv) -> int:
    if not 2 <= len(argv) <= 3:
        print(__doc__)
        return 2
    report = Path(argv[1])
    baseline = Path(argv[2]) if len(argv) == 3 else DEFAULT_BASELINE
    measured = read_measured(report)
    percent, max_drop = read_baseline(baseline)
    ok, message = check(measured, percent, max_drop)
    print(message)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
