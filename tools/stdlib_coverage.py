#!/usr/bin/env python
"""Dependency-free line-coverage measurement for ``src/repro``.

CI measures coverage with pytest-cov; this tool exists for
environments without it (it was used to seed
``tests/coverage_baseline.json``).  It traces only files under
``src/repro`` via ``sys.settrace``, counts executed lines against the
executable-line sets recovered from compiled code objects, and prints
a per-package summary plus the total percent.

Usage::

    PYTHONPATH=src python tools/stdlib_coverage.py [pytest args...]

Caveats vs. coverage.py: only the ``# pragma: no cover`` *line* is
excluded (not its whole block), so totals land slightly *below*
pytest-cov's number — a baseline seeded from here is a conservative
floor for the CI ratchet.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).parent.parent
SRC = str(REPO / "src" / "repro")


def executable_lines(path: Path) -> set:
    """Line numbers holding code, per the compiled code objects."""
    code = compile(path.read_text(), str(path), "exec")
    lines = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        lines.update(ln for _, _, ln in obj.co_lines() if ln is not None)
        stack.extend(c for c in obj.co_consts if hasattr(c, "co_lines"))
    source = path.read_text().splitlines()
    for idx, text in enumerate(source, start=1):
        if "pragma: no cover" in text:
            lines.discard(idx)
    # The compiler attributes module docstrings/constants to line 0/1
    # even in empty-ish files; drop line numbers beyond the source.
    return {ln for ln in lines if 1 <= ln <= len(source)}


def main(argv) -> int:
    import pytest

    expected = {}
    for path in sorted((REPO / "src" / "repro").rglob("*.py")):
        expected[str(path)] = executable_lines(path)

    hits = {fn: set() for fn in expected}

    def line_tracer(frame, event, arg):
        if event == "line":
            fn = frame.f_code.co_filename
            got = hits.get(fn)
            if got is not None:
                got.add(frame.f_lineno)
        return line_tracer

    def tracer(frame, event, arg):
        if frame.f_code.co_filename.startswith(SRC):
            return line_tracer
        return None

    sys.settrace(tracer)
    try:
        rc = pytest.main(["-q", "-p", "no:cacheprovider",
                          *argv[1:]] or ["-q"])
    finally:
        sys.settrace(None)
    if rc != 0:
        print(f"pytest exited {rc}; coverage numbers below reflect a "
              "failing run", file=sys.stderr)

    total_exec = total_hit = 0
    by_pkg = {}
    for fn, lines in sorted(expected.items()):
        hit = len(lines & hits[fn])
        total_exec += len(lines)
        total_hit += hit
        pkg = Path(fn).relative_to(REPO / "src" / "repro").parts
        key = pkg[0] if len(pkg) > 1 else "(top)"
        agg = by_pkg.setdefault(key, [0, 0])
        agg[0] += hit
        agg[1] += len(lines)
    for pkg, (hit, total) in sorted(by_pkg.items()):
        pct = 100.0 * hit / total if total else 100.0
        print(f"{pkg:14s} {hit:6d}/{total:<6d} {pct:6.2f}%")
    pct = 100.0 * total_hit / total_exec if total_exec else 100.0
    print(f"{'TOTAL':14s} {total_hit:6d}/{total_exec:<6d} {pct:6.2f}%")
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv))
