from setuptools import find_packages, setup

setup(
    name="repro-protea",
    version="1.0.0",
    description=(
        "Functional + cycle-level reproduction of ProTEA (programmable "
        "transformer encoder acceleration on FPGA), with a multi-instance "
        "serving simulator and SLO capacity planner on top"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.22"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
