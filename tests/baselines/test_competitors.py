"""Unit tests for the competitor FPGA records (Table II constants)."""

import pytest

from repro.baselines import TABLE2_COMPETITORS, get_competitor
from repro.nn import MODEL_ZOO


class TestRecords:
    def test_five_comparators(self):
        assert len(TABLE2_COMPETITORS) == 5

    def test_published_values_transcribed(self):
        peng = get_competitor("peng21")
        assert peng.latency_ms == 0.32
        assert peng.gops == 555.0
        assert peng.sparsity == 0.90
        efa = get_competitor("efa-trans")
        assert efa.method == "HDL"
        assert efa.dsp == 1024

    def test_workloads_resolve_in_zoo(self):
        for rec in TABLE2_COMPETITORS:
            assert rec.protea_model in MODEL_ZOO

    def test_sparse_flags(self):
        assert get_competitor("peng21").is_sparse
        assert get_competitor("ftrans").is_sparse
        assert not get_competitor("efa-trans").is_sparse

    def test_unknown_key(self):
        with pytest.raises(KeyError, match="peng21"):
            get_competitor("nonexistent")

    def test_paper_protea_latencies_recorded(self):
        """The paper's own ProTEA measurements per row — used in the
        EXPERIMENTS.md delta accounting."""
        assert get_competitor("peng21").paper_protea_latency_ms == 4.48
        assert get_competitor("wojcicki22").paper_protea_latency_ms == 0.425
        assert get_competitor("efa-trans").paper_protea_latency_ms == 5.18
        assert get_competitor("qi21").paper_protea_latency_ms == 9.12
