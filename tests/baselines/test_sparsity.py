"""Unit tests: the paper's sparsity what-if arithmetic, exactly."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines import sparsity_adjusted_latency, what_if


class TestPaperArithmetic:
    def test_peng_90_percent(self):
        """'its latency would mathematically be reduced to 0.448 ms
        (calculated as 4.48 − 4.48 × 0.9), making it 1.4x slower.'"""
        wi = what_if(4.48, 0.90, competitor_ms=0.32)
        assert wi.adjusted_latency_ms == pytest.approx(0.448)
        assert 1.0 / wi.speedup_vs_competitor == pytest.approx(1.4)
        assert wi.verdict == "1.4x slower"

    def test_ftrans_93_percent(self):
        """'its latency would be 0.31 ms (calculated as
        4.48 − 4.48 × 0.93)' → 9.4x faster than FTRANS' 2.94 ms."""
        wi = what_if(4.48, 0.93, competitor_ms=2.94)
        assert wi.adjusted_latency_ms == pytest.approx(0.3136)
        assert wi.speedup_vs_competitor == pytest.approx(9.375, rel=1e-3)
        assert wi.verdict == "9.4x faster"


class TestProperties:
    @given(st.floats(0.1, 100.0), st.floats(0.0, 0.99))
    def test_adjusted_never_negative(self, lat, s):
        adj = sparsity_adjusted_latency(lat, s)
        assert 0 < adj <= lat

    @given(st.floats(0.1, 100.0))
    def test_zero_sparsity_is_identity(self, lat):
        assert sparsity_adjusted_latency(lat, 0.0) == lat

    def test_validation(self):
        with pytest.raises(ValueError):
            sparsity_adjusted_latency(1.0, 1.0)
        with pytest.raises(ValueError):
            sparsity_adjusted_latency(1.0, -0.1)
        with pytest.raises(ValueError):
            sparsity_adjusted_latency(0.0, 0.5)
