"""Unit tests: CPU/GPU platforms reproduce their published anchors."""

import pytest

from repro.baselines import (
    CPU_PLATFORMS,
    GPU_PLATFORMS,
    intel_i5_4460,
    intel_i5_5257u,
    jetson_tx2,
    rtx_3060,
    titan_xp_hep,
    titan_xp_nlp,
)
from repro.nn import get_model


class TestAnchorsReproduced:
    """Each platform must reproduce its cited Table III latency on its
    anchor workload (by construction — this guards the transcription)."""

    def test_i5_5257u(self):
        assert intel_i5_5257u().latency_ms(
            get_model("model1-peng-isqed21")) == pytest.approx(3.54, rel=1e-6)

    def test_jetson_tx2(self):
        assert jetson_tx2().latency_ms(
            get_model("model1-peng-isqed21")) == pytest.approx(0.673, rel=1e-6)

    def test_titan_xp_hep(self):
        assert titan_xp_hep().latency_ms(
            get_model("model2-lhc-trigger")) == pytest.approx(1.062, rel=1e-6)

    def test_i5_4460(self):
        assert intel_i5_4460().latency_ms(
            get_model("model3-efa-trans")) == pytest.approx(4.66, rel=1e-6)

    def test_rtx_3060(self):
        assert rtx_3060().latency_ms(
            get_model("model3-efa-trans")) == pytest.approx(0.71, rel=1e-6)

    def test_titan_xp_nlp(self):
        assert titan_xp_nlp().latency_ms(
            get_model("model4-qi-iccad21")) == pytest.approx(147.0, rel=1e-6)


class TestPublishedOrderings:
    def test_tx2_beats_cpu_on_model1(self):
        """Table III row 1: the Jetson is 5.3x faster than the i5."""
        cfg = get_model("model1-peng-isqed21")
        assert jetson_tx2().latency_ms(cfg) < intel_i5_5257u().latency_ms(cfg)

    def test_rtx_beats_cpu_on_model3(self):
        cfg = get_model("model3-efa-trans")
        assert rtx_3060().latency_ms(cfg) < intel_i5_4460().latency_ms(cfg)

    def test_registries_complete(self):
        assert len(CPU_PLATFORMS()) == 2
        assert len(GPU_PLATFORMS()) == 4

    def test_anchor_provenance_recorded(self):
        for p in (*CPU_PLATFORMS().values(), *GPU_PLATFORMS().values()):
            assert p.anchor is not None
