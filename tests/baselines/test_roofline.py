"""Unit tests for the roofline baseline models."""

import pytest

from repro.baselines import PlatformModel, anchored_platform
from repro.nn import BERT_VARIANT, TransformerConfig

TINY = TransformerConfig("tiny", 64, 2, 1, 16)


class TestPlatformModel:
    def test_latency_has_overhead_floor(self):
        p = PlatformModel("p", 1.0, compute_tput_gops=1e6,
                          mem_bandwidth_gbps=1e6, overhead_ms=0.5)
        assert p.latency_ms(TINY) >= 0.5

    def test_compute_bound_scaling(self):
        p = PlatformModel("p", 1.0, compute_tput_gops=10,
                          mem_bandwidth_gbps=1e9, overhead_ms=0.0)
        small = p.latency_ms(TINY)
        big = p.latency_ms(TINY.with_(num_layers=4))
        assert big == pytest.approx(4 * small, rel=1e-6)

    def test_memory_bound_when_bandwidth_tiny(self):
        fast_mem = PlatformModel("a", 1.0, 100, mem_bandwidth_gbps=1000)
        slow_mem = PlatformModel("b", 1.0, 100, mem_bandwidth_gbps=0.001)
        assert slow_mem.latency_ms(BERT_VARIANT) > fast_mem.latency_ms(
            BERT_VARIANT)

    def test_validation(self):
        with pytest.raises(ValueError):
            PlatformModel("bad", 0.0, 1.0, 1.0)


class TestAnchoring:
    def test_anchor_reproduced_exactly(self):
        p = anchored_platform("x", 1.0, 100.0, BERT_VARIANT,
                              anchor_latency_ms=50.0, overhead_ms=0.1)
        assert p.latency_ms(BERT_VARIANT) == pytest.approx(50.0, rel=1e-6)

    def test_impossible_anchor_rejected(self):
        with pytest.raises(ValueError, match="overhead"):
            anchored_platform("x", 1.0, 100.0, BERT_VARIANT,
                              anchor_latency_ms=0.01, overhead_ms=0.5)

    def test_memory_bound_anchor_accepted(self):
        """A published number faster than the naive compute estimate but
        at the memory floor is credited to the bound."""
        p = anchored_platform("x", 1.0, mem_bandwidth_gbps=0.5,
                              anchor_config=BERT_VARIANT,
                              anchor_latency_ms=100.0, overhead_ms=0.1)
        assert p.compute_tput_gops > 0

    def test_throughput_gops(self):
        p = anchored_platform("x", 1.0, 100.0, BERT_VARIANT, 50.0)
        g = p.throughput_gops(BERT_VARIANT)
        assert g > 0
