"""Cross-module integration tests.

These exercise the full deployment pipeline the paper describes:
train (init) → save → extract hyper-parameters → synthesize once →
program at runtime → load quantized weights → run → compare against
the golden float encoder — plus the instruction-level execution path.
"""

import io

import numpy as np
import pytest

from repro import ProTEA, ResynthesisRequiredError, SynthParams, TransformerConfig
from repro.core import DatapathFormats, RuntimeSession
from repro.core.runtime import ProgramExecutor
from repro.fixedpoint import FxTensor
from repro.nn import (
    build_encoder,
    extract_hyperparameters,
    load_encoder,
    save_encoder,
)

CFG = TransformerConfig("integ", d_model=64, num_heads=2, num_layers=2,
                        seq_len=16)
SYNTH = SynthParams(ts_mha=16, ts_ffn=32, max_heads=4, max_layers=4,
                    max_d_model=128, max_seq_len=32, seq_chunk=16)


class TestDeploymentPipeline:
    def test_pth_to_inference_flow(self):
        """Section IV-D end to end (with .npz standing in for .pth)."""
        enc = build_encoder(CFG, seed=21)
        buf = io.BytesIO()
        save_encoder(enc, buf, config=CFG)
        buf.seek(0)
        params = extract_hyperparameters(buf)

        accel = ProTEA.synthesize(SYNTH, enforce_fit=False)
        runtime_cfg = TransformerConfig(
            "extracted", d_model=params.d_model, num_heads=params.num_heads,
            num_layers=params.num_layers, seq_len=params.seq_len or 16,
            d_ff=params.d_ff)
        accel.program(runtime_cfg)
        buf.seek(0)
        accel.load_weights(load_encoder(buf))

        x = np.random.default_rng(0).normal(0, 0.5, (16, 64))
        y = accel.run(x)
        golden = enc(x)
        assert np.sqrt(np.mean((y - golden) ** 2)) < 0.2

    def test_quantization_error_decreases_with_width(self):
        enc = build_encoder(CFG, seed=22)
        x = np.random.default_rng(1).normal(0, 0.5, (16, 64))
        golden = enc(x)
        errs = {}
        for name, fmts in (("fix8", DatapathFormats.fix8()),
                           ("fix16", DatapathFormats.fix16())):
            accel = ProTEA.synthesize(SYNTH, formats=fmts, enforce_fit=False)
            accel.program(CFG).load_weights(enc)
            errs[name] = np.sqrt(np.mean((accel.run(x) - golden) ** 2))
        assert errs["fix16"] < errs["fix8"] / 3

    def test_module_and_isa_paths_bit_identical(self):
        enc = build_encoder(CFG, seed=23)
        accel = ProTEA.synthesize(SYNTH, enforce_fit=False)
        accel.program(CFG).load_weights(enc)
        fx = FxTensor.from_float(
            np.random.default_rng(2).normal(0, 0.5, (16, 64)),
            accel.formats.activation)
        y_mod = accel.run_fx(fx)
        y_isa = ProgramExecutor(accel, accel.weights).run(fx)
        assert np.array_equal(y_mod.raw, y_isa.raw)


class TestRuntimeReprogrammingEquivalence:
    def test_reprogramming_preserves_functional_results(self):
        """Hop small→smaller→small on one instance; results for the
        same workload must be identical before and after the hop."""
        enc = build_encoder(CFG, seed=24)
        tiny_cfg = TransformerConfig("tiny", d_model=32, num_heads=2,
                                     num_layers=1, seq_len=8)
        tiny_enc = build_encoder(tiny_cfg, seed=25)

        accel = ProTEA.synthesize(SYNTH, enforce_fit=False)
        session = RuntimeSession(accel)
        x = np.random.default_rng(3).normal(0, 0.5, (16, 64))

        session.deploy(CFG)
        accel.load_weights(enc)
        y_before = accel.run(x)

        session.deploy(tiny_cfg)
        accel.load_weights(tiny_enc)
        accel.run(np.zeros((8, 32)))

        session.deploy(CFG)
        accel.load_weights(enc)
        y_after = accel.run(x)

        assert np.array_equal(y_before, y_after)
        assert session.reprogram_count == 3
        assert session.resynthesis_count == 0

    def test_maxima_enforced_through_session(self):
        accel = ProTEA.synthesize(SYNTH, enforce_fit=False)
        session = RuntimeSession(accel)
        with pytest.raises(ResynthesisRequiredError):
            session.deploy(CFG.with_(d_model=256, d_ff=1024))


class TestLatencyFunctionalConsistency:
    def test_latency_report_matches_programmed_config(self):
        accel = ProTEA.synthesize(SYNTH, enforce_fit=False)
        accel.program(CFG)
        rep = accel.latency_report()
        assert rep.config is CFG
        assert rep.num_layers == CFG.num_layers

    def test_larger_runtime_model_costs_more(self):
        accel = ProTEA.synthesize(SYNTH, enforce_fit=False)
        small = accel.latency_ms(CFG)
        bigger = accel.latency_ms(CFG.with_(d_model=128, d_ff=512))
        assert bigger > small
