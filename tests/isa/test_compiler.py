"""Unit tests for the instruction-stream compiler."""

import pytest

from repro.isa import Opcode, SynthParams, compile_program, program_stats
from repro.nn import BERT_VARIANT, TransformerConfig

SMALL = TransformerConfig("c", d_model=64, num_heads=2, num_layers=2, seq_len=16)
SMALL_SYNTH = SynthParams(ts_mha=16, ts_ffn=32, max_heads=2, max_layers=4,
                          max_d_model=64, max_seq_len=32, seq_chunk=16)


class TestProgramShape:
    def test_ends_with_halt(self):
        prog = compile_program(SMALL, SMALL_SYNTH)
        assert prog[-1].opcode is Opcode.HALT

    def test_configure_prologue(self):
        prog = compile_program(SMALL, SMALL_SYNTH)
        assert [i.opcode for i in prog[:4]] == [Opcode.CONFIGURE] * 4

    def test_qkv_tile_counts(self):
        prog = compile_program(SMALL, SMALL_SYNTH)
        stats = program_stats(prog)
        tiles = 64 // 16
        assert stats.count(Opcode.RUN_QKV) == SMALL.num_layers * tiles
        assert stats.count(Opcode.LOAD_QKV_WEIGHTS) == (
            SMALL.num_layers * tiles * SMALL.num_heads)

    def test_attention_per_head(self):
        stats = program_stats(compile_program(SMALL, SMALL_SYNTH))
        assert stats.count(Opcode.RUN_QK) == 2 * 2
        assert stats.count(Opcode.RUN_SOFTMAX) == 2 * 2
        assert stats.count(Opcode.RUN_SV) == 2 * 2

    def test_ffn_grid_fixed_at_synth_maxima(self):
        """FFN RUN counts use the synthesized output grid, not the
        runtime d_model — the linear-scaling mechanism."""
        stats = program_stats(compile_program(SMALL, SMALL_SYNTH))
        t_in = 2       # ceil(64/32)
        t_out = 2      # ceil(max_d 64 / 32)
        per_layer_ffn1 = t_in * t_out
        assert stats.count(Opcode.RUN_FFN1) == 2 * per_layer_ffn1
        assert stats.count(Opcode.RUN_FFN2) == 2 * t_in * 4 * t_out

    def test_loads_only_for_real_tiles(self):
        """With runtime d_model < synthesized max, some output tiles
        have no real weights and must not be loaded."""
        cfg = TransformerConfig("half", d_model=32, num_heads=2,
                                num_layers=1, seq_len=16)
        stats = program_stats(compile_program(cfg, SMALL_SYNTH))
        assert stats.count(Opcode.LOAD_FFN_WEIGHTS) < stats.count(
            Opcode.RUN_FFN1) + stats.count(Opcode.RUN_FFN2) + stats.count(
            Opcode.RUN_FFN3)

    def test_layer_norm_twice_per_layer(self):
        stats = program_stats(compile_program(SMALL, SMALL_SYNTH))
        assert stats.count(Opcode.RUN_LN1) == 2
        assert stats.count(Opcode.RUN_LN2) == 2

    def test_program_length_scales_with_layers(self):
        one = len(compile_program(SMALL.with_(num_layers=1), SMALL_SYNTH))
        two = len(compile_program(SMALL, SMALL_SYNTH))
        assert two > one * 1.5

    def test_bert_program_compiles(self):
        prog = compile_program(BERT_VARIANT, SynthParams())
        stats = program_stats(prog)
        assert stats.layers == 12
        assert stats.count(Opcode.RUN_QKV) == 12 * 12  # 12 tiles x 12 layers

    def test_stats_layer_count(self):
        stats = program_stats(compile_program(SMALL, SMALL_SYNTH))
        assert stats.layers == 2
        assert stats.total == len(compile_program(SMALL, SMALL_SYNTH))


class TestValidation:
    def test_oversized_config_rejected_at_compile(self):
        big = TransformerConfig("big", 128, 2, 1, 16)
        with pytest.raises(Exception):
            compile_program(big, SMALL_SYNTH)
