"""Unit + property tests for instruction encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import Instruction, Opcode, decode, encode

opcode_strategy = st.sampled_from(list(Opcode))
instr_strategy = st.builds(
    Instruction,
    opcode=opcode_strategy,
    layer=st.integers(0, 4095),
    head=st.integers(0, 255),
    tile=st.integers(0, 65535),
    arg=st.integers(0, (1 << 20) - 1),
)


class TestEncoding:
    @given(instr_strategy)
    def test_roundtrip(self, instr):
        assert decode(encode(instr)) == instr

    def test_fits_64_bits(self):
        word = encode(Instruction(Opcode.HALT, layer=4095, head=255,
                                  tile=65535, arg=(1 << 20) - 1))
        assert 0 <= word < (1 << 64)

    def test_distinct_opcodes_distinct_words(self):
        a = encode(Instruction(Opcode.RUN_QKV, tile=3))
        b = encode(Instruction(Opcode.RUN_QK, tile=3))
        assert a != b

    def test_field_limits_enforced(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.HALT, layer=4096)
        with pytest.raises(ValueError):
            Instruction(Opcode.HALT, head=256)
        with pytest.raises(ValueError):
            Instruction(Opcode.HALT, tile=1 << 16)
        with pytest.raises(ValueError):
            Instruction(Opcode.HALT, arg=1 << 20)

    def test_decode_rejects_oversized_word(self):
        with pytest.raises(ValueError):
            decode(1 << 64)

    def test_meta_not_part_of_equality(self):
        a = Instruction(Opcode.CONFIGURE, arg=1, meta={"register": "x"})
        b = Instruction(Opcode.CONFIGURE, arg=1)
        assert a == b


def test_opcode_space_has_no_collisions():
    values = [int(op) for op in Opcode]
    assert len(values) == len(set(values))
