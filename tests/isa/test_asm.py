"""Unit + property tests for the assembler/disassembler."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import (
    AsmSyntaxError,
    Instruction,
    Opcode,
    SynthParams,
    assemble,
    compile_program,
    disassemble,
)
from repro.nn import TransformerConfig

instr_strategy = st.builds(
    Instruction,
    opcode=st.sampled_from(list(Opcode)),
    layer=st.integers(0, 4095),
    head=st.integers(0, 255),
    tile=st.integers(0, 65535),
    arg=st.integers(0, (1 << 20) - 1),
)


class TestRoundTrip:
    @given(st.lists(instr_strategy, max_size=25))
    def test_assemble_disassemble_identity(self, program):
        assert assemble(disassemble(program)) == program

    def test_compiled_program_roundtrips(self):
        cfg = TransformerConfig("a", 64, 2, 1, 16)
        synth = SynthParams(ts_mha=16, ts_ffn=32, max_heads=2, max_layers=2,
                            max_d_model=64, max_seq_len=16, seq_chunk=16)
        prog = compile_program(cfg, synth)
        assert assemble(disassemble(prog)) == prog


class TestSyntax:
    def test_comments_and_blanks_ignored(self):
        text = """
        ; full-line comment
        RUN_QKV layer=1 tile=2   ; trailing comment

        HALT
        """
        prog = assemble(text)
        assert [i.opcode for i in prog] == [Opcode.RUN_QKV, Opcode.HALT]
        assert prog[0].layer == 1 and prog[0].tile == 2

    def test_zero_fields_omitted_in_output(self):
        text = disassemble([Instruction(Opcode.HALT)])
        assert "layer=" not in text

    def test_meta_rendered_as_comment(self):
        text = disassemble([Instruction(Opcode.CONFIGURE, arg=8,
                                        meta={"register": "num_heads"})])
        assert "; register=num_heads" in text

    def test_unknown_opcode_reports_line(self):
        with pytest.raises(AsmSyntaxError, match="line 2"):
            assemble("HALT\nFLY_TO_MOON\n")

    def test_unknown_field_rejected(self):
        with pytest.raises(AsmSyntaxError, match="voltage"):
            assemble("RUN_QKV voltage=3")

    def test_out_of_range_field_rejected(self):
        with pytest.raises(AsmSyntaxError, match="line 1"):
            assemble("RUN_QKV head=999")

    def test_garbage_line_rejected(self):
        with pytest.raises(AsmSyntaxError):
            assemble("run_qkv lower=case")
