"""Unit tests for the config-register file and the resynthesis contract."""

import pytest

from repro.isa import ConfigRegisterFile, ResynthesisRequiredError, SynthParams
from repro.nn import BERT_VARIANT, TransformerConfig


class TestSynthParams:
    def test_published_defaults(self):
        s = SynthParams()
        assert s.ts_mha == 64
        assert s.ts_ffn == 128
        assert s.max_heads == 8
        assert s.max_layers == 12
        assert s.max_d_model == 768

    def test_tile_grid_maxima(self):
        s = SynthParams()
        assert s.tiles_mha_max == 12
        assert s.tiles_ffn_max == 6

    def test_ragged_grid_ceil(self):
        s = SynthParams(ts_ffn=154)
        assert s.tiles_ffn_max == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            SynthParams(ts_mha=0)
        with pytest.raises(ValueError):
            SynthParams(seq_chunk=256, max_seq_len=128)
        with pytest.raises(ValueError):
            SynthParams(max_d_model=770, max_heads=8)


class TestRegisterFile:
    def test_program_bert_variant(self):
        csr = ConfigRegisterFile(SynthParams())
        csr.program(BERT_VARIANT)
        snap = csr.snapshot()
        assert snap == {"num_heads": 8, "num_layers": 12,
                        "d_model": 768, "seq_len": 64}
        assert csr.d_k == 96
        assert csr.tiles_mha == 12
        assert csr.tiles_ffn == 6

    def test_exceeding_maxima_requires_resynthesis(self):
        csr = ConfigRegisterFile(SynthParams())
        too_big = BERT_VARIANT.with_(name="big", num_layers=13)
        with pytest.raises(ResynthesisRequiredError, match="num_layers"):
            csr.program(too_big)

    def test_seq_len_ceiling(self):
        csr = ConfigRegisterFile(SynthParams())
        with pytest.raises(ResynthesisRequiredError):
            csr.write("seq_len", 129)

    def test_non_4x_dff_rejected(self):
        csr = ConfigRegisterFile(SynthParams())
        odd = TransformerConfig("odd", 768, 8, 1, 64, d_ff=1024)
        with pytest.raises(ResynthesisRequiredError, match="4"):
            csr.program(odd)

    def test_programming_costs_axi_cycles(self):
        csr = ConfigRegisterFile(SynthParams())
        csr.program(BERT_VARIANT)
        assert csr.programming_cycles == 4 * csr.axi.write_cycles

    def test_unknown_register(self):
        csr = ConfigRegisterFile(SynthParams())
        with pytest.raises(KeyError):
            csr.write("voltage", 1)

    def test_ctrl_register_not_a_parameter(self):
        csr = ConfigRegisterFile(SynthParams())
        with pytest.raises(ValueError):
            csr.write("ctrl", 1)

    def test_zero_value_rejected(self):
        csr = ConfigRegisterFile(SynthParams())
        with pytest.raises(ValueError):
            csr.write("num_heads", 0)

    def test_d_k_requires_programming(self):
        csr = ConfigRegisterFile(SynthParams())
        with pytest.raises(RuntimeError):
            _ = csr.d_k

    def test_small_d_model_occupies_one_ffn_tile(self):
        csr = ConfigRegisterFile(SynthParams())
        csr.program(TransformerConfig("tiny", 64, 2, 1, 16))
        assert csr.tiles_ffn == 1
