"""Unit tests for the instruction interpreter."""

import pytest

from repro.isa import (
    Instruction,
    Interpreter,
    Opcode,
    UnhandledOpcodeError,
)


def make_program():
    return [
        Instruction(Opcode.LOAD_INPUT, layer=0, tile=0),
        Instruction(Opcode.RUN_QKV, layer=0, tile=0),
        Instruction(Opcode.BARRIER, layer=0),
        Instruction(Opcode.HALT),
    ]


class TestDispatch:
    def test_handlers_called_in_order(self):
        seen = []
        interp = Interpreter()
        interp.register(Opcode.LOAD_INPUT, lambda i: seen.append(("load", i.tile)))
        interp.register(Opcode.RUN_QKV, lambda i: seen.append(("run", i.tile)))
        trace = interp.run(make_program())
        assert seen == [("load", 0), ("run", 0)]
        assert trace.halted

    def test_missing_handler_raises(self):
        interp = Interpreter()
        with pytest.raises(UnhandledOpcodeError, match="LOAD_INPUT"):
            interp.run(make_program())

    def test_barrier_callback(self):
        barriers = []
        interp = Interpreter(on_barrier=lambda: barriers.append(1))
        interp.register_many({
            Opcode.LOAD_INPUT: lambda i: None,
            Opcode.RUN_QKV: lambda i: None,
        })
        interp.run(make_program())
        assert barriers == [1]

    def test_halt_stops_execution(self):
        calls = []
        interp = Interpreter()
        interp.register(Opcode.RUN_QKV, lambda i: calls.append(i))
        prog = [Instruction(Opcode.HALT), Instruction(Opcode.RUN_QKV)]
        trace = interp.run(prog)
        assert trace.halted
        assert not calls
        assert trace.executed == 1

    def test_trace_histogram(self):
        interp = Interpreter()
        interp.register_many({
            Opcode.LOAD_INPUT: lambda i: None,
            Opcode.RUN_QKV: lambda i: None,
        })
        trace = interp.run(make_program())
        assert trace.by_opcode[Opcode.LOAD_INPUT] == 1
        assert trace.by_opcode[Opcode.HALT] == 1

    def test_keep_log(self):
        interp = Interpreter()
        interp.register_many({
            Opcode.LOAD_INPUT: lambda i: None,
            Opcode.RUN_QKV: lambda i: None,
        })
        trace = interp.run(make_program(), keep_log=True)
        assert len(trace.log) == 4
