"""Unit tests for AXI transaction cost models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory import AXI4Master, AXILiteSlave


class TestAXI4Master:
    def test_beats(self):
        axi = AXI4Master(data_bits=64)
        assert axi.beats(0) == 0
        assert axi.beats(8) == 1
        assert axi.beats(9) == 2

    def test_bursts_capped_at_256(self):
        axi = AXI4Master(data_bits=64, max_burst_beats=256)
        assert axi.bursts(8 * 256) == 1
        assert axi.bursts(8 * 257) == 2

    def test_transfer_cycles_formula(self):
        axi = AXI4Master(data_bits=64, setup_cycles=32)
        # 2048 bytes = 256 beats = 1 burst.
        assert axi.transfer_cycles(2048) == 32 + 256

    def test_zero_bytes_free(self):
        assert AXI4Master().transfer_cycles(0) == 0

    def test_strided_pays_setup_per_chunk(self):
        axi = AXI4Master(data_bits=64, setup_cycles=32)
        one = axi.transfer_cycles(512)
        assert axi.strided_transfer_cycles(512, 4) == 4 * one

    def test_wider_bus_fewer_cycles(self):
        narrow = AXI4Master(data_bits=32)
        wide = AXI4Master(data_bits=512)
        n = narrow.transfer_cycles(16384)
        w = wide.transfer_cycles(16384)
        assert w < n

    def test_validation(self):
        with pytest.raises(ValueError):
            AXI4Master(data_bits=12)
        with pytest.raises(ValueError):
            AXI4Master(max_burst_beats=0)
        with pytest.raises(ValueError):
            AXI4Master(setup_cycles=0)
        with pytest.raises(ValueError):
            AXI4Master().transfer_cycles(-1)

    @given(st.integers(0, 10**7))
    def test_cycles_monotone_in_bytes(self, nbytes):
        axi = AXI4Master(data_bits=64)
        assert axi.transfer_cycles(nbytes + 8) >= axi.transfer_cycles(nbytes)

    @given(st.integers(1, 10**6))
    def test_cycles_lower_bounded_by_beats(self, nbytes):
        axi = AXI4Master(data_bits=64)
        assert axi.transfer_cycles(nbytes) >= axi.beats(nbytes)


class TestAXILite:
    def test_configure_cost(self):
        lite = AXILiteSlave(write_cycles=6)
        assert lite.configure_cycles(4) == 24

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            AXILiteSlave().configure_cycles(-1)
