"""Unit tests for AXI transaction cost models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory import AXI4Master, AXILiteSlave


class TestAXI4Master:
    def test_beats(self):
        axi = AXI4Master(data_bits=64)
        assert axi.beats(0) == 0
        assert axi.beats(8) == 1
        assert axi.beats(9) == 2

    def test_bursts_capped_at_256(self):
        axi = AXI4Master(data_bits=64, max_burst_beats=256)
        assert axi.bursts(8 * 256) == 1
        assert axi.bursts(8 * 257) == 2

    def test_transfer_cycles_formula(self):
        axi = AXI4Master(data_bits=64, setup_cycles=32)
        # 2048 bytes = 256 beats = 1 burst.
        assert axi.transfer_cycles(2048) == 32 + 256

    def test_zero_bytes_free(self):
        assert AXI4Master().transfer_cycles(0) == 0

    def test_strided_pays_setup_per_chunk(self):
        axi = AXI4Master(data_bits=64, setup_cycles=32)
        one = axi.transfer_cycles(512)
        assert axi.strided_transfer_cycles(512, 4) == 4 * one

    def test_wider_bus_fewer_cycles(self):
        narrow = AXI4Master(data_bits=32)
        wide = AXI4Master(data_bits=512)
        n = narrow.transfer_cycles(16384)
        w = wide.transfer_cycles(16384)
        assert w < n

    def test_validation(self):
        with pytest.raises(ValueError):
            AXI4Master(data_bits=12)
        with pytest.raises(ValueError):
            AXI4Master(max_burst_beats=0)
        with pytest.raises(ValueError):
            AXI4Master(setup_cycles=0)
        with pytest.raises(ValueError):
            AXI4Master().transfer_cycles(-1)

    @given(st.integers(0, 10**7))
    def test_cycles_monotone_in_bytes(self, nbytes):
        axi = AXI4Master(data_bits=64)
        assert axi.transfer_cycles(nbytes + 8) >= axi.transfer_cycles(nbytes)

    @given(st.integers(1, 10**6))
    def test_cycles_lower_bounded_by_beats(self, nbytes):
        axi = AXI4Master(data_bits=64)
        assert axi.transfer_cycles(nbytes) >= axi.beats(nbytes)


class TestARLENBoundary:
    """Burst math exactly at and around the 256-beat AXI4 ARLEN cap."""

    AXI = AXI4Master(data_bits=64, max_burst_beats=256, setup_cycles=32)
    BURST_BYTES = 8 * 256  # one full burst on a 64-bit bus

    def test_one_byte_over_the_boundary_starts_a_new_burst(self):
        at = self.AXI.transfer_cycles(self.BURST_BYTES)
        over = self.AXI.transfer_cycles(self.BURST_BYTES + 1)
        # One extra beat *and* one extra address phase.
        assert over == at + self.AXI.setup_cycles + 1

    def test_one_byte_under_stays_in_one_burst(self):
        under = self.AXI.transfer_cycles(self.BURST_BYTES - 1)
        assert under == self.AXI.setup_cycles + 256  # still 256 beats

    def test_exact_multiples_pay_exactly_n_setups(self):
        for n in (1, 2, 3, 7):
            cycles = self.AXI.transfer_cycles(n * self.BURST_BYTES)
            assert cycles == n * self.AXI.setup_cycles + n * 256

    def test_single_beat_burst_cap(self):
        axi = AXI4Master(data_bits=64, max_burst_beats=1, setup_cycles=4)
        # Every beat is its own burst: degenerate but legal AXI.
        assert axi.transfer_cycles(64) == 8 * (4 + 1)

    @given(st.integers(1, 1 << 20))
    def test_burst_count_matches_beat_count(self, nbytes):
        axi = self.AXI
        beats = axi.beats(nbytes)
        bursts = axi.bursts(nbytes)
        assert (bursts - 1) * 256 < beats <= bursts * 256

    @given(st.integers(0, 1 << 20), st.integers(1, 1 << 16))
    def test_cycles_monotone_in_arbitrary_step(self, nbytes, delta):
        """Monotone for any byte increment, not just whole beats."""
        axi = self.AXI
        assert (axi.transfer_cycles(nbytes + delta)
                >= axi.transfer_cycles(nbytes))

    @given(st.integers(1, 1 << 20))
    def test_splitting_never_cheaper_than_contiguous(self, nbytes):
        """Two half-transfers pay at least the contiguous cost."""
        axi = self.AXI
        half = nbytes // 2
        split = (axi.transfer_cycles(half)
                 + axi.transfer_cycles(nbytes - half))
        assert split >= axi.transfer_cycles(nbytes)


class TestAXILite:
    def test_configure_cost(self):
        lite = AXILiteSlave(write_cycles=6)
        assert lite.configure_cycles(4) == 24

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            AXILiteSlave().configure_cycles(-1)
