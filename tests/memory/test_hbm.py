"""Unit tests for the HBM subsystem model."""

import pytest

from repro.memory import AXI4Master, HBMChannel, HBMSubsystem


class TestChannel:
    def test_bytes_per_cycle(self):
        ch = HBMChannel(bandwidth_gbps=14.4)
        assert ch.bytes_per_cycle(200.0) == pytest.approx(72.0)

    def test_latency_cycles(self):
        ch = HBMChannel(access_latency_ns=120.0)
        assert ch.access_latency_cycles(200.0) == 24

    def test_invalid_clock(self):
        with pytest.raises(ValueError):
            HBMChannel().bytes_per_cycle(0)


class TestSubsystem:
    def test_protocol_bound_when_port_narrow(self):
        """A 64-bit port at 200 MHz (1.6 GB/s) cannot saturate one HBM
        pseudo-channel (14.4 GB/s) → protocol cost binds."""
        hbm = HBMSubsystem()
        port = AXI4Master(data_bits=64)
        nbytes = 1 << 16
        assert hbm.transfer_cycles(nbytes, port) == port.transfer_cycles(nbytes)

    def test_dram_bound_when_port_wide(self):
        hbm = HBMSubsystem()
        wide = AXI4Master(data_bits=1024, setup_cycles=1)
        nbytes = 1 << 20
        cycles = hbm.transfer_cycles(nbytes, wide)
        assert cycles > wide.transfer_cycles(nbytes) * 0.99
        # must be at least bytes / channel-bytes-per-cycle
        assert cycles >= nbytes / hbm.channel.bytes_per_cycle(hbm.clock_mhz)

    def test_channel_sharing_slows_streams(self):
        hbm = HBMSubsystem(channels=2)
        port = AXI4Master(data_bits=1024, setup_cycles=1)
        solo = hbm.transfer_cycles(1 << 20, port, concurrent_streams=1)
        shared = hbm.transfer_cycles(1 << 20, port, concurrent_streams=8)
        assert shared > solo

    def test_streams_within_channel_count_free(self):
        hbm = HBMSubsystem(channels=32)
        port = AXI4Master(data_bits=64)
        a = hbm.transfer_cycles(4096, port, concurrent_streams=1)
        b = hbm.transfer_cycles(4096, port, concurrent_streams=32)
        assert a == b

    def test_aggregate_bandwidth(self):
        hbm = HBMSubsystem(channels=32, channel=HBMChannel(14.4))
        assert hbm.aggregate_bandwidth_gbps() == pytest.approx(460.8)

    def test_zero_bytes_free(self):
        assert HBMSubsystem().transfer_cycles(0, AXI4Master()) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            HBMSubsystem(channels=0)
        with pytest.raises(ValueError):
            HBMSubsystem().transfer_cycles(1, AXI4Master(),
                                           concurrent_streams=0)


class TestTransferEdgeCases:
    """Boundary behavior of the max(protocol, DRAM) composition."""

    def test_single_byte_pays_full_setup(self):
        """The smallest possible read still costs an address phase and
        the DRAM access latency — whichever is larger binds."""
        hbm = HBMSubsystem()
        port = AXI4Master(data_bits=64, setup_cycles=32)
        cycles = hbm.transfer_cycles(1, port)
        assert cycles == max(
            port.setup_cycles + 1,
            hbm.channel.access_latency_cycles(hbm.clock_mhz) + 1,
        )

    def test_crossover_point_exists(self):
        """Small transfers are DRAM-latency bound on a wide port; large
        ones protocol-bound on a narrow port — the same subsystem."""
        hbm = HBMSubsystem()
        wide = AXI4Master(data_bits=1024, setup_cycles=1)
        narrow = AXI4Master(data_bits=32, setup_cycles=32)
        small, big = 64, 1 << 20
        assert hbm.transfer_cycles(small, wide) > wide.transfer_cycles(small)
        assert (hbm.transfer_cycles(big, narrow)
                == narrow.transfer_cycles(big))

    def test_transfer_monotone_in_stream_count(self):
        hbm = HBMSubsystem(channels=4)
        port = AXI4Master(data_bits=1024, setup_cycles=1)
        costs = [hbm.transfer_cycles(1 << 20, port, concurrent_streams=s)
                 for s in (1, 4, 8, 16, 64)]
        assert costs == sorted(costs)

    def test_fractional_share_rounds_up_not_down(self):
        """5 streams on 4 channels must cost more than 4 on 4."""
        hbm = HBMSubsystem(channels=4)
        port = AXI4Master(data_bits=1024, setup_cycles=1)
        fit = hbm.transfer_cycles(1 << 20, port, concurrent_streams=4)
        spill = hbm.transfer_cycles(1 << 20, port, concurrent_streams=5)
        assert spill > fit

    def test_low_clock_raises_per_cycle_bandwidth(self):
        """Halving the kernel clock doubles bytes-per-cycle, so the
        cycle count of a DRAM-bound transfer shrinks (wall time does
        not — cycles are longer)."""
        slow = HBMSubsystem(clock_mhz=100.0)
        fast = HBMSubsystem(clock_mhz=400.0)
        port = AXI4Master(data_bits=4096, setup_cycles=1)
        assert (slow.transfer_cycles(1 << 20, port)
                < fast.transfer_cycles(1 << 20, port))
