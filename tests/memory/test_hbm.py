"""Unit tests for the HBM subsystem model."""

import pytest

from repro.memory import AXI4Master, HBMChannel, HBMSubsystem


class TestChannel:
    def test_bytes_per_cycle(self):
        ch = HBMChannel(bandwidth_gbps=14.4)
        assert ch.bytes_per_cycle(200.0) == pytest.approx(72.0)

    def test_latency_cycles(self):
        ch = HBMChannel(access_latency_ns=120.0)
        assert ch.access_latency_cycles(200.0) == 24

    def test_invalid_clock(self):
        with pytest.raises(ValueError):
            HBMChannel().bytes_per_cycle(0)


class TestSubsystem:
    def test_protocol_bound_when_port_narrow(self):
        """A 64-bit port at 200 MHz (1.6 GB/s) cannot saturate one HBM
        pseudo-channel (14.4 GB/s) → protocol cost binds."""
        hbm = HBMSubsystem()
        port = AXI4Master(data_bits=64)
        nbytes = 1 << 16
        assert hbm.transfer_cycles(nbytes, port) == port.transfer_cycles(nbytes)

    def test_dram_bound_when_port_wide(self):
        hbm = HBMSubsystem()
        wide = AXI4Master(data_bits=1024, setup_cycles=1)
        nbytes = 1 << 20
        cycles = hbm.transfer_cycles(nbytes, wide)
        assert cycles > wide.transfer_cycles(nbytes) * 0.99
        # must be at least bytes / channel-bytes-per-cycle
        assert cycles >= nbytes / hbm.channel.bytes_per_cycle(hbm.clock_mhz)

    def test_channel_sharing_slows_streams(self):
        hbm = HBMSubsystem(channels=2)
        port = AXI4Master(data_bits=1024, setup_cycles=1)
        solo = hbm.transfer_cycles(1 << 20, port, concurrent_streams=1)
        shared = hbm.transfer_cycles(1 << 20, port, concurrent_streams=8)
        assert shared > solo

    def test_streams_within_channel_count_free(self):
        hbm = HBMSubsystem(channels=32)
        port = AXI4Master(data_bits=64)
        a = hbm.transfer_cycles(4096, port, concurrent_streams=1)
        b = hbm.transfer_cycles(4096, port, concurrent_streams=32)
        assert a == b

    def test_aggregate_bandwidth(self):
        hbm = HBMSubsystem(channels=32, channel=HBMChannel(14.4))
        assert hbm.aggregate_bandwidth_gbps() == pytest.approx(460.8)

    def test_zero_bytes_free(self):
        assert HBMSubsystem().transfer_cycles(0, AXI4Master()) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            HBMSubsystem(channels=0)
        with pytest.raises(ValueError):
            HBMSubsystem().transfer_cycles(1, AXI4Master(),
                                           concurrent_streams=0)
