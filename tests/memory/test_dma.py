"""Unit + property tests for load/compute overlap."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory import (
    TilePhase,
    overlapped_cycles,
    serialized_cycles,
    tiled_engine_cycles,
    uniform_phases,
)

phases_strategy = st.lists(
    st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)).map(
        lambda lc: TilePhase(load=lc[0], compute=lc[1])),
    min_size=0, max_size=20,
)


class TestSerialized:
    def test_simple_sum(self):
        phases = uniform_phases(3, load=10, compute=20)
        rep = serialized_cycles(phases)
        assert rep.total == 90
        assert rep.overlap_saved == 0


class TestOverlapped:
    def test_textbook_case(self):
        # load0 + max(c0, l1) + max(c1, l2) + c2
        phases = uniform_phases(3, load=10, compute=20)
        rep = overlapped_cycles(phases)
        assert rep.total == 10 + 20 + 20 + 20

    def test_load_bound_case(self):
        phases = uniform_phases(3, load=30, compute=5)
        rep = overlapped_cycles(phases)
        assert rep.total == 30 + 30 + 30 + 5

    def test_empty_sequence(self):
        assert overlapped_cycles([]).total == 0

    def test_single_tile_no_overlap_possible(self):
        rep = overlapped_cycles([TilePhase(10, 20)])
        assert rep.total == 30
        assert rep.overlap_saved == 0

    @given(phases_strategy)
    def test_overlap_never_worse_than_serial(self, phases):
        assert overlapped_cycles(phases).total <= serialized_cycles(phases).total

    @given(phases_strategy)
    def test_overlap_lower_bound(self, phases):
        """Total can never beat max(all loads, all computes)."""
        rep = overlapped_cycles(phases)
        assert rep.total >= max(rep.load_only, rep.compute_only)

    @given(phases_strategy)
    def test_saving_bounded_by_smaller_side(self, phases):
        rep = overlapped_cycles(phases)
        assert rep.overlap_saved <= min(rep.load_only, rep.compute_only)
        assert 0.0 <= rep.overlap_efficiency <= 1.0

    def test_perfect_hiding_efficiency_one(self):
        """Equal load/compute with many tiles → nearly all load hidden."""
        phases = uniform_phases(100, load=10, compute=10)
        rep = overlapped_cycles(phases)
        assert rep.overlap_efficiency > 0.98


class TestConvenience:
    def test_tiled_engine_cycles_switches_mode(self):
        total_d, _ = tiled_engine_cycles(4, 10, 20, double_buffered=True)
        total_s, _ = tiled_engine_cycles(4, 10, 20, double_buffered=False)
        assert total_d < total_s

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            uniform_phases(-1, 1, 1)
        with pytest.raises(ValueError):
            TilePhase(-1, 0)


class TestOverlapEdgeCases:
    def test_zero_load_phases_pure_compute(self):
        """All-resident weights: overlap degenerates to compute sum."""
        phases = uniform_phases(5, load=0, compute=7)
        assert overlapped_cycles(phases).total == 35
        assert serialized_cycles(phases).total == 35

    def test_zero_compute_phases_pure_streaming(self):
        """Zero-work tiles: nothing can hide, totals equal the loads."""
        phases = uniform_phases(5, load=7, compute=0)
        assert overlapped_cycles(phases).total == 35
        assert serialized_cycles(phases).total == 35

    def test_alternating_bound_phases(self):
        """Load-bound and compute-bound tiles interleaved: each pair
        hides the smaller side exactly once."""
        phases = [TilePhase(100, 1), TilePhase(1, 100),
                  TilePhase(100, 1), TilePhase(1, 100)]
        rep = overlapped_cycles(phases)
        # 100 + max(1,1) + max(100,100) + max(1,1) + 100
        assert rep.total == 100 + 1 + 100 + 1 + 100

    def test_single_zero_phase(self):
        rep = overlapped_cycles([TilePhase(0, 0)])
        assert rep.total == 0
        assert rep.overlap_efficiency == 0.0

    def test_tiled_engine_zero_tiles(self):
        total, rep = tiled_engine_cycles(0, 10, 20, double_buffered=True)
        assert total == 0 and rep.total == 0
