"""Unit tests for the buffer-fill model."""

import pytest

from repro.memory import BufferFillModel


class TestBufferFill:
    def test_fill_cycles_ceiling(self):
        m = BufferFillModel(write_lanes=8)
        assert m.fill_cycles(64) == 8
        assert m.fill_cycles(65) == 9
        assert m.fill_cycles(0) == 0

    def test_from_axi_beat(self):
        m = BufferFillModel.from_axi_beat(data_bits=64, element_bits=8)
        assert m.write_lanes == 8

    def test_from_axi_beat_wide_elements(self):
        m = BufferFillModel.from_axi_beat(data_bits=64, element_bits=16)
        assert m.write_lanes == 4

    def test_narrow_beat_minimum_one_lane(self):
        m = BufferFillModel.from_axi_beat(data_bits=8, element_bits=16)
        assert m.write_lanes == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferFillModel(write_lanes=0)
        with pytest.raises(ValueError):
            BufferFillModel().fill_cycles(-1)
