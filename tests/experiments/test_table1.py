"""Experiment tests: Table I shape checks against the paper."""

import pytest

from repro.experiments import table1
from repro.experiments.common import relative_error


@pytest.fixture(scope="module")
def result():
    return table1.run()


class TestStructure:
    def test_nine_rows(self, result):
        assert len(result.rows) == 9
        assert result.column("test") == list(range(1, 10))

    def test_render_contains_paper_columns(self, result):
        text = table1.render(result)
        assert "paper_ms" in text and "279" in text


class TestShapeVsPaper:
    """The reproduction contract: orderings and ratios, not absolutes."""

    def _lat(self, result):
        return dict(zip(result.column("test"), result.column("latency_ms")))

    def test_head_ordering(self, result):
        lat = self._lat(result)
        assert lat[1] < lat[2] < lat[3]  # fewer heads → slightly slower

    def test_head_insensitivity(self, result):
        lat = self._lat(result)
        assert lat[3] / lat[1] < 1.15  # paper: 295/279 = 1.06

    def test_layer_linearity(self, result):
        lat = self._lat(result)
        assert lat[4] / lat[1] == pytest.approx(8 / 12, rel=0.02)
        assert lat[5] / lat[1] == pytest.approx(4 / 12, rel=0.02)

    def test_d_model_roughly_linear(self, result):
        lat = self._lat(result)
        assert 0.5 < lat[6] / lat[1] < 0.75   # paper 0.667
        assert 0.2 < lat[7] / lat[1] < 0.4    # paper 0.34

    def test_seq_len_ordering(self, result):
        lat = self._lat(result)
        assert lat[9] < lat[1] < lat[8]

    def test_absolute_latency_within_2x_of_paper(self, result):
        for test_no, measured in self._lat(result).items():
            paper = table1.PAPER_TABLE1[test_no][0]
            assert abs(relative_error(measured, paper)) < 1.0, (
                f"test {test_no}: {measured} vs paper {paper}")

    def test_gops_star_matches_paper_convention(self, result):
        """Tests 4-5: the paper-convention GOPS* lands near 80/159."""
        rows = {r[0]: r for r in result.rows}
        gops_star_idx = result.headers.index("GOPS*")
        assert rows[4][gops_star_idx] == pytest.approx(80, rel=0.25)
        assert rows[5][gops_star_idx] == pytest.approx(159, rel=0.25)


class TestResourceInvariance:
    def test_notes_report_constant_resources(self, result):
        joined = " ".join(result.notes)
        assert "3612" in joined
        assert "40%" in joined
