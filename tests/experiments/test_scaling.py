"""Shape and sanity tests for the multi-FPGA scaling experiment."""

import pytest

from repro.experiments import scaling


@pytest.fixture(scope="module")
def result():
    return scaling.run()


class TestRun:
    def test_covers_both_models(self, result):
        models = set(result.column("model"))
        assert models == set(scaling.MODELS)

    def test_k1_rows_are_the_baseline(self, result):
        for row in result.rows:
            model, k = row[0], row[1]
            speedup = row[result.headers.index("speedup")]
            if k == 1:
                assert speedup == pytest.approx(1.0)

    def test_speedup_monotone_per_model(self, result):
        idx_s = result.headers.index("speedup")
        for model in scaling.MODELS:
            speedups = [r[idx_s] for r in result.rows if r[0] == model]
            assert speedups == sorted(speedups)

    def test_efficiency_bounded(self, result):
        idx_e = result.headers.index("efficiency")
        for row in result.rows:
            assert 0 < row[idx_e] <= 1.0 + 1e-9

    def test_deep_model_scales_linearly(self, result):
        """12 balanced layers: 4 devices -> ~4x."""
        idx_s = result.headers.index("speedup")
        four = [r[idx_s] for r in result.rows
                if r[0] == "bert-variant" and r[1] == 4]
        assert four and four[0] > 3.9

    def test_shallow_model_keeps_scaling_past_its_depth(self, result):
        """2 layers cap the pipeline at 2 stages; tensor splits must
        still buy speedup at K=4."""
        idx_s = result.headers.index("speedup")
        by_k = {r[1]: r[idx_s] for r in result.rows
                if r[0] == "model3-efa-trans"}
        assert by_k[4] > by_k[2] > 1.0

    def test_series_for_plotting(self, result):
        for model in scaling.MODELS:
            series = result.series[model]
            assert series[0][0] == 1
            rates = [rate for _, rate in series]
            assert rates == sorted(rates)


class TestRender:
    def test_render_contains_notes_and_rows(self, result):
        text = scaling.render(result)
        assert "Multi-FPGA scaling" in text
        assert "note:" in text
        assert "bert-variant" in text

    def test_render_without_result_recomputes(self):
        assert "Multi-FPGA scaling" in scaling.render()
