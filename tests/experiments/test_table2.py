"""Experiment tests: Table II shape checks."""

import pytest

from repro.experiments import table2


@pytest.fixture(scope="module")
def result():
    return table2.run()


class TestStructure:
    def test_paired_rows(self, result):
        """Five comparators, each followed by a ProTEA row."""
        assert len(result.rows) == 10
        names = result.column("accelerator")
        assert names[1::2] == ["ProTEA (ours)"] * 5

    def test_render(self, result):
        text = table2.render(result)
        assert "EFA-Trans" in text
        assert "what-if" in text


class TestOrderings:
    """Who wins each published comparison must be preserved."""

    def _pairs(self, result):
        lat = result.column("latency_ms")
        names = result.column("accelerator")
        return [(names[i], lat[i], lat[i + 1])
                for i in range(0, len(lat), 2)]

    def test_sparse_pruned_peng_beats_dense_protea(self, result):
        for name, comp, ours in self._pairs(result):
            if "Peng" in name:
                assert comp < ours  # 90% sparsity wins on latency

    def test_protea_beats_hep_float32_design(self, result):
        """Paper: 2.8x faster than Wojcicki et al.; ordering must hold."""
        for name, comp, ours in self._pairs(result):
            if "Wojcicki" in name:
                assert ours < comp

    def test_hdl_efa_trans_beats_protea(self, result):
        for name, comp, ours in self._pairs(result):
            if "EFA" in name:
                assert comp < ours  # paper: EFA-Trans 3.5x faster

    def test_protea_gops_per_dsp_beats_wojcicki_and_ftrans(self, result):
        gpd = result.column("(GOPS/DSP)x1000")
        names = result.column("accelerator")
        vals = dict()
        for i in range(0, len(names), 2):
            vals[names[i]] = (gpd[i], gpd[i + 1])
        for key, (comp, ours) in vals.items():
            if "Wojcicki" in key or "FTRANS" in key:
                assert ours > comp, key

    def test_sparsity_whatif_directions(self, result):
        """Granting ProTEA 93% compression must beat FTRANS; granting
        90% sparsity must still lose to Peng et al. — the paper's two
        qualitative conclusions."""
        notes = " ".join(result.notes)
        assert "faster than [29]" in notes
        assert "slower than [21]" in notes
