"""Experiment tests: Fig. 7 shape checks."""

import pytest

from repro.experiments import figure7


@pytest.fixture(scope="module")
def result():
    return figure7.run()


class TestStructure:
    def test_grid_size(self, result):
        assert len(result.rows) == 15

    def test_series_extracted(self, result):
        assert "freq_mha12" in result.series
        assert len(result.series["freq_mha12"]) == 5

    def test_render_and_plot(self, result):
        assert "12" in figure7.render(result)
        plot = figure7.ascii_plot(result)
        assert plot.count("#") > 50


class TestHeadline:
    def test_optimum_is_12_6(self, result):
        notes = " ".join(result.notes)
        assert "12 MHA tiles / 6 FFN tiles" in notes

    def test_peak_is_200mhz(self, result):
        assert max(result.column("fmax_MHz")) == pytest.approx(200.0, abs=0.5)

    def test_normalized_latency_min_is_one(self, result):
        assert min(result.column("norm_latency")) == pytest.approx(1.0)

    def test_mha12_curve_dominates_at_ffn6(self, result):
        """At 6 FFN tiles the 12-MHA-tile curve has the highest clock
        — the figure's blue-curve ordering."""
        freqs = {}
        for row in result.rows:
            if row[1] == 6:  # tiles_FFN
                freqs[row[0]] = row[4]
        assert freqs[12] > freqs[6]
        assert freqs[12] > freqs[48]

    def test_two_ffn_tiles_always_worst_clock(self, result):
        for mha in (6, 12, 48):
            curve = {r[1]: r[4] for r in result.rows if r[0] == mha}
            assert curve[2] == min(curve.values())
