"""Unit tests for the experiment scaffolding."""

import pytest

from repro.experiments.common import (
    ExperimentResult,
    default_accelerator,
    relative_error,
)


class TestExperimentResult:
    def test_column_extraction(self):
        r = ExperimentResult(name="t", headers=["a", "b"],
                             rows=[(1, 2), (3, 4)])
        assert r.column("b") == [2, 4]

    def test_unknown_column(self):
        r = ExperimentResult(name="t", headers=["a"], rows=[(1,)])
        with pytest.raises(ValueError):
            r.column("zzz")


class TestDefaultAccelerator:
    def test_cached_singleton(self):
        assert default_accelerator() is default_accelerator()

    def test_published_configuration(self):
        accel = default_accelerator()
        assert accel.synth.ts_mha == 64
        assert accel.synth.ts_ffn == 128
        assert accel.device.name == "Alveo U55C"


class TestRelativeError:
    def test_signed(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.10)
        assert relative_error(90.0, 100.0) == pytest.approx(-0.10)

    def test_zero_paper_value_rejected(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)
