"""Experiment tests: Table III shape checks."""

import pytest

from repro.experiments import table3


@pytest.fixture(scope="module")
def result():
    return table3.run()


def rows_for(result, model_id):
    return [r for r in result.rows if r[0] == model_id]


class TestStructure:
    def test_all_models_present(self, result):
        assert {r[0] for r in result.rows} == {"#1", "#2", "#3", "#4"}

    def test_each_model_ends_with_protea(self, result):
        for mid in ("#1", "#2", "#3", "#4"):
            assert "ProTEA" in rows_for(result, mid)[-1][2]

    def test_base_platform_speedup_is_one(self, result):
        for mid in ("#1", "#2", "#3", "#4"):
            assert rows_for(result, mid)[0][-1] == pytest.approx(1.0)

    def test_published_comparator_latencies(self, result):
        """The anchored platforms reproduce the cited numbers."""
        r1 = rows_for(result, "#1")
        assert r1[0][4] == pytest.approx(3.54, rel=1e-3)
        assert r1[1][4] == pytest.approx(0.673, rel=1e-3)


class TestOrderings:
    """The paper's qualitative conclusions per row."""

    def test_model1_protea_slower_than_cpu(self, result):
        """Paper: 0.79x (ProTEA loses to the pruned-model CPU run)."""
        rows = rows_for(result, "#1")
        assert rows[-1][-1] < 1.0

    def test_model2_protea_beats_titan_xp(self, result):
        """Paper: 2.5x faster than the Titan XP on the HEP model."""
        rows = rows_for(result, "#2")
        assert rows[-1][-1] > 1.0

    def test_model3_protea_slower_than_cpu_and_gpu(self, result):
        rows = rows_for(result, "#3")
        protea = rows[-1]
        assert protea[-1] < 1.0

    def test_model4_protea_large_speedup(self, result):
        """Paper: 16x over the Titan XP (framework-heavy NLP stack)."""
        rows = rows_for(result, "#4")
        assert rows[-1][-1] > 2.0

    def test_no_resynthesis_note(self, result):
        assert any("resynthesized 0 times" in n for n in result.notes)
