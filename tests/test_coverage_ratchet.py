"""The coverage ratchet must itself stay correct and parseable.

CI runs ``pytest --cov=repro`` and feeds the JSON report to
``tools/coverage_ratchet.py``; these tests pin the comparison logic
and the committed baseline file without needing coverage tooling in
the tier-1 environment.
"""

import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent
sys.path.insert(0, str(REPO / "tools"))

import coverage_ratchet  # noqa: E402

BASELINE = REPO / "tests" / "coverage_baseline.json"


class TestCheck:
    def test_holding_the_baseline_passes(self):
        ok, msg = coverage_ratchet.check(86.0, 86.0)
        assert ok and "holds" in msg

    def test_small_drop_within_allowance_passes(self):
        ok, _ = coverage_ratchet.check(85.6, 86.0, max_drop=0.5)
        assert ok

    def test_drop_beyond_allowance_fails(self):
        ok, msg = coverage_ratchet.check(85.4, 86.0, max_drop=0.5)
        assert not ok
        assert "fell below" in msg

    def test_improvement_hints_ratchet_up(self):
        ok, msg = coverage_ratchet.check(90.0, 86.0)
        assert ok and "ratchet up" in msg

    def test_boundary_is_inclusive(self):
        ok, _ = coverage_ratchet.check(85.5, 86.0, max_drop=0.5)
        assert ok


class TestBaselineFile:
    def test_committed_baseline_parses(self):
        percent, max_drop = coverage_ratchet.read_baseline(BASELINE)
        assert 0.0 < percent <= 100.0
        assert max_drop == 0.5

    def test_report_reader_matches_coveragepy_schema(self, tmp_path):
        report = tmp_path / "coverage.json"
        report.write_text(json.dumps(
            {"totals": {"percent_covered": 87.125}}))
        assert coverage_ratchet.read_measured(report) == 87.125

    def test_main_exit_codes(self, tmp_path):
        report = tmp_path / "coverage.json"
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"percent": 80.0,
                                        "max_drop": 0.5}))
        report.write_text(json.dumps(
            {"totals": {"percent_covered": 81.0}}))
        assert coverage_ratchet.main(
            ["prog", str(report), str(baseline)]) == 0
        report.write_text(json.dumps(
            {"totals": {"percent_covered": 70.0}}))
        assert coverage_ratchet.main(
            ["prog", str(report), str(baseline)]) == 1
        assert coverage_ratchet.main(["prog"]) == 2


@pytest.mark.skipif(
    __import__("importlib").util.find_spec("pytest_cov") is None,
    reason="pytest-cov not installed (the CI coverage job installs it)")
def test_cov_plugin_available_marker():
    """Runs only where pytest-cov exists, so the CI coverage job
    exercises at least one test through the plugin."""
    assert True
