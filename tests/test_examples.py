"""Smoke tests: the runnable examples must stay runnable.

Each example is executed in-process via ``runpy`` (they all end with an
assertion-checked "OK" path).  Only the fast examples run here; the
full set is exercised by CI-style manual runs (they all print their own
verdicts).
"""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(name: str) -> None:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


@pytest.mark.parametrize("name", [
    "quickstart.py",
    "deploy_from_checkpoint.py",
    "runtime_reprogramming.py",
    "serving_simulation.py",
    "multi_fpga_pipeline.py",
    "design_space_exploration.py",
    "generation_serving.py",
    "sim_scenarios.py",
    "observability_tour.py",
])
def test_example_runs(name):
    _run(name)


def test_examples_directory_complete():
    """The documented example set exists."""
    expected = {
        "quickstart.py",
        "runtime_reprogramming.py",
        "design_space_exploration.py",
        "physics_trigger_inference.py",
        "deploy_from_checkpoint.py",
        "seq2seq_decoder_extension.py",
        "quantization_study.py",
        "latency_timeline.py",
        "serving_simulation.py",
        "multi_fpga_pipeline.py",
        "generation_serving.py",
        "sim_scenarios.py",
        "observability_tour.py",
    }
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert expected <= present
