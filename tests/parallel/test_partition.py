"""Tests for the DP layer splitter and tensor-parallel stage math."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import ProTEA, SynthParams
from repro.nn import MODEL_ZOO, get_model
from repro.parallel import (
    AURORA_64B66B,
    balanced_partition,
    tp_allreduce_cycles,
    tp_layer_latency,
    validate_tensor_parallel,
)


@pytest.fixture(scope="module")
def accel():
    return ProTEA.synthesize(SynthParams())


class TestBalancedPartition:
    def test_uniform_costs_split_evenly(self):
        parts = balanced_partition([5] * 12, 4)
        assert parts == [(0, 3), (3, 6), (6, 9), (9, 12)]

    def test_covers_everything_contiguously(self):
        parts = balanced_partition([3, 1, 4, 1, 5, 9, 2, 6], 3)
        assert parts[0][0] == 0 and parts[-1][1] == 8
        for (_, e), (s, _) in zip(parts, parts[1:]):
            assert e == s

    def test_k_equals_n_one_layer_each(self):
        assert balanced_partition([1, 2, 3], 3) == [(0, 1), (1, 2), (2, 3)]

    def test_k_one_single_segment(self):
        assert balanced_partition([7, 7, 7], 1) == [(0, 3)]

    def test_skewed_costs_isolate_the_heavy_layer(self):
        parts = balanced_partition([1, 1, 100, 1, 1], 3)
        sums = [sum([1, 1, 100, 1, 1][a:b]) for a, b in parts]
        assert max(sums) == 100  # the heavy layer sits alone

    def test_validation(self):
        with pytest.raises(ValueError):
            balanced_partition([1, 2], 3)
        with pytest.raises(ValueError):
            balanced_partition([1, 2], 0)
        with pytest.raises(ValueError):
            balanced_partition([1, -1], 1)

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=8),
           st.integers(1, 4))
    def test_optimal_against_brute_force(self, costs, k):
        """The DP bottleneck matches exhaustive search."""
        if k > len(costs):
            return
        parts = balanced_partition(costs, k)
        got = max(sum(costs[a:b]) for a, b in parts)
        n = len(costs)
        best = None
        for cuts in itertools.combinations(range(1, n), k - 1):
            bounds = (0,) + cuts + (n,)
            bottleneck = max(sum(costs[bounds[i]:bounds[i + 1]])
                             for i in range(k))
            best = bottleneck if best is None else min(best, bottleneck)
        assert got == best


class TestTensorParallelLayer:
    def test_tp1_reproduces_latency_model_exactly(self, accel):
        """Acceptance property: the tp=1 stage math IS the single-device
        layer model — identical totals, compute, and load breakdowns."""
        lm = accel.latency_model
        for name, cfg in MODEL_ZOO.items():
            ours = tp_layer_latency(lm, cfg.seq_len, cfg.d_model,
                                    cfg.num_heads, 1)
            ref = lm.layer_cycles(cfg.seq_len, cfg.d_model, cfg.num_heads)
            assert ours.total == ref.total, name
            assert ours.compute == ref.compute, name
            assert ours.loads == ref.loads, name

    def test_tp_reduces_weight_traffic_not_compute(self, accel):
        """Head splits shrink the streamed loads; the per-head engines
        already ran in parallel, so compute cycles hold still."""
        lm = accel.latency_model
        cfg = get_model("bert-variant")
        one = tp_layer_latency(lm, cfg.seq_len, cfg.d_model,
                               cfg.num_heads, 1)
        two = tp_layer_latency(lm, cfg.seq_len, cfg.d_model,
                               cfg.num_heads, 2)
        assert two.loads["qkv"] < one.loads["qkv"]
        assert two.load_total < one.load_total
        assert two.compute["qk"] == one.compute["qk"]
        assert two.total < one.total

    def test_tp_monotone_in_ways(self, accel):
        lm = accel.latency_model
        cfg = get_model("bert-variant")
        totals = [
            tp_layer_latency(lm, cfg.seq_len, cfg.d_model,
                             cfg.num_heads, tp).total
            for tp in (1, 2, 4, 8)
        ]
        assert totals == sorted(totals, reverse=True)

    def test_indivisible_heads_rejected(self, accel):
        lm = accel.latency_model
        with pytest.raises(ValueError, match="divisible"):
            tp_layer_latency(lm, 64, 768, 8, 3)

    def test_validate_tensor_parallel(self):
        cfg = get_model("bert-variant")
        validate_tensor_parallel(cfg, 4)  # 8 heads: fine
        with pytest.raises(ValueError, match="whole heads"):
            validate_tensor_parallel(cfg, 3)
        with pytest.raises(ValueError):
            validate_tensor_parallel(cfg, 0)


class TestAllReduceCost:
    def test_tp1_free(self, accel):
        cfg = get_model("bert-variant")
        assert tp_allreduce_cycles(accel.latency_model, cfg, 1,
                                   AURORA_64B66B, accel.clock_mhz) == 0

    def test_two_collectives_per_layer(self, accel):
        """The per-layer cost is exactly two activation all-reduces."""
        from repro.parallel import activation_bytes

        lm = accel.latency_model
        cfg = get_model("bert-variant")
        nbytes = activation_bytes(lm, cfg.seq_len, cfg.d_model)
        got = tp_allreduce_cycles(lm, cfg, 4, AURORA_64B66B,
                                  accel.clock_mhz)
        assert got == 2 * AURORA_64B66B.allreduce_cycles(
            nbytes, 4, accel.clock_mhz)
