"""Unit + property tests for the inter-device link cost model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel import (
    AURORA_64B66B,
    ETHERNET_10G,
    ETHERNET_100G,
    LINKS,
    PCIE_GEN4_X8,
    InterconnectLink,
    get_link,
)


class TestTransfer:
    def test_zero_bytes_free(self):
        assert AURORA_64B66B.transfer_us(0) == 0.0
        assert AURORA_64B66B.transfer_cycles(0, 200.0) == 0

    def test_latency_floor(self):
        """Even one byte pays the first-bit latency."""
        assert AURORA_64B66B.transfer_us(1) > AURORA_64B66B.latency_us

    def test_bandwidth_term(self):
        """A 1 MiB payload on a 100 Gb/s-class link is bandwidth-bound:
        ~80-90 us of serialization versus sub-us latency."""
        us = AURORA_64B66B.transfer_us(1 << 20)
        assert 60.0 < us < 120.0

    def test_cycles_scale_with_clock(self):
        n = 1 << 16
        assert (AURORA_64B66B.transfer_cycles(n, 400.0)
                >= 2 * AURORA_64B66B.transfer_cycles(n, 200.0) - 1)

    def test_efficiency_taxes_bandwidth(self):
        raw = InterconnectLink("raw", 100.0, 0.0, efficiency=1.0)
        taxed = InterconnectLink("taxed", 100.0, 0.0, efficiency=0.5)
        assert taxed.transfer_us(4096) == pytest.approx(
            2 * raw.transfer_us(4096))

    @given(st.integers(0, 1 << 24), st.integers(1, 1 << 20))
    def test_monotone_in_bytes(self, nbytes, delta):
        assert (AURORA_64B66B.transfer_us(nbytes + delta)
                >= AURORA_64B66B.transfer_us(nbytes))

    def test_validation(self):
        with pytest.raises(ValueError):
            InterconnectLink("x", 0.0, 1.0)
        with pytest.raises(ValueError):
            InterconnectLink("x", 1.0, -1.0)
        with pytest.raises(ValueError):
            InterconnectLink("x", 1.0, 1.0, efficiency=0.0)
        with pytest.raises(ValueError):
            InterconnectLink("x", 1.0, 1.0, overhead_bytes=-1)
        with pytest.raises(ValueError):
            AURORA_64B66B.transfer_us(-1)
        with pytest.raises(ValueError):
            AURORA_64B66B.transfer_cycles(1, 0.0)


class TestAllReduce:
    def test_one_way_is_free(self):
        assert ETHERNET_100G.allreduce_us(1 << 20, 1) == 0.0

    def test_zero_bytes_free(self):
        assert ETHERNET_100G.allreduce_us(0, 4) == 0.0

    def test_ring_step_count(self):
        """2(w-1) steps of an nbytes/w shard."""
        link = InterconnectLink("ideal", 100.0, 0.0)
        n, w = 1 << 20, 4
        expect = 2 * (w - 1) * link.transfer_us(n // w)
        assert link.allreduce_us(n, w) == pytest.approx(expect)

    def test_latency_dominates_wide_groups_for_small_payloads(self):
        """Small tensors: ring time grows with group size (step count),
        not payload."""
        small = 256
        t2 = ETHERNET_100G.allreduce_us(small, 2)
        t8 = ETHERNET_100G.allreduce_us(small, 8)
        assert t8 > t2

    def test_validation(self):
        with pytest.raises(ValueError):
            AURORA_64B66B.allreduce_us(1, 0)
        with pytest.raises(ValueError):
            AURORA_64B66B.allreduce_cycles(1, 2, 0.0)


class TestRegistry:
    def test_presets_registered(self):
        assert LINKS == {
            "aurora": AURORA_64B66B,
            "eth100g": ETHERNET_100G,
            "eth10g": ETHERNET_10G,
            "pcie4x8": PCIE_GEN4_X8,
        }

    def test_get_link(self):
        assert get_link("aurora") is AURORA_64B66B

    def test_get_link_unknown_lists_choices(self):
        with pytest.raises(KeyError, match="aurora"):
            get_link("infiniband")

    def test_relative_speeds(self):
        """The presets keep their physical ordering for a bulk
        activation transfer."""
        n = 1 << 20
        assert (AURORA_64B66B.transfer_us(n)
                < ETHERNET_100G.transfer_us(n)
                < ETHERNET_10G.transfer_us(n))
