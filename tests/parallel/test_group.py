"""PipelineGroup as a serving instance: duck typing + fleet tradeoffs."""

import pytest

from repro import ProTEA, SynthParams
from repro.nn import get_model
from repro.parallel import AURORA_64B66B, PipelineGroup
from repro.serving import (
    ModelMix,
    PoissonArrivals,
    plan_capacity,
    simulate,
    summarize,
)


@pytest.fixture(scope="module")
def accel():
    return ProTEA.synthesize(SynthParams())


@pytest.fixture(scope="module")
def requests():
    return PoissonArrivals(40, ModelMix("model3-efa-trans"),
                           seed=0).generate(2_000)


class TestDuckTyping:
    def test_protea_surface(self, accel):
        group = PipelineGroup(accel, n_devices=2)
        assert group.synth is accel.synth
        assert group.clock_mhz == accel.clock_mhz
        assert group.device is accel.device

    def test_program_then_config(self, accel):
        group = PipelineGroup(accel, n_devices=2)
        cfg = get_model("bert-variant")
        assert group.program(cfg) is group
        assert group.config is cfg

    def test_unprogrammed_config_raises(self, accel):
        with pytest.raises(RuntimeError, match="program"):
            PipelineGroup(accel, 2).config

    def test_latency_report_matches_plan(self, accel):
        group = PipelineGroup(accel, n_devices=4)
        cfg = get_model("bert-variant")
        rep = group.latency_report(cfg)
        plan = group.plan_for(cfg)
        assert rep.latency_ms == plan.latency_ms
        assert rep.total_cycles == plan.fill_cycles
        assert rep.latency_s == pytest.approx(plan.latency_ms / 1e3)

    def test_fixed_tp_ways_respected(self, accel):
        group = PipelineGroup(accel, n_devices=4, tp_ways=4)
        plan = group.plan_for(get_model("bert-variant"))
        assert plan.num_stages == 1 and plan.stages[0].tp_ways == 4

    def test_plan_cache_is_exact(self, accel):
        group = PipelineGroup(accel, n_devices=2)
        cfg = get_model("bert-variant")
        assert group.plan_for(cfg) is group.plan_for(cfg)

    def test_validation(self, accel):
        with pytest.raises(ValueError):
            PipelineGroup(accel, 0)


class TestServingIntegration:
    def test_group_runs_in_cluster_simulator(self, accel, requests):
        group = PipelineGroup(accel, n_devices=2)
        result = simulate(group, requests, n_instances=2)
        report = summarize(result)
        assert report.total_requests == len(requests)
        assert report.p50_ms <= report.p99_ms

    def test_pipelining_cuts_serving_latency(self, accel, requests):
        """Groups serve each request faster than a lone device, so the
        same workload sees lower p99 from 2 x (2-deep group) than from
        2 x (1 device)."""
        singles = summarize(simulate(
            PipelineGroup(accel, n_devices=1), requests, n_instances=2))
        groups = summarize(simulate(
            PipelineGroup(accel, n_devices=2), requests, n_instances=2))
        assert groups.p99_ms < singles.p99_ms

    def test_plan_capacity_trades_depth_for_replicas(self, accel, requests):
        """A fixed budget of 4 devices: capacity planning over deeper
        groups needs fewer replicas to meet the same SLO."""
        shallow = plan_capacity(PipelineGroup(accel, n_devices=1),
                                requests, target_p99_ms=60.0)
        deep = plan_capacity(PipelineGroup(accel, n_devices=2),
                             requests, target_p99_ms=60.0)
        assert deep.instances <= shallow.instances
        assert deep.report.p99_ms <= 60.0

    def test_group_serves_model_too_large_for_one_device(self, accel):
        """num_layers beyond max_layers: unservable alone, served by a
        deep-enough group (each stage programs only its slice)."""
        from repro.isa import ResynthesisRequiredError

        big = get_model("bert-variant").with_(name="b24", num_layers=24)
        with pytest.raises(ResynthesisRequiredError):
            accel.program(big)
        group = PipelineGroup(accel, n_devices=4, link=AURORA_64B66B)
        group.program(big)
        assert group.latency_ms(big) > 0

    def test_summary_mentions_fabric(self, accel):
        text = PipelineGroup(accel, n_devices=4).summary()
        assert "4 x" in text and "aurora" in text
