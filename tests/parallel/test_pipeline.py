"""Tests for pipeline planning: exactness, scaling, timelines."""

import pytest

from repro import ProTEA, SynthParams
from repro.isa import ResynthesisRequiredError
from repro.nn import MODEL_ZOO, get_model
from repro.parallel import (
    AURORA_64B66B,
    InterconnectLink,
    PipelinePartitioner,
)


@pytest.fixture(scope="module")
def accel():
    return ProTEA.synthesize(SynthParams())


@pytest.fixture(scope="module")
def partitioner(accel):
    return PipelinePartitioner(accel, AURORA_64B66B)


class TestSingleDeviceExactness:
    def test_k1_reproduces_latency_model(self, accel, partitioner):
        """Acceptance property: a K=1 'pipeline' is bit-identical to the
        single-device analytic model for every zoo workload."""
        for name, cfg in MODEL_ZOO.items():
            plan = partitioner.plan(cfg, 1)
            rep = accel.latency_report(cfg)
            assert plan.fill_cycles == rep.total_cycles, name
            assert plan.latency_ms == pytest.approx(rep.latency_ms), name
            assert plan.link_cycles == 0
            assert plan.interconnect_cycles == 0
            assert plan.num_stages == 1 and plan.n_devices == 1


class TestPipelineScaling:
    def test_balanced_4_stage_beats_single_device(self, accel, partitioner):
        """Acceptance property: steady-state throughput of a balanced
        4-stage split strictly beats one device."""
        cfg = get_model("bert-variant")  # 12 layers -> 3 per stage
        p1 = partitioner.plan(cfg, 1)
        p4 = partitioner.plan(cfg, 4)
        assert all(b == 0 for b in p4.bubble_cycles)  # balanced
        assert (p4.steady_state_inf_per_s
                > p1.steady_state_inf_per_s)
        # Near-ideal: the link is microseconds against ~50ms stages.
        assert p4.speedup_over(p1.bottleneck_cycles) > 3.9

    def test_fill_exceeds_single_device_only_by_interconnect(
            self, partitioner):
        cfg = get_model("bert-variant")
        p1 = partitioner.plan(cfg, 1)
        p4 = partitioner.plan(cfg, 4)
        assert p4.fill_cycles == p1.fill_cycles + p4.interconnect_cycles

    def test_uneven_split_reports_bubbles(self, partitioner):
        """12 layers on 5 stages: 3+3+2+2+2 — the 2-layer stages idle."""
        cfg = get_model("bert-variant")
        plan = partitioner.plan(cfg, 5)
        sizes = sorted(s.num_layers for s in plan.stages)
        assert sizes == [2, 2, 2, 3, 3]
        assert max(plan.bubble_cycles) > 0
        assert plan.bubble_fraction > 0
        # Bubbles live exactly on the short stages.
        for stage, bubble in zip(plan.stages, plan.bubble_cycles):
            assert (bubble > 0) == (stage.num_layers == 2)

    def test_slow_link_can_become_the_bottleneck(self, accel):
        """A tiny model on a slow fabric: the boundary transfer beats
        the per-stage compute and caps throughput."""
        lame = PipelinePartitioner(
            accel, InterconnectLink(
                name="lame", bandwidth_gbps=0.01, latency_us=500.0))
        cfg = get_model("model3-efa-trans")
        plan = lame.plan(cfg, 2)
        assert plan.bottleneck_cycles == plan.link_cycles
        assert plan.bottleneck_cycles > max(plan.stage_cycles)

    def test_batch_cycles_formula(self, partitioner):
        cfg = get_model("bert-variant")
        plan = partitioner.plan(cfg, 4)
        assert plan.batch_cycles(1) == plan.fill_cycles
        assert (plan.batch_cycles(5)
                == plan.fill_cycles + 4 * plan.bottleneck_cycles)


class TestValidation:
    def test_more_stages_than_layers_rejected(self, partitioner):
        cfg = get_model("model3-efa-trans")  # 2 layers
        with pytest.raises(ValueError, match="cannot pipeline"):
            partitioner.plan(cfg, 4, tp_ways=1)

    def test_indivisible_device_count_rejected(self, partitioner):
        cfg = get_model("bert-variant")
        with pytest.raises(ValueError, match="divisible"):
            partitioner.plan(cfg, 4, tp_ways=3)

    def test_oversized_stage_raises_resynthesis(self, accel, partitioner):
        """A 24-layer model on 1 device exceeds max_layers=12."""
        big = get_model("bert-variant").with_(name="b24", num_layers=24)
        with pytest.raises(ResynthesisRequiredError):
            partitioner.plan(big, 1)
        # ... but 2 stages of 12 are exactly programmable.
        plan = partitioner.plan(big, 2)
        assert [s.num_layers for s in plan.stages] == [12, 12]

    def test_zero_devices_rejected(self, partitioner):
        with pytest.raises(ValueError):
            partitioner.plan(get_model("bert-variant"), 0)


class TestBestPlan:
    def test_shallow_model_recovers_scaling_via_tp(self, partitioner):
        """2 layers cannot pipeline 4-deep; best_plan finds 2 x tp2."""
        cfg = get_model("model3-efa-trans")
        plan = partitioner.best_plan(cfg, 4)
        assert plan.num_stages == 2
        assert plan.stages[0].tp_ways == 2
        assert plan.n_devices == 4

    def test_best_plan_never_worse_than_pure_pipeline(self, partitioner):
        cfg = get_model("bert-variant")
        best = partitioner.best_plan(cfg, 4)
        pure = partitioner.plan(cfg, 4, tp_ways=1)
        assert (best.steady_state_inf_per_s
                >= pure.steady_state_inf_per_s)

    def test_latency_objective_prefers_tensor_splits(self, partitioner):
        """Pipelining never shortens one request's path; head splits do.
        The two objectives therefore pick different shapes."""
        cfg = get_model("bert-variant")
        tput = partitioner.best_plan(cfg, 4, objective="throughput")
        lat = partitioner.best_plan(cfg, 4, objective="latency")
        assert tput.num_stages == 4          # deep pipeline
        assert lat.stages[0].tp_ways == 4    # wide tensor split
        assert lat.fill_cycles < tput.fill_cycles
        assert tput.bottleneck_cycles < lat.bottleneck_cycles

    def test_unknown_objective_rejected(self, partitioner):
        with pytest.raises(ValueError, match="objective"):
            partitioner.best_plan(get_model("bert-variant"), 2,
                                  objective="vibes")

    def test_infeasible_count_raises_with_context(self, partitioner):
        cfg = get_model("model2-lhc-trigger")  # 1 layer, 2 heads
        with pytest.raises(ValueError, match="no feasible"):
            partitioner.best_plan(cfg, 8)  # needs tp=8 > 2 heads

    def test_scaling_curve_skips_infeasible(self, partitioner):
        cfg = get_model("model2-lhc-trigger")  # caps at 1 stage x tp2
        curve = partitioner.scaling_curve(cfg, (1, 2, 8))
        assert sorted(curve) == [1, 2]


class TestTimeline:
    def test_single_item_matches_fill(self, partitioner):
        cfg = get_model("bert-variant")
        plan = partitioner.plan(cfg, 4)
        assert plan.timeline(1).total_cycles == plan.fill_cycles

    def test_stream_matches_batch_formula(self, partitioner):
        """With compute-bound stages the schedule's makespan equals the
        closed-form fill + (n-1) x period."""
        cfg = get_model("bert-variant")
        plan = partitioner.plan(cfg, 4)
        tl = plan.timeline(6)
        assert tl.total_cycles == plan.batch_cycles(6)

    def test_resources_cover_devices_and_links(self, partitioner):
        cfg = get_model("bert-variant")
        plan = partitioner.plan(cfg, 4)
        tl = plan.timeline(2)
        resources = {e.resource for e in tl.events}
        assert {"fpga0", "fpga1", "fpga2", "fpga3"} <= resources
        assert {"link0-1", "link1-2", "link2-3"} <= resources

    def test_gantt_renders(self, partitioner):
        cfg = get_model("bert-variant")
        chart = partitioner.plan(cfg, 4).timeline(3).gantt()
        assert "fpga0" in chart and "link0-1" in chart and "#" in chart

    def test_events_never_overlap_per_resource(self, partitioner):
        cfg = get_model("bert-variant")
        tl = partitioner.plan(cfg, 3).timeline(5)
        by_res = {}
        for e in tl.events:
            by_res.setdefault(e.resource, []).append(e)
        for events in by_res.values():
            events.sort(key=lambda e: e.start)
            for a, b in zip(events, events[1:]):
                assert a.end <= b.start

    def test_validation(self, partitioner):
        plan = partitioner.plan(get_model("bert-variant"), 2)
        with pytest.raises(ValueError):
            plan.timeline(0)
        with pytest.raises(ValueError):
            plan.batch_cycles(0)


class TestAsDict:
    def test_acceptance_fields_present(self, partitioner):
        """The CLI JSON carries every acceptance-criteria quantity."""
        plan = partitioner.plan(get_model("bert-variant"), 4)
        blob = plan.as_dict()
        assert [s["layers"] for s in blob["stages"]] == [
            [0, 3], [3, 6], [6, 9], [9, 12]]
        assert all(s["cycles"] > 0 for s in blob["stages"])
        assert blob["interconnect"]["cycles_per_boundary"] > 0
        assert blob["fill"]["ms"] == pytest.approx(plan.fill_ms)
        assert blob["steady_state"]["inf_per_s"] == pytest.approx(
            plan.steady_state_inf_per_s)


class TestDecodeMode:
    def test_stage_cycles_follow_layer_split(self, accel, partitioner):
        cfg = get_model("bert-variant")
        rep = partitioner.decode_report(cfg, 4, prompt_len=32,
                                        output_len=32)
        per_layer = accel.latency_model.decode_layer_cycles(
            rep.cache_len, cfg.d_model, cfg.num_heads).total
        assert sum(rep.stage_cycles) == cfg.num_layers * per_layer
        assert rep.num_stages == 4

    def test_steady_beats_sequential_with_stages(self, partitioner):
        rep = partitioner.decode_report(get_model("bert-variant"), 4,
                                        prompt_len=16, output_len=16)
        assert rep.steady_tokens_per_s > rep.sequential_tokens_per_s
        assert rep.per_token_ms > 0 and rep.ttft_ms > 0

    def test_single_device_degenerates(self, accel, partitioner):
        cfg = get_model("bert-variant")
        rep = partitioner.decode_report(cfg, 1, prompt_len=16,
                                        output_len=16)
        assert rep.link_cycles == 0
        assert rep.num_stages == 1
        per_layer = accel.latency_model.decode_layer_cycles(
            rep.cache_len, cfg.d_model, cfg.num_heads).total
        assert rep.per_token_cycles == cfg.num_layers * per_layer
        assert rep.steady_tokens_per_s == pytest.approx(
            rep.sequential_tokens_per_s)

    def test_ttft_is_pipelined_prefill(self, partitioner):
        cfg = get_model("bert-variant")
        rep = partitioner.decode_report(cfg, 4, prompt_len=32,
                                        output_len=8)
        plan = partitioner.plan(cfg.with_(seq_len=32), 4, tp_ways=1)
        assert rep.prefill_fill_cycles == plan.fill_cycles
        assert rep.ttft_ms == pytest.approx(plan.fill_ms)

    def test_capacity_and_argument_validation(self, accel, partitioner):
        cfg = get_model("bert-variant")
        with pytest.raises(ResynthesisRequiredError):
            partitioner.decode_report(cfg, 2,
                                      prompt_len=accel.synth.max_seq_len,
                                      output_len=1)
        with pytest.raises(ValueError):
            partitioner.decode_report(cfg, 2, prompt_len=0, output_len=4)

    def test_as_dict_round_trips(self, partitioner):
        import json

        rep = partitioner.decode_report(get_model("bert-variant"), 2,
                                        prompt_len=8, output_len=8)
        blob = json.loads(json.dumps(rep.as_dict()))
        assert blob["pipeline_stages"] == 2
        assert blob["steady_tokens_per_s"] > 0
