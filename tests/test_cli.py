"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        for cmd in ("table1", "table2", "table3", "figure7", "all",
                    "summary", "power", "latency"):
            args = build_parser().parse_args([cmd])
            assert args.command == cmd


class TestCommands:
    def test_summary(self, capsys):
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert "U55C" in out and "BERT" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "279" in out

    def test_figure7_includes_plot(self, capsys):
        assert main(["figure7"]) == 0
        out = capsys.readouterr().out
        assert "fmax" in out and "#" in out

    def test_latency_named_model(self, capsys):
        assert main(["latency", "model2-lhc-trigger"]) == 0
        assert "ms" in capsys.readouterr().out

    def test_latency_list(self, capsys):
        assert main(["latency", "--list"]) == 0
        out = capsys.readouterr().out
        assert "bert-variant" in out

    def test_latency_unknown_model(self):
        with pytest.raises(KeyError):
            main(["latency", "not-a-model"])

    def test_power(self, capsys):
        assert main(["power"]) == 0
        out = capsys.readouterr().out
        assert "GOPS/W" in out
