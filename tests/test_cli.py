"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        for cmd in ("table1", "table2", "table3", "figure7", "scaling",
                    "all", "summary", "power", "latency", "serve"):
            args = build_parser().parse_args([cmd])
            assert args.command == cmd

    def test_partition_defaults(self):
        args = build_parser().parse_args(["partition", "bert-variant"])
        assert args.command == "partition"
        assert args.devices == 2
        assert args.tp == "auto"
        assert args.link == "aurora"
        assert not args.as_json

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.scenario == "poisson"
        assert args.policy == "least-loaded"
        assert args.batch == "none"
        assert not args.as_json

    def test_dse_defaults(self):
        args = build_parser().parse_args(["dse"])
        assert args.strategy == "grid"
        assert args.jobs == 1
        assert not args.resume and args.cache_dir is None
        assert not args.pareto and not args.as_json


class TestCommands:
    def test_summary(self, capsys):
        assert main(["summary"]) == 0
        out = capsys.readouterr().out
        assert "U55C" in out and "BERT" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "279" in out

    def test_figure7_includes_plot(self, capsys):
        assert main(["figure7"]) == 0
        out = capsys.readouterr().out
        assert "fmax" in out and "#" in out

    def test_latency_named_model(self, capsys):
        assert main(["latency", "model2-lhc-trigger"]) == 0
        assert "ms" in capsys.readouterr().out

    def test_latency_list(self, capsys):
        assert main(["latency", "--list"]) == 0
        out = capsys.readouterr().out
        assert "bert-variant" in out

    def test_latency_unknown_model(self):
        with pytest.raises(KeyError):
            main(["latency", "not-a-model"])

    def test_power(self, capsys):
        assert main(["power"]) == 0
        out = capsys.readouterr().out
        assert "GOPS/W" in out


class TestJsonOutput:
    def test_latency_json(self, capsys):
        assert main(["latency", "model2-lhc-trigger", "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["model"] == "model2-lhc-trigger"
        assert blob["latency_ms"] > 0 and blob["gops"] > 0

    def test_latency_list_json(self, capsys):
        assert main(["latency", "--list", "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert "bert-variant" in blob
        assert blob["bert-variant"]["d_model"] == 768


class TestServe:
    def test_acceptance_invocation(self, capsys):
        """The ISSUE's canonical command emits throughput, utilization
        and the latency percentiles as JSON."""
        assert main(["serve", "--scenario", "poisson", "--qps", "500",
                     "--instances", "4", "--policy", "least-loaded",
                     "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["throughput_rps"] > 0
        assert 0 < blob["utilization"] < 1
        assert {"p50", "p95", "p99"} <= set(blob["latency_ms"])
        assert blob["instances"] == 4

    def test_serve_is_deterministic(self, capsys):
        argv = ["serve", "--qps", "300", "--instances", "2", "--seed", "7",
                "--json"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_serve_text_report(self, capsys):
        assert main(["serve", "--qps", "200", "--instances", "2",
                     "--duration-ms", "500", "--batch", "timeout",
                     "--batch-size", "4", "--slo-ms", "5"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out and "p50 / p95 / p99" in out
        assert "SLO attainment" in out

    def test_serve_multi_model_mix(self, capsys):
        assert main(["serve", "--qps", "100", "--instances", "2",
                     "--policy", "model-affinity", "--reprogram-ms", "10",
                     "--model", "model1-peng-isqed21",
                     "--model", "model3-efa-trans:2", "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert set(blob["per_model"]) == {"model1-peng-isqed21",
                                          "model3-efa-trans"}

    def test_serve_plan(self, capsys):
        assert main(["serve", "--plan", "--slo-ms", "5", "--qps", "2000",
                     "--duration-ms", "500", "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["instances"] >= 1
        assert blob["report"]["latency_ms"]["p99"] <= 5.0

    def test_serve_plan_requires_slo(self):
        with pytest.raises(SystemExit):
            main(["serve", "--plan"])

    def test_serve_trace_scenario(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps(
            [[0.0, "model2-lhc-trigger"], [1.0, "model2-lhc-trigger"]]))
        assert main(["serve", "--scenario", "trace", "--trace-file",
                     str(trace), "--instances", "1", "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["total_requests"] == 2

    def test_serve_trace_requires_file(self):
        with pytest.raises(SystemExit):
            main(["serve", "--scenario", "trace"])

    def test_serve_unknown_model(self):
        with pytest.raises(SystemExit, match="unknown model"):
            main(["serve", "--model", "not-a-model"])

    def test_serve_trace_unknown_model(self, tmp_path):
        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps([[0.0, "not-a-model"]]))
        with pytest.raises(SystemExit, match="unknown models"):
            main(["serve", "--scenario", "trace", "--trace-file",
                  str(trace)])

    def test_serve_plan_diurnal_succeeds(self, capsys):
        """--plan gates throughput on the realized (not nominal peak)
        rate, so a diurnal plan terminates with a finite fleet."""
        assert main(["serve", "--plan", "--scenario", "diurnal",
                     "--slo-ms", "50", "--qps", "200",
                     "--duration-ms", "500", "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert 1 <= blob["instances"] <= 8


class TestServePlanKnobs:
    PLAN = ["serve", "--plan", "--slo-ms", "50", "--qps", "200",
            "--duration-ms", "500"]

    def test_analytic_only_skips_simulation(self, capsys):
        assert main(self.PLAN + ["--analytic-only", "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["mode"] == "analytic-only"
        assert blob["probes"] == {}
        assert "report" not in blob
        assert blob["analytic"]["instances"] == blob["instances"]
        assert blob["analytic"]["estimate"]["latency_ms"]["p99"] <= 50.0

    def test_analytic_only_text_render(self, capsys):
        assert main(self.PLAN + ["--analytic-only"]) == 0
        out = capsys.readouterr().out
        assert "[analytic, unconfirmed]" in out

    def test_confirm_probe_matches_default(self, capsys):
        """Both search modes must land on the same confirmed plan."""
        assert main(self.PLAN + ["--json"]) == 0
        default = json.loads(capsys.readouterr().out)
        assert main(self.PLAN + ["--confirm", "probe", "--json"]) == 0
        probe = json.loads(capsys.readouterr().out)
        assert default["mode"] == "analytic"
        assert probe["mode"] == "probe"
        assert probe["instances"] == default["instances"]
        assert (probe["report"]["latency_ms"]["p99"]
                == default["report"]["latency_ms"]["p99"])
        assert "analytic" not in probe
        assert default["analytic"]["instances"] >= 1

    def test_analytic_only_conflicts_with_confirm_probe(self):
        with pytest.raises(SystemExit, match="drop one of the two"):
            main(self.PLAN + ["--analytic-only", "--confirm", "probe"])

    def test_knobs_require_plan(self):
        with pytest.raises(SystemExit, match="add --plan"):
            main(["serve", "--qps", "50", "--analytic-only"])
        with pytest.raises(SystemExit, match="add --plan"):
            main(["serve", "--qps", "50", "--confirm", "probe"])


class TestServeSwitchTime:
    def test_json_reports_per_instance_switch_ms(self, capsys):
        """The JSON path must carry the reprogramming *time* per
        instance, not just the switch count."""
        assert main(["serve", "--qps", "100", "--instances", "2",
                     "--policy", "round-robin", "--reprogram-ms", "10",
                     "--model", "model1-peng-isqed21",
                     "--model", "model3-efa-trans:2", "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        per_inst = blob["per_instance"]
        assert per_inst, "expected per-instance records"
        assert all("switch_ms" in inst for inst in per_inst)
        # Round-robin over a 2-model mix must actually switch, and the
        # per-instance times must add up to the aggregate.
        assert sum(i["switches"] for i in per_inst) > 0
        assert sum(i["switch_ms"] for i in per_inst) == pytest.approx(
            blob["reprogramming"]["time_ms"])
        assert sum(i["switch_ms"] for i in per_inst) > 0


class TestPartition:
    """Acceptance matrix: >= 2 zoo models x K in {2, 4} through the
    CLI's JSON path, plus text/gantt rendering."""

    @pytest.mark.parametrize("model", ["bert-variant", "model3-efa-trans"])
    @pytest.mark.parametrize("k", [2, 4])
    def test_json_reports_acceptance_fields(self, capsys, model, k):
        assert main(["partition", model, "-k", str(k), "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["model"] == model
        assert blob["devices"] == k
        # Stage assignment covers every layer contiguously.
        stages = blob["stages"]
        assert stages[0]["layers"][0] == 0
        for a, b in zip(stages, stages[1:]):
            assert a["layers"][1] == b["layers"][0]
        assert all(s["cycles"] > 0 for s in stages)
        assert all(s["bubble_cycles"] >= 0 for s in stages)
        # Interconnect, fill, steady state.
        assert blob["interconnect"]["cycles_per_boundary"] >= 0
        assert blob["fill"]["cycles"] > 0 and blob["fill"]["ms"] > 0
        assert blob["steady_state"]["inf_per_s"] > 0
        # Both fit a single device, so the comparison is present and
        # the K-device steady state beats it.
        assert blob["steady_state"]["speedup"] > 1.0
        assert blob["single_device"]["latency_ms"] > 0

    def test_text_report(self, capsys):
        assert main(["partition", "bert-variant", "-k", "4"]) == 0
        out = capsys.readouterr().out
        assert "4 stage(s)" in out
        assert "fill latency" in out and "steady state" in out
        assert "speedup" in out

    def test_gantt(self, capsys):
        assert main(["partition", "bert-variant", "-k", "2",
                     "--gantt", "4"]) == 0
        out = capsys.readouterr().out
        assert "fpga0" in out and "fpga1" in out and "#" in out

    def test_explicit_tp(self, capsys):
        assert main(["partition", "bert-variant", "-k", "4",
                     "--tp", "4", "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["pipeline_stages"] == 1
        assert blob["stages"][0]["tp_ways"] == 4
        assert blob["stages"][0]["tp_comm_cycles_per_layer"] > 0

    def test_link_choice_changes_cost(self, capsys):
        costs = {}
        for link in ("aurora", "eth10g"):
            assert main(["partition", "bert-variant", "-k", "2",
                         "--link", link, "--json"]) == 0
            blob = json.loads(capsys.readouterr().out)
            costs[link] = blob["interconnect"]["cycles_per_boundary"]
        assert costs["eth10g"] > costs["aurora"]

    def test_invalid_tp_value(self):
        with pytest.raises(SystemExit, match="invalid --tp"):
            main(["partition", "bert-variant", "--tp", "many"])

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            main(["partition", "not-a-model"])

    def test_too_deep_pipeline_raises(self):
        with pytest.raises(ValueError, match="cannot pipeline"):
            main(["partition", "model2-lhc-trigger", "-k", "8",
                  "--tp", "1"])


class TestDse:
    """Acceptance: `dse --jobs N --json` produces a multi-objective
    Pareto frontier; the cache makes re-runs incremental."""

    ARGS = ["dse", "--model", "model2-lhc-trigger",
            "--tiles-mha", "12,48", "--tiles-ffn", "6",
            "--qps", "100", "--duration-ms", "100"]

    def test_acceptance_invocation(self, capsys):
        assert main(self.ARGS + ["--jobs", "2", "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert len(blob["objectives"]) >= 3
        assert blob["frontier"], "expected a non-empty Pareto frontier"
        point = blob["frontier"][0]
        assert set(o["name"] for o in blob["objectives"]) == set(
            point["objectives"])
        assert all(v is not None and v > 0
                   for v in point["objectives"].values())
        assert blob["evaluated"] == 2

    def test_text_report_marks_frontier(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "frontier (*)" in out
        assert "latency_ms" in out and "power_w" in out

    def test_pareto_json_omits_full_results(self, capsys):
        assert main(self.ARGS + ["--json", "--pareto"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert "results" not in blob and blob["frontier"]

    def test_infeasible_corner_reported_not_fatal(self, capsys):
        assert main(["dse", "--model", "model2-lhc-trigger",
                     "--tiles-mha", "6,12", "--tiles-ffn", "3,6",
                     "--qps", "100", "--duration-ms", "100",
                     "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        errors = [r for r in blob["results"] if r["error"]]
        assert errors and all("does not fit" in r["error"] for r in errors)

    def test_resume_reevaluates_nothing(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        argv = self.ARGS + ["--resume", "--json"]
        assert main(argv) == 0
        cold = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert cold["evaluated"] == 2 and warm["evaluated"] == 0
        assert warm["cache"] == {"hits": 2, "misses": 0}
        assert warm["frontier"] == [
            dict(r, cached=True) for r in cold["frontier"]]
        assert (tmp_path / ".dse_cache").is_dir()

    def test_cache_dir_flag_implies_resume(self, tmp_path, capsys):
        argv = self.ARGS + ["--cache-dir", str(tmp_path / "c"), "--json"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["evaluated"] == 0

    def test_random_strategy_seeded(self, capsys):
        argv = ["dse", "--strategy", "random", "--samples", "3",
                "--seed", "5", "--model", "model2-lhc-trigger",
                "--tiles-mha", "12,16,24,48", "--tiles-ffn", "4,6",
                "--qps", "100", "--duration-ms", "100", "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert len(first["results"]) == 3
        assert ([r["point"] for r in first["results"]]
                == [r["point"] for r in second["results"]])

    def test_evolutionary_strategy_runs(self, capsys):
        assert main(["dse", "--strategy", "evolutionary",
                     "--population", "3", "--generations", "2",
                     "--model", "model2-lhc-trigger",
                     "--tiles-mha", "12,16,24,48", "--tiles-ffn", "4,6",
                     "--qps", "100", "--duration-ms", "100",
                     "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["strategy"] == "evolutionary"
        assert 3 <= len(blob["results"]) <= 6
        assert blob["frontier"]

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit, match="invalid search space"):
            main(["dse", "--model", "not-a-model"])

    def test_bad_axis_list_rejected(self):
        with pytest.raises(SystemExit, match="--tiles-mha"):
            main(["dse", "--tiles-mha", "8,many"])

    def test_unknown_objective_rejected(self):
        with pytest.raises(SystemExit, match="invalid search space"):
            main(["dse", "--objectives", "latency_ms,carbon"])

    def test_invalid_jobs_rejected_cleanly(self):
        with pytest.raises(SystemExit, match="invalid --jobs"):
            main(["dse", "--jobs", "0"])


class TestScalingCommand:
    def test_scaling_renders_curve(self, capsys):
        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "Multi-FPGA scaling" in out
        assert "bert-variant" in out and "model3-efa-trans" in out
        assert "speedup" in out


class TestGenerate:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.command == "generate"
        assert args.scenario == "poisson"
        assert args.instances == 2 and args.slots == 8
        assert args.prompt_tokens == "16" and args.output_tokens == "32"
        assert not args.as_json

    def test_acceptance_invocation(self, capsys):
        """The ISSUE's acceptance check: `repro generate --json` reports
        TTFT/TPOT/tokens-per-second end to end through the synthesized-
        accelerator latency model."""
        assert main(["generate", "--qps", "50", "--duration-ms", "500",
                     "--instances", "2", "--slots", "4", "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["ttft_ms"]["p99"] > 0
        assert blob["tpot_ms"]["mean"] > 0
        assert blob["tokens_per_s"] > 0
        assert blob["instances"] == 2 and blob["slots"] == 4

    def test_generate_is_deterministic(self, capsys):
        argv = ["generate", "--qps", "40", "--duration-ms", "400",
                "--seed", "3", "--json"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_text_report_with_slos(self, capsys):
        assert main(["generate", "--qps", "30", "--duration-ms", "300",
                     "--prompt-tokens", "4:12",
                     "--output-tokens", "geo:4:8",
                     "--ttft-slo-ms", "50", "--tpot-slo-ms", "5"]) == 0
        out = capsys.readouterr().out
        assert "TTFT" in out and "TPOT" in out
        assert "goodput" in out

    def test_bad_length_spec_rejected(self):
        with pytest.raises(SystemExit, match="length spec"):
            main(["generate", "--prompt-tokens", "nope"])


class TestScenarioFlags:
    """The kernel scenario layer's CLI surface: --heterogeneous,
    --failures, --priority, and their eager validation."""

    def test_serve_failures_json(self, capsys):
        assert main(["serve", "--qps", "300", "--duration-ms", "300",
                     "--instances", "2", "--failures", "150:20",
                     "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert "failures" in out
        assert 0 < out["failures"]["availability"] <= 1

    def test_serve_heterogeneous_json(self, capsys):
        assert main(["serve", "--qps", "200", "--duration-ms", "300",
                     "--heterogeneous", "1.0,0.5", "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["fleet"] == "1,0.5"
        assert out["instances"] == 2

    def test_generate_priority_and_failures(self, capsys):
        assert main(["generate", "--qps", "40", "--duration-ms", "250",
                     "--instances", "1", "--slots", "2",
                     "--priority", "0.3", "--failures", "200:20",
                     "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["priority_fraction"] == 0.3
        assert "failures" in out

    def test_serve_rejects_bad_fleet_spec(self):
        with pytest.raises(SystemExit, match="invalid fleet entry"):
            main(["serve", "--heterogeneous", "nope"])

    def test_serve_rejects_slots_spec(self):
        with pytest.raises(SystemExit, match="generate-mode"):
            main(["serve", "--heterogeneous", "1.0/4"])

    def test_serve_rejects_uncovered_workload(self):
        """Capability sets that leave the mix unservable exit before
        the simulation starts, not mid-run with a traceback."""
        with pytest.raises(SystemExit, match="unservable"):
            main(["serve", "--heterogeneous",
                  "1.0@model1-peng-isqed21"])

    def test_serve_rejects_unknown_pinned_model(self):
        with pytest.raises(SystemExit, match="unknown models"):
            main(["serve", "--heterogeneous", "1.0@no-such-model"])

    def test_serve_rejects_bad_failure_spec(self):
        with pytest.raises(SystemExit, match="invalid failure spec"):
            main(["serve", "--failures", "150"])

    def test_generate_rejects_bad_priority(self):
        with pytest.raises(SystemExit, match="high_fraction"):
            main(["generate", "--priority", "2.0",
                  "--duration-ms", "100"])

    def test_plan_conflicts_with_heterogeneous(self):
        with pytest.raises(SystemExit, match="--plan"):
            main(["serve", "--plan", "--slo-ms", "5",
                  "--heterogeneous", "1.0x2"])


class TestObservabilityFlags:
    """The repro.obs CLI surface: --trace / --metrics / --profile."""

    SERVE = ["serve", "--qps", "300", "--duration-ms", "300",
             "--instances", "2", "--seed", "4"]
    GEN = ["generate", "--qps", "30", "--duration-ms", "250",
           "--instances", "1", "--slots", "3", "--seed", "4"]

    def test_serve_json_carries_run_config(self, capsys):
        assert main(self.SERVE + ["--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        rc = out["run_config"]
        assert rc["command"] == "serve"
        assert rc["seed"] == 4 and rc["qps"] == 300
        assert rc["instances"] == 2 and rc["batch"] == "none"
        from repro import __version__
        assert rc["repro_version"] == __version__

    def test_generate_json_carries_run_config(self, capsys):
        assert main(self.GEN + ["--json"]) == 0
        rc = json.loads(capsys.readouterr().out)["run_config"]
        assert rc["command"] == "generate"
        assert rc["slots"] == 3 and rc["prompt_tokens"] == "16"

    def test_serve_trace_is_chrome_format(self, tmp_path, capsys):
        trace = tmp_path / "run.trace.json"
        assert main(self.SERVE + ["--trace", str(trace), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        doc = json.loads(trace.read_text())
        assert set(doc) == {"traceEvents", "displayTimeUnit", "metadata"}
        assert doc["metadata"]["run_config"]["seed"] == 4
        events = doc["traceEvents"]
        assert events, "trace exported no events"
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            if event["ph"] == "X":
                assert event["dur"] >= 0
        names = {e["name"] for e in events}
        assert {"arrive", "batch", "thread_name"} <= names
        # One batch span per dispatch; sizes sum to the served requests.
        served = sum(e["args"]["size"] for e in events
                     if e["name"] == "batch")
        assert served == report["total_requests"]

    def test_generate_trace_has_sequence_and_step_spans(self, tmp_path):
        trace = tmp_path / "gen.trace.json"
        assert main(self.GEN + ["--trace", str(trace)]) == 0
        names = {e["name"] for e in
                 json.loads(trace.read_text())["traceEvents"]}
        assert {"arrive", "step", "sequence"} <= names

    def test_trace_does_not_change_results(self, tmp_path, capsys):
        assert main(self.SERVE + ["--json"]) == 0
        bare = capsys.readouterr().out
        assert main(self.SERVE + ["--trace", str(tmp_path / "t.json"),
                                  "--metrics", str(tmp_path / "m.json"),
                                  "--profile", "--json"]) == 0
        observed = json.loads(capsys.readouterr().out)
        profile = observed.pop("profile")
        assert observed == json.loads(bare)
        assert profile["events"] > 0

    def test_metrics_json_and_csv_by_suffix(self, tmp_path):
        mj, mc = tmp_path / "m.json", tmp_path / "m.csv"
        assert main(self.SERVE + ["--metrics", str(mj)]) == 0
        assert main(self.SERVE + ["--metrics", str(mc),
                                  "--metrics-grid-ms", "25"]) == 0
        blob = json.loads(mj.read_text())
        assert blob["run_config"]["command"] == "serve"
        assert blob["counters"]["arrivals"] > 0
        assert blob["counters"]["arrivals"] == blob["counters"]["completions"]
        header = mc.read_text().splitlines()[0].split(",")
        assert header[0] == "t_ms" and "queued" in header

    def test_serve_profile_text_report(self, capsys):
        assert main(self.SERVE + ["--profile"]) == 0
        out = capsys.readouterr().out
        assert "Kernel profile" in out and "us/event" in out

    def test_unwritable_trace_path_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit,
                           match="cannot write observability output"):
            main(self.SERVE + ["--trace",
                               str(tmp_path / "missing" / "t.json")])

    def test_bad_metrics_grid_rejected(self):
        with pytest.raises(SystemExit, match="grid_ms"):
            main(self.SERVE + ["--metrics", "m.json",
                               "--metrics-grid-ms", "0"])

    def test_plan_rejects_observability_flags(self):
        with pytest.raises(SystemExit, match="--plan"):
            main(["serve", "--plan", "--slo-ms", "5", "--profile"])

    def test_dse_profile_json(self, capsys):
        assert main(["dse", "--tiles-mha", "8", "--tiles-ffn", "3",
                     "--formats", "fix8", "--model", "bert-variant",
                     "--duration-ms", "120", "--profile", "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        profile = out["profile"]
        assert profile["cache"] == {"hits": 0, "misses": 0} \
            or profile["cache"]["misses"] >= 0
        assert profile["evaluations"] == len(out["results"])
        assert profile["workers"], "no per-worker breakdown"

    def test_dse_profile_text_reports_cache_and_workers(
            self, tmp_path, capsys):
        argv = ["dse", "--tiles-mha", "8", "--tiles-ffn", "3",
                "--formats", "fix8", "--model", "bert-variant",
                "--duration-ms", "120", "--cache-dir",
                str(tmp_path / "cache"), "--profile"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "DSE profile" in cold and "miss(es)" in cold
        assert "Per-worker" in cold
        assert main(argv) == 0  # warm resume: everything a cache hit
        warm = capsys.readouterr().out
        assert "1 cache hit(s)" in warm


class TestWatchFlags:
    """serve/generate --watch: the streaming SLO watchdog surface."""

    SERVE = ["serve", "--qps", "200", "--duration-ms", "400",
             "--instances", "2", "--seed", "4", "--slo-ms", "10",
             "--failures", "150:25"]
    GEN = ["generate", "--qps", "30", "--duration-ms", "250",
           "--instances", "1", "--slots", "3", "--seed", "4",
           "--ttft-slo-ms", "25"]

    def test_serve_watch_report_table(self, capsys):
        assert main(self.SERVE + ["--watch"]) == 0
        out = capsys.readouterr().out
        assert "SLO watchdog" in out
        assert "rule burn_rate" in out and "rule fleet_down" in out

    def test_serve_watch_json_block(self, capsys):
        assert main(self.SERVE + ["--watch", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        watch = doc["watch"]
        assert watch["slo_ms"] == 10.0 and watch["target"] == 0.99
        assert watch["completions"] == doc["total_requests"]
        assert set(watch["rules"]) == {"burn_rate", "fleet_down"}
        assert doc["run_config"]["watch"]["target"] == 0.99

    def test_watch_does_not_change_results(self, capsys):
        assert main(self.SERVE + ["--json"]) == 0
        bare = json.loads(capsys.readouterr().out)
        assert main(self.SERVE + ["--watch", "--json"]) == 0
        watched = json.loads(capsys.readouterr().out)
        watched.pop("watch")
        rc = watched["run_config"].pop("watch")
        assert rc["fast_window_ms"] == 100.0
        assert watched == bare

    def test_generate_watch_json_block(self, capsys):
        assert main(self.GEN + ["--watch", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["watch"]["slo_ms"] == 25.0
        assert doc["watch"]["completions"] == doc["total_requests"]

    def test_watch_alerts_reach_trace(self, tmp_path):
        trace = tmp_path / "w.trace.json"
        assert main(self.SERVE + ["--watch", "--watch-target", "0.5",
                                  "--trace", str(trace)]) == 0
        doc = json.loads(trace.read_text())
        alert_rows = [e for e in doc["traceEvents"]
                      if e.get("tid") == 10_000]
        assert alert_rows, "watch alerts must land on the alerts row"

    def test_watch_requires_slo(self):
        with pytest.raises(SystemExit, match="--watch requires --slo-ms"):
            main(["serve", "--watch"])
        with pytest.raises(SystemExit,
                           match="--watch requires --ttft-slo-ms"):
            main(["generate", "--watch"])

    @pytest.mark.parametrize("flag,value", [
        ("--watch-window-ms", "0"),
        ("--watch-window-ms", "-5"),
        ("--watch-slow-window-ms", "0"),
    ])
    def test_watch_window_must_be_positive(self, flag, value):
        with pytest.raises(SystemExit, match="window widths"):
            main(self.SERVE + ["--watch", flag, value])

    def test_watch_slow_window_must_dominate(self):
        with pytest.raises(SystemExit, match="slow"):
            main(self.SERVE + ["--watch", "--watch-window-ms", "200",
                               "--watch-slow-window-ms", "100"])

    @pytest.mark.parametrize("target", ["0", "1", "1.5", "-0.2"])
    def test_watch_target_must_be_a_fraction(self, target):
        with pytest.raises(SystemExit, match="target"):
            main(self.SERVE + ["--watch", "--watch-target", target])

    def test_plan_rejects_watch(self):
        with pytest.raises(SystemExit, match="--plan"):
            main(["serve", "--plan", "--slo-ms", "5", "--watch"])

    @pytest.mark.parametrize("value", ["0", "-10"])
    def test_metrics_grid_validated_eagerly(self, value):
        # Rejected before the simulation runs, even with no --metrics
        # sink (the sampler is the watch window source too).
        with pytest.raises(SystemExit, match="grid_ms must be positive"):
            main(self.SERVE + ["--metrics-grid-ms", value])


class TestObsCommand:
    """The obs subcommand family: diff / bench / trace-summary."""

    SERVE = ["serve", "--qps", "200", "--duration-ms", "300",
             "--instances", "2", "--seed", "4", "--slo-ms", "10"]

    def _export(self, tmp_path, capsys, name, extra=()):
        path = tmp_path / name
        assert main(self.SERVE + list(extra) + ["--json"]) == 0
        path.write_text(capsys.readouterr().out)
        return path

    def test_diff_identical_runs_ok(self, tmp_path, capsys):
        a = self._export(tmp_path, capsys, "a.json")
        b = self._export(tmp_path, capsys, "b.json")
        assert main(["obs", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "OK: no significant regressions" in out

    def test_diff_flags_injected_regression(self, tmp_path, capsys):
        a = self._export(tmp_path, capsys, "a.json")
        b = self._export(tmp_path, capsys, "b.json",
                         extra=["--failures", "100:40"])
        assert main(["obs", "diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "significant regression(s)" in out
        assert str(a) in out and str(b) in out

    def test_diff_json_output(self, tmp_path, capsys):
        a = self._export(tmp_path, capsys, "a.json")
        b = self._export(tmp_path, capsys, "b.json",
                         extra=["--failures", "100:40"])
        assert main(["obs", "diff", str(a), str(b), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False and doc["regressions"]

    def test_diff_missing_file_exits_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read run export"):
            main(["obs", "diff", str(tmp_path / "a.json"),
                  str(tmp_path / "b.json")])

    def test_diff_malformed_json_exits_cleanly(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(SystemExit, match="cannot read run export"):
            main(["obs", "diff", str(bad), str(bad)])

    def test_bench_trend_on_committed_history(self, capsys):
        assert main(["obs", "bench"]) == 0
        out = capsys.readouterr().out
        assert "BENCH trend" in out and "metric(s) tracked" in out

    def test_bench_gate_violation_exits_nonzero(self, tmp_path, capsys):
        history = tmp_path / "hist.json"
        history.write_text(json.dumps(
            [{"suite": "s", "metric": "watch_overhead_x", "value": 2.0,
              "units": "x"}]))
        assert main(["obs", "bench", "--results", str(history),
                     "--gate", "watch_overhead_x<=1.05"]) == 1
        assert "GATE VIOLATION" in capsys.readouterr().out

    def test_bench_gate_holds_exits_zero(self, tmp_path, capsys):
        history = tmp_path / "hist.json"
        history.write_text(json.dumps(
            [{"suite": "s", "metric": "watch_overhead_x", "value": 1.01,
              "units": "x"}]))
        assert main(["obs", "bench", "--results", str(history),
                     "--gate", "watch_overhead_x<=1.05", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True and doc["violations"] == []

    def test_bench_bad_gate_expression(self):
        with pytest.raises(SystemExit, match="invalid gate"):
            main(["obs", "bench", "--gate", "metric==1"])

    def test_bench_missing_results_file(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read"):
            main(["obs", "bench", "--results",
                  str(tmp_path / "none.json")])

    def test_trace_summary_text_and_json(self, tmp_path, capsys):
        trace = tmp_path / "run.trace.json"
        assert main(self.SERVE + ["--watch", "--watch-target", "0.5",
                                  "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["obs", "trace-summary", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "span" in out.lower()
        assert main(["obs", "trace-summary", str(trace), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["spans"] and doc["threads"]

    def test_trace_summary_rejects_non_trace(self, tmp_path):
        not_trace = tmp_path / "x.json"
        not_trace.write_text('{"hello": 1}')
        with pytest.raises(SystemExit, match="traceEvents"):
            main(["obs", "trace-summary", str(not_trace)])

    def test_obs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["obs"])


class TestShardsFlag:
    SERVE = ["serve", "--qps", "200", "--duration-ms", "400",
             "--instances", "4", "--batch", "fixed", "--batch-size", "4"]

    def test_shards_one_is_the_default_run(self, capsys):
        """--shards 1 must be byte-identical to omitting the flag."""
        assert main(self.SERVE + ["--json"]) == 0
        plain = capsys.readouterr().out
        assert main(self.SERVE + ["--shards", "1", "--json"]) == 0
        assert capsys.readouterr().out == plain

    def test_sharded_serve_is_deterministic(self, capsys):
        argv = self.SERVE + ["--shards", "2", "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        assert json.loads(capsys.readouterr().out) == first
        assert first["total_requests"] > 0
        assert first["instances"] == 4

    def test_sharded_generate_reports(self, capsys):
        assert main(["generate", "--qps", "20", "--duration-ms", "300",
                     "--instances", "2", "--shards", "2", "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["total_requests"] > 0
        assert {"p50", "p95", "p99"} <= set(blob["ttft_ms"])

    def test_shard_jobs_needs_shards(self):
        with pytest.raises(SystemExit, match="needs --shards"):
            main(self.SERVE + ["--shard-jobs", "2"])

    def test_nonpositive_shards_rejected(self):
        with pytest.raises(SystemExit, match="--shards must be >= 1"):
            main(self.SERVE + ["--shards", "0"])

    def test_profile_rejected_with_shards(self):
        with pytest.raises(SystemExit, match="cannot span --shards"):
            main(self.SERVE + ["--shards", "2", "--profile"])

    def test_observer_rejected_with_shard_jobs(self, tmp_path):
        trace = tmp_path / "t.json"
        with pytest.raises(SystemExit, match="cannot cross"):
            main(self.SERVE + ["--shards", "2", "--shard-jobs", "2",
                               "--trace", str(trace)])

    def test_plan_threads_shards_through_probes(self, capsys):
        """--plan probes run summary-detail, so a sharded plan search
        works (cells share nothing, so it plans for a *sharded*
        deployment) and is deterministic run to run."""
        argv = ["serve", "--plan", "--slo-ms", "20", "--qps", "200",
                "--duration-ms", "400", "--shards", "2", "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["instances"] >= 1
        assert first["report"]["latency_ms"]["p99"] <= 20.0
        assert main(argv) == 0
        assert json.loads(capsys.readouterr().out) == first

    def test_plan_shards_still_validated(self):
        with pytest.raises(SystemExit, match="--shards must be >= 1"):
            main(self.SERVE + ["--plan", "--slo-ms", "20",
                               "--shards", "0"])
        with pytest.raises(SystemExit, match="needs --shards"):
            main(self.SERVE + ["--plan", "--slo-ms", "20",
                               "--shard-jobs", "2"])
