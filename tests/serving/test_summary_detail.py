"""``detail="summary"`` equivalence against the full-record path.

The summary drains in :mod:`repro.sim.serve` and
:mod:`repro.sim.generate` replay the exact event sequence of the full
path while accumulating only what the SLO reports read.  These tests
pin the contract: every percentile field of the reduced report is
**bit-identical** to the full path's (the engines keep the exact
latency multisets), mean fields agree to the last ulp (float
accumulation follows completion order instead of record order), and
instance stats match exactly.
"""

import dataclasses
import math
import random

import pytest

from repro.obs import KernelProfiler, MetricsSampler, TraceRecorder, compose
from repro.serving import (
    ClusterSimulator,
    GenerationClusterSimulator,
    LengthSampler,
    ModelMix,
    PoissonArrivals,
    attach_generation_lengths,
    fixed_size,
    simulate,
    simulate_generation,
    summarize,
    summarize_generation,
    timeout,
)
from repro.sim.failures import FailurePlan
from repro.sim.summary import GenerationSummary, ServeSummary

MIX = ModelMix({"model2-lhc-trigger": 3.0, "model1-peng-isqed21": 2.0,
                "model3-efa-trans": 1.0})
MIX1 = ModelMix("model2-lhc-trigger")

#: Report fields where the summary path may differ in the last ulp
#: (sums folded in completion order, not rid order).
_ULP_FIELDS = frozenset({
    "mean_latency_ms", "mean_wait_ms", "mean_ttft_ms", "mean_tpot_ms",
    "throughput_rps", "tokens_per_s", "utilization", "mean_queue_depth",
    "goodput_tokens_per_s", "p99_degraded_ms", "availability",
    "mean_batch_size",
})


def _assert_field(name, a, b):
    if name in _ULP_FIELDS and isinstance(a, float) and isinstance(b, float):
        if math.isnan(a):
            assert math.isnan(b), name
        else:
            assert b == pytest.approx(a, rel=1e-12), name
    else:
        assert a == b, f"report field {name!r}: full={a!r} summary={b!r}"


def assert_reports_match(full, summary):
    """Field-by-field report equality (ulp tolerance on mean fields)."""
    assert type(full) is type(summary)
    for f in full.__dataclass_fields__:
        a, b = getattr(full, f), getattr(summary, f)
        if f == "per_model":
            assert a.keys() == b.keys()
            for name in a:
                for mf in a[name].__dataclass_fields__:
                    _assert_field(mf, getattr(a[name], mf),
                                  getattr(b[name], mf))
        else:
            _assert_field(f, a, b)


def _requests(qps=400, seed=11, duration=800):
    return PoissonArrivals(qps, MIX, seed=seed).generate(duration)


def _gen_requests(accel, qps=30, seed=404, duration=500.0, lseed=77):
    arrivals = PoissonArrivals(qps, MIX, seed=seed).generate(duration)
    return attach_generation_lengths(
        arrivals,
        LengthSampler("uniform", 8, 24),
        LengthSampler("geometric", 4, 48, mean_extra=10.0),
        seed=lseed, max_total=accel.synth.max_seq_len)


class TestServeSummary:
    def test_fast_drain_matches_full(self, default_accel):
        """Round-robin + fixed-size batching takes the inlined drain."""
        reqs = _requests()
        sim = ClusterSimulator(default_accel, 3, scheduler="round-robin",
                               batching=fixed_size(4))
        full = summarize(sim.run(reqs), slo_ms=20.0)
        s = sim.run(reqs, detail="summary")
        assert isinstance(s, ServeSummary)
        assert_reports_match(full, summarize(s, slo_ms=20.0))

    def test_generic_drain_matches_full(self, default_accel):
        """Timeout batching (check events) uses the closure drain."""
        reqs = _requests(qps=300, seed=7)
        sim = ClusterSimulator(default_accel, 3, scheduler="model-affinity",
                               batching=timeout(4, 2.0),
                               reprogram_latency_ms=5.0)
        full = summarize(sim.run(reqs))
        assert_reports_match(full, summarize(sim.run(reqs, detail="summary")))

    def test_failure_run_matches_full(self, default_accel):
        """Degraded/touched accounting survives the summary reduction."""
        reqs = _requests(qps=250, seed=13, duration=2000)
        plan = FailurePlan(mtbf_ms=700.0, mttr_ms=90.0, seed=5)
        sim = ClusterSimulator(default_accel, 3, scheduler="least-loaded",
                               batching=fixed_size(4), failures=plan)
        full = summarize(sim.run(reqs))
        summ = summarize(sim.run(reqs, detail="summary"))
        assert full.total_retries == summ.total_retries
        assert full.degraded_count == summ.degraded_count
        assert_reports_match(full, summ)

    def test_observer_does_not_perturb_summary(self, default_accel):
        """An attached observer sees events but cannot change floats."""
        reqs = _requests(qps=200, seed=3, duration=400)
        sim = ClusterSimulator(default_accel, 2, scheduler="round-robin",
                               batching=timeout(4, 2.0))
        bare = sim.run(reqs, detail="summary")
        recorder = TraceRecorder()
        obs = compose(recorder, MetricsSampler(grid_ms=25.0))
        observed = sim.run(reqs, observer=obs, detail="summary")
        assert summarize(bare) == summarize(observed)
        assert recorder.events  # the observer actually saw the run

    def test_unknown_detail_rejected(self, default_accel):
        sim = ClusterSimulator(default_accel, 2)
        with pytest.raises(ValueError, match="unknown detail"):
            sim.run(_requests(duration=50), detail="records")

    def test_profiler_requires_full_detail(self, default_accel):
        sim = ClusterSimulator(default_accel, 2)
        with pytest.raises(ValueError, match="detail='full'"):
            sim.run(_requests(duration=50), profiler=KernelProfiler(),
                    detail="summary")

    def test_simulate_facade_passes_detail(self, default_accel):
        s = simulate(default_accel, _requests(duration=100), 2,
                     detail="summary")
        assert isinstance(s, ServeSummary)


class TestGenerationSummary:
    def test_summary_matches_full(self, default_accel):
        reqs = _gen_requests(default_accel)
        sim = GenerationClusterSimulator(
            default_accel, 2, slots=4, scheduler="least-loaded",
            reprogram_latency_ms=3.0)
        full = summarize_generation(sim.run(reqs), ttft_slo_ms=40.0,
                                    tpot_slo_ms=8.0)
        s = sim.run(reqs, detail="summary")
        assert isinstance(s, GenerationSummary)
        assert_reports_match(
            full, summarize_generation(s, ttft_slo_ms=40.0, tpot_slo_ms=8.0))

    def test_failure_run_matches_full(self, default_accel):
        reqs = _gen_requests(default_accel, qps=35, seed=909,
                             duration=2000.0, lseed=78)
        plan = FailurePlan(mtbf_ms=900.0, mttr_ms=120.0, seed=5)
        sim = GenerationClusterSimulator(
            default_accel, 2, slots=4, scheduler="least-loaded",
            reprogram_latency_ms=3.0, failures=plan)
        full = summarize_generation(sim.run(reqs))
        summ = summarize_generation(sim.run(reqs, detail="summary"))
        assert full.total_retries == summ.total_retries
        assert full.availability is not None
        assert_reports_match(full, summ)

    def test_priority_preemption_matches_full(self, default_accel):
        rng = random.Random(3)
        reqs = [dataclasses.replace(r, priority=rng.choice([0, 0, 1, 2]))
                for r in _gen_requests(default_accel, qps=35, seed=910,
                                       duration=1500.0, lseed=79)]
        sim = GenerationClusterSimulator(
            default_accel, 2, slots=4, scheduler="least-loaded",
            reprogram_latency_ms=3.0, preemption=True)
        full = summarize_generation(sim.run(reqs))
        summ = summarize_generation(sim.run(reqs, detail="summary"))
        assert full.total_preemptions == summ.total_preemptions
        assert_reports_match(full, summ)

    def test_unknown_detail_rejected(self, default_accel):
        sim = GenerationClusterSimulator(default_accel, 2, slots=4)
        with pytest.raises(ValueError, match="unknown detail"):
            sim.run(_gen_requests(default_accel, duration=50.0),
                    detail="records")

    def test_profiler_requires_full_detail(self, default_accel):
        sim = GenerationClusterSimulator(default_accel, 2, slots=4)
        with pytest.raises(ValueError, match="detail='full'"):
            sim.run(_gen_requests(default_accel, duration=50.0),
                    profiler=KernelProfiler(), detail="summary")

    def test_simulate_facade_passes_detail(self, default_accel):
        s = simulate_generation(
            default_accel, _gen_requests(default_accel, duration=100.0),
            2, slots=4, detail="summary")
        assert isinstance(s, GenerationSummary)
        report = summarize_generation(s)
        assert report.total_requests == s.total_requests
