"""Unit tests for the serving workload generators."""

import math

import pytest

from repro.serving import (
    BurstyArrivals,
    DiurnalArrivals,
    ModelMix,
    PoissonArrivals,
    Request,
    TraceReplay,
)

MIX = ModelMix("bert-variant")
TWO = ModelMix({"model1-peng-isqed21": 1.0, "model3-efa-trans": 3.0})


class TestModelMix:
    def test_single_name_shorthand(self):
        assert ModelMix("bert-variant").names == ["bert-variant"]

    def test_weights_normalized(self):
        assert sum(w for _, w in TWO.weights) == pytest.approx(1.0)

    def test_sampling_matches_weights(self):
        import random

        rng = random.Random(7)
        draws = [TWO.sample(rng) for _ in range(4000)]
        frac = draws.count("model3-efa-trans") / len(draws)
        assert 0.70 < frac < 0.80  # nominal 0.75

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            ModelMix({})
        with pytest.raises(ValueError):
            ModelMix({"a": -1.0, "b": 2.0})


class TestPoisson:
    def test_deterministic_given_seed(self):
        a = PoissonArrivals(200, TWO, seed=5).generate(2000)
        b = PoissonArrivals(200, TWO, seed=5).generate(2000)
        assert a == b

    def test_seed_changes_stream(self):
        a = PoissonArrivals(200, MIX, seed=1).generate(2000)
        b = PoissonArrivals(200, MIX, seed=2).generate(2000)
        assert a != b

    def test_rate_approximately_respected(self):
        reqs = PoissonArrivals(500, MIX, seed=0).generate(4000)
        assert 1700 <= len(reqs) <= 2300  # 2000 expected, generous CI

    def test_sorted_with_sequential_ids(self):
        reqs = PoissonArrivals(300, MIX, seed=3).generate(1000)
        assert [r.rid for r in reqs] == list(range(len(reqs)))
        assert all(a.t_ms <= b.t_ms for a, b in zip(reqs, reqs[1:]))
        assert all(0 <= r.t_ms < 1000 for r in reqs)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0, MIX)


class TestBursty:
    def test_deterministic_and_bounded(self):
        a = BurstyArrivals(400, MIX, seed=9).generate(3000)
        assert a == BurstyArrivals(400, MIX, seed=9).generate(3000)
        assert all(0 <= r.t_ms < 3000 for r in a)

    def test_long_run_average_rate(self):
        reqs = BurstyArrivals(400, MIX, seed=0, dwell_ms=50).generate(20000)
        assert 6400 <= len(reqs) <= 9600  # 8000 expected

    def test_burst_rate_solves_average(self):
        gen = BurstyArrivals(100, MIX, burst_factor=4, burst_fraction=0.2)
        avg = 0.8 * gen.quiet_qps + 0.2 * gen.burst_qps
        assert avg == pytest.approx(100)
        assert gen.burst_qps == pytest.approx(4 * gen.quiet_qps)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BurstyArrivals(100, MIX, burst_factor=0.5)
        with pytest.raises(ValueError):
            BurstyArrivals(100, MIX, burst_fraction=1.0)


class TestDiurnal:
    def test_deterministic(self):
        a = DiurnalArrivals(300, MIX, seed=2).generate(1000)
        assert a == DiurnalArrivals(300, MIX, seed=2).generate(1000)

    def test_rate_shape(self):
        gen = DiurnalArrivals(100, MIX, period_ms=1000, floor=0.1)
        assert gen.rate_qps(0) == pytest.approx(10)       # valley = floor
        assert gen.rate_qps(500) == pytest.approx(100)    # mid-period peak
        for t in range(0, 1000, 50):
            assert 10 - 1e-9 <= gen.rate_qps(t) <= 100 + 1e-9

    def test_peak_heavier_than_valley(self):
        reqs = DiurnalArrivals(400, MIX, seed=0, period_ms=2000).generate(2000)
        mid = [r for r in reqs if 500 <= r.t_ms < 1500]
        edge = [r for r in reqs if r.t_ms < 500 or r.t_ms >= 1500]
        assert len(mid) > 2 * len(edge)


class TestTraceReplay:
    def test_replay_sorts_and_ids(self):
        trace = [(5.0, "b"), (1.0, "a"), (3.0, "c")]
        reqs = TraceReplay(trace).generate()
        assert reqs == [Request(0, 1.0, "a"), Request(1, 3.0, "c"),
                        Request(2, 5.0, "b")]

    def test_duration_filter(self):
        reqs = TraceReplay([(1.0, "a"), (10.0, "b")]).generate(5.0)
        assert [r.model for r in reqs] == ["a"]

    def test_default_duration_is_unbounded(self):
        assert math.isinf(float("inf"))
        assert len(TraceReplay([(1e9, "a")]).generate()) == 1

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            TraceReplay([(-1.0, "a")])


class TestDegenerateDistributions:
    """Regression: degenerate (zero-variance / single-token) parameters
    must sample cleanly, never ZeroDivisionError (or worse)."""

    def test_zero_variance_uniform(self):
        import random

        from repro.serving import LengthSampler

        sampler = LengthSampler("uniform", 5, 5)
        rng = random.Random(0)
        assert all(sampler.sample(rng) == 5 for _ in range(50))

    def test_single_token_fixed(self):
        import random

        from repro.serving import LengthSampler

        sampler = LengthSampler("fixed", 1)
        assert sampler.sample(random.Random(0)) == 1

    def test_geometric_zero_mean_collapses_to_fixed(self):
        import random

        from repro.serving import LengthSampler

        sampler = LengthSampler("geometric", 4, 64, mean_extra=0.0)
        rng = random.Random(3)
        assert all(sampler.sample(rng) == 4 for _ in range(50))

    def test_geometric_zero_mean_parses(self):
        from repro.serving import LengthSampler

        sampler = LengthSampler.parse("geo:7:0")
        import random

        assert sampler.sample(random.Random(1)) == 7

    def test_geometric_single_token_bounds(self):
        import random

        from repro.serving import LengthSampler

        sampler = LengthSampler("geometric", 1, 1, mean_extra=8.0)
        rng = random.Random(9)
        assert all(sampler.sample(rng) == 1 for _ in range(50))

    def test_negative_mean_still_rejected(self):
        from repro.serving import LengthSampler

        with pytest.raises(ValueError, match="mean_extra"):
            LengthSampler("geometric", 4, mean_extra=-1.0)

    def test_bursty_zero_dwell_named_error(self):
        """A zero dwell used to die with ZeroDivisionError inside
        expovariate at generate() time; now it's a named ValueError
        at construction."""
        with pytest.raises(ValueError, match="dwell_ms"):
            BurstyArrivals(100, MIX, dwell_ms=0.0)

    def test_bursty_unit_burst_factor_is_degenerate_but_fine(self):
        reqs = BurstyArrivals(200, MIX, seed=1,
                              burst_factor=1.0).generate(500)
        assert reqs
        times = [r.t_ms for r in reqs]
        assert times == sorted(times)

    def test_diurnal_zero_floor(self):
        reqs = DiurnalArrivals(300, MIX, seed=2, floor=0.0).generate(1000)
        assert reqs

    def test_attach_lengths_with_degenerate_samplers(self):
        from repro.serving import (LengthSampler,
                                   attach_generation_lengths)

        arrivals = PoissonArrivals(100, TWO, seed=4).generate(200)
        reqs = attach_generation_lengths(
            arrivals,
            LengthSampler("uniform", 3, 3),
            LengthSampler("geometric", 1, 1, mean_extra=0.0))
        assert all(r.prompt_tokens == 3 and r.output_tokens == 1
                   for r in reqs)
