"""Tests for the event-driven cluster simulator.

Covers the acceptance properties: seed-deterministic traces, request
conservation, FIFO correctness on one instance, and model-affinity
dispatch beating round-robin under a nonzero reprogramming penalty.
"""

import pytest

from repro.nn import get_model
from repro.serving import (
    ClusterSimulator,
    ModelMix,
    PoissonArrivals,
    TraceReplay,
    fixed_size,
    simulate,
    summarize,
    timeout,
)

MIX1 = ModelMix("model2-lhc-trigger")
MIX2 = ModelMix({"model1-peng-isqed21": 1.0, "model3-efa-trans": 1.0})


def _poisson(qps, mix, seed, duration_ms):
    return PoissonArrivals(qps, mix, seed=seed).generate(duration_ms)


class TestDeterminism:
    def test_identical_trace_and_metrics(self, default_accel):
        """Same seed + scenario → identical event trace and metrics."""
        def run():
            reqs = _poisson(300, MIX2, 11, 1000)
            res = simulate(default_accel, reqs, 3,
                           scheduler="model-affinity",
                           batching=timeout(4, 2.0),
                           reprogram_latency_ms=5.0)
            return res
        a, b = run(), run()
        assert a.trace == b.trace
        assert a.records == b.records
        assert a.instances == b.instances
        assert summarize(a) == summarize(b)

    def test_simulator_reuse_replays_identically(self, default_accel):
        """One ClusterSimulator, two run() calls: stateful scheduler
        cursors (round-robin) must reset, so replays are identical."""
        sim = ClusterSimulator(default_accel, 2, scheduler="round-robin")
        reqs = _poisson(200, MIX1, 5, 500)
        a, b = sim.run(reqs), sim.run(reqs)
        assert a.trace == b.trace
        assert a.records == b.records


class TestConservation:
    @pytest.mark.parametrize("scheduler", ["round-robin", "least-loaded",
                                           "model-affinity"])
    def test_every_request_served_exactly_once(self, default_accel, scheduler):
        reqs = _poisson(400, MIX2, 2, 500)
        res = simulate(default_accel, reqs, 2, scheduler=scheduler,
                       batching=fixed_size(4), reprogram_latency_ms=3.0)
        assert sorted(r.rid for r in res.records) == [r.rid for r in reqs]
        assert sum(i.requests for i in res.instances) == len(reqs)
        assert all(r.t_dispatch_ms >= r.t_arrival_ms for r in res.records)
        assert all(r.t_complete_ms > r.t_dispatch_ms for r in res.records)


class TestSingleInstanceFifo:
    def test_back_to_back_service(self, default_accel):
        """Two simultaneous arrivals: the second waits out the first."""
        cfg = get_model("model2-lhc-trigger")
        svc = default_accel.latency_report(cfg).latency_ms
        reqs = TraceReplay([(0.0, cfg.name), (0.0, cfg.name)]).generate()
        res = simulate(default_accel, reqs, 1)
        first, second = res.records
        assert first.t_complete_ms == pytest.approx(svc)
        assert second.t_dispatch_ms == pytest.approx(svc)
        assert second.latency_ms == pytest.approx(2 * svc)

    def test_busy_time_equals_service_time(self, default_accel):
        reqs = _poisson(200, MIX1, 4, 500)
        res = simulate(default_accel, reqs, 1)
        total_service = sum(r.service_ms for r in res.records)
        assert res.instances[0].busy_ms == pytest.approx(total_service)

    def test_reprogram_penalty_charged_on_switches(self, default_accel):
        trace = [(0.0, "model1-peng-isqed21"), (1.0, "model3-efa-trans"),
                 (2.0, "model1-peng-isqed21")]
        res = simulate(default_accel, TraceReplay(trace).generate(), 1,
                       reprogram_latency_ms=7.0)
        # Three dispatches, each a different model than the resident one.
        assert res.total_switches == 3
        assert res.total_reprogram_time_ms == pytest.approx(21.0)
        res0 = simulate(default_accel, TraceReplay(trace).generate(), 1)
        assert res0.total_reprogram_time_ms == 0.0


class TestBatching:
    def test_fixed_size_batches_same_model_only(self, default_accel):
        # A blocker at t=0 keeps the instance busy while the queue
        # builds; on free, the same-model head run batches together and
        # the other model is cut off into its own batch.
        trace = ([(0.0, "model1-peng-isqed21")]
                 + [(0.5, "model1-peng-isqed21")] * 3
                 + [(0.5, "model3-efa-trans")])
        res = simulate(default_accel, TraceReplay(trace).generate(), 1,
                       batching=fixed_size(8))
        m1_batches = sorted(r.batch_size for r in res.records
                            if r.model == "model1-peng-isqed21")
        assert m1_batches == [1, 3, 3, 3]  # blocker alone, then one batch
        assert all(r.batch_size == 1 for r in res.records
                   if r.model == "model3-efa-trans")

    def test_timeout_batch_waits_for_deadline(self, default_accel):
        """A lone request under timeout batching dispatches at t+timeout."""
        res = simulate(default_accel,
                       TraceReplay([(0.0, "model2-lhc-trigger")]).generate(),
                       1, batching=timeout(8, 3.0))
        (rec,) = res.records
        assert rec.t_dispatch_ms == pytest.approx(3.0)

    def test_full_batch_dispatches_immediately(self, default_accel):
        trace = [(0.0, "model2-lhc-trigger")] * 8
        res = simulate(default_accel, TraceReplay(trace).generate(), 1,
                       batching=timeout(8, 3.0))
        assert all(r.t_dispatch_ms == 0.0 for r in res.records)
        assert all(r.batch_size == 8 for r in res.records)

    def test_batching_raises_throughput_under_overload(self, default_accel):
        """At an offered load one instance cannot sustain unbatched,
        dynamic batching shortens the makespan (higher throughput)."""
        reqs = _poisson(3000, MIX1, 6, 300)
        plain = simulate(default_accel, reqs, 1)
        batched = simulate(default_accel, reqs, 1, batching=fixed_size(6))
        assert batched.makespan_ms < plain.makespan_ms


class TestSchedulers:
    def test_least_loaded_routes_around_a_slow_job(self, default_accel):
        """A ~20 ms job occupies instance 0; round-robin keeps feeding
        it short jobs anyway, least-loaded routes them to the idle
        instance."""
        trace = [(0.0, "model3-efa-trans")] + [
            (float(t), "model2-lhc-trigger") for t in range(1, 11)
        ]
        reqs = TraceReplay(trace).generate()
        rr = summarize(simulate(default_accel, reqs, 2,
                                scheduler="round-robin"))
        ll = summarize(simulate(default_accel, reqs, 2,
                                scheduler="least-loaded"))
        assert ll.mean_latency_ms < rr.mean_latency_ms
        assert ll.mean_wait_ms < rr.mean_wait_ms

    def test_affinity_beats_round_robin_on_two_model_mix(self, default_accel):
        """The acceptance-criteria property: with a nonzero reprogramming
        cost, model-affinity dispatch dominates round-robin on a
        two-model mix — fewer workload switches and lower latency."""
        reqs = _poisson(50, MIX2, 3, 2000)
        rr = summarize(simulate(default_accel, reqs, 2,
                                scheduler="round-robin",
                                reprogram_latency_ms=20.0))
        aff = summarize(simulate(default_accel, reqs, 2,
                                 scheduler="model-affinity",
                                 reprogram_latency_ms=20.0))
        assert aff.total_switches < rr.total_switches / 2
        assert aff.total_reprogram_time_ms < rr.total_reprogram_time_ms
        assert aff.mean_latency_ms < rr.mean_latency_ms
        assert aff.p95_ms < rr.p95_ms

    def test_unknown_scheduler_rejected(self, default_accel):
        with pytest.raises(KeyError, match="unknown scheduler"):
            ClusterSimulator(default_accel, 2, scheduler="fifo?")


class TestValidation:
    def test_instance_count(self, default_accel):
        with pytest.raises(ValueError):
            ClusterSimulator(default_accel, 0)

    def test_negative_penalty(self, default_accel):
        with pytest.raises(ValueError):
            ClusterSimulator(default_accel, 1, reprogram_latency_ms=-1.0)

    def test_empty_workload_is_fine(self, default_accel):
        res = simulate(default_accel, [], 2)
        assert res.records == [] and res.makespan_ms == 0.0


class TestStaleDeadlineChecks:
    """Batching-deadline (`check`) events may fire for an instance that
    already dispatched the batch that armed them.  These tests pin the
    no-op guarantee: a stale or early check never double-charges a
    reprogram and never produces a phantom dispatch."""

    def _bursty(self, seed=7):
        from repro.serving import BurstyArrivals

        return BurstyArrivals(300, MIX2, seed=seed,
                              burst_factor=6.0).generate(1_500)

    def test_trace_identity_with_and_without_deadline_jitter(
            self, default_accel):
        """Checks are pure wakeups: firing them *early* by any jitter
        must replay the identical dispatch trace (the early event finds
        the head under-age and re-arms the true deadline)."""
        reqs = self._bursty()
        base = ClusterSimulator(default_accel, 2,
                                batching=timeout(6, 2.0),
                                reprogram_latency_ms=3.0).run(reqs)
        for jitter in (0.4, 1.1, 50.0):
            jittered = ClusterSimulator(
                default_accel, 2, batching=timeout(6, 2.0),
                reprogram_latency_ms=3.0,
                check_jitter_ms=jitter).run(reqs)
            assert jittered.records == base.records, f"jitter={jitter}"
            dispatches = [e for e in base.trace if e[0] == "dispatch"]
            jdispatches = [e for e in jittered.trace
                           if e[0] == "dispatch"]
            assert jdispatches == dispatches, f"jitter={jitter}"

    def test_stale_check_no_double_reprogram_no_phantom_dispatch(
            self, default_accel):
        """Arm a deadline, fill the batch before it expires (dispatch),
        and let the stale check fire while the instance is busy: the
        run must show exactly one dispatch and one reprogram charge."""
        trace = [(0.0, "model3-efa-trans"), (0.5, "model3-efa-trans")]
        res = simulate(default_accel, TraceReplay(trace).generate(), 1,
                       batching=timeout(2, 5.0),
                       reprogram_latency_ms=10.0)
        dispatches = [e for e in res.trace if e[0] == "dispatch"]
        assert len(dispatches) == 1            # full batch at t=0.5
        assert dispatches[0][4] == 2           # both requests in it
        assert res.instances[0].switch_count == 1
        assert res.total_reprogram_time_ms == pytest.approx(10.0)

    def test_check_rearms_for_younger_head(self, default_accel):
        """After a stale check fires, a younger head still gets served
        exactly at its own deadline — no earlier, no later."""
        svc = default_accel.latency_report(
            get_model("model2-lhc-trigger")).latency_ms
        trace = [(0.0, "model2-lhc-trigger"),
                 (0.2, "model2-lhc-trigger"),   # fills the batch at 0.2
                 (1.0, "model2-lhc-trigger")]   # lone younger head
        res = simulate(default_accel, TraceReplay(trace).generate(), 1,
                       batching=timeout(2, 4.0))
        by_rid = {r.rid: r for r in res.records}
        # The lone request dispatches at its own deadline (1.0 + 4.0)
        # or when the instance frees, whichever is later.
        first_free = 0.2 + 2 * svc
        expected = max(1.0 + 4.0, first_free)
        assert by_rid[2].t_dispatch_ms == pytest.approx(expected)

    def test_negative_jitter_rejected(self, default_accel):
        with pytest.raises(ValueError):
            ClusterSimulator(default_accel, 1, check_jitter_ms=-0.1)
