"""Tests for serving metrics, SLO attainment, and capacity planning."""

import pytest

from repro.serving import (
    ModelMix,
    PoissonArrivals,
    percentile,
    plan_capacity,
    render_capacity_plan,
    render_serving_report,
    simulate,
    summarize,
)

MIX = ModelMix("model2-lhc-trigger")
MIX2 = ModelMix({"model2-lhc-trigger": 3.0, "model1-peng-isqed21": 1.0})


class TestPercentile:
    def test_nearest_rank(self):
        vals = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(vals, 50) == 3.0
        assert percentile(vals, 100) == 5.0
        assert percentile(vals, 0) == 1.0
        assert percentile(vals, 99) == 5.0

    def test_unsorted_input(self):
        assert percentile([5.0, 1.0, 3.0], 50) == 3.0

    def test_empty_raises_clearly(self):
        """No rank exists for an empty input: a clear error, not an
        IndexError (or a silent NaN leaking into reports)."""
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)

    def test_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_single_sample_every_q(self):
        for q in (0, 1e-9, 50, 99.999999, 100):
            assert percentile([7.5], q) == 7.5

    def test_matches_numpy_inverted_cdf(self):
        """Edge audit against the reference definition: q=0, q=100,
        q just below 100, exact-rank products, and fuzzed ranks."""
        np = pytest.importorskip("numpy")
        import random

        rng = random.Random(42)
        cases = []
        for n in (1, 2, 3, 5, 7, 10, 20, 29, 100, 1000):
            vals = sorted(rng.uniform(0, 100) for _ in range(n))
            qs = [0, 1e-9, 25, 50, 75, 95, 99, 99.999999, 100,
                  100 * 2 / 3, 100 * 3 / 7]
            qs += [rng.uniform(0, 100) for _ in range(20)]
            cases.append((vals, qs))
        for vals, qs in cases:
            for q in qs:
                expected = float(np.percentile(vals, q,
                                               method="inverted_cdf"))
                assert percentile(vals, q) == expected, (
                    f"n={len(vals)}, q={q!r}")


@pytest.fixture(scope="module")
def light_run(default_accel):
    reqs = PoissonArrivals(500, MIX2, seed=0).generate(1000)
    return reqs, simulate(default_accel, reqs, 4)


class TestSummarize:
    def test_counts_and_throughput(self, light_run):
        reqs, res = light_run
        rep = summarize(res)
        assert rep.total_requests == len(reqs)
        assert rep.throughput_rps == pytest.approx(
            len(reqs) / (res.makespan_ms / 1e3))
        assert sum(m.count for m in rep.per_model.values()) == len(reqs)

    def test_utilization_bounds(self, light_run):
        _, res = light_run
        rep = summarize(res)
        assert 0 < rep.utilization < 1
        assert rep.n_instances == 4

    def test_percentile_ordering(self, light_run):
        _, res = light_run
        rep = summarize(res)
        assert rep.p50_ms <= rep.p95_ms <= rep.p99_ms

    def test_slo_attainment(self, light_run):
        _, res = light_run
        assert summarize(res, slo_ms=1e9).slo_attainment == 1.0
        assert summarize(res, slo_ms=1e-9).slo_attainment == 0.0
        assert summarize(res).slo_attainment is None

    def test_as_dict_round_trips_to_json(self, light_run):
        import json

        _, res = light_run
        d = summarize(res, slo_ms=5.0).as_dict()
        blob = json.loads(json.dumps(d))
        assert {"throughput_rps", "utilization",
                "latency_ms"} <= set(blob)
        assert {"p50", "p95", "p99"} <= set(blob["latency_ms"])

    def test_empty_run_emits_valid_json(self, default_accel):
        """Zero requests → NaN statistics must become null, not the
        literal NaN that strict JSON parsers reject."""
        import json

        d = summarize(simulate(default_accel, [], 2)).as_dict()
        blob = json.dumps(d)
        assert "NaN" not in blob
        parsed = json.loads(blob)
        assert parsed["latency_ms"]["p99"] is None
        assert parsed["total_requests"] == 0

    def test_render_report_mentions_models(self, light_run):
        _, res = light_run
        text = render_serving_report(summarize(res))
        assert "model2-lhc-trigger" in text and "Per-instance" in text


class TestCapacityPlanning:
    def test_plan_is_minimal_and_confirmed(self, default_accel):
        """plan_capacity returns a fleet size that a direct simulation
        confirms meets the p99 SLO, and one fewer instance misses it."""
        reqs = PoissonArrivals(3000, MIX, seed=1).generate(1000)
        plan = plan_capacity(default_accel, reqs, target_p99_ms=5.0)
        assert plan.meets_slo

        confirm = summarize(simulate(default_accel, reqs, plan.instances))
        assert confirm.p99_ms <= 5.0
        assert confirm.p99_ms == plan.report.p99_ms

        assert plan.instances > 1
        under = summarize(simulate(default_accel, reqs, plan.instances - 1))
        assert under.p99_ms > 5.0

    def test_plan_meets_target_qps(self, default_accel):
        reqs = PoissonArrivals(3000, MIX, seed=1).generate(1000)
        plan = plan_capacity(default_accel, reqs, target_p99_ms=5.0,
                             target_qps=3000)
        assert plan.report.throughput_rps >= 0.95 * 3000

    def test_probes_recorded_monotone_search(self, default_accel):
        reqs = PoissonArrivals(3000, MIX, seed=1).generate(1000)
        plan = plan_capacity(default_accel, reqs, target_p99_ms=5.0)
        assert plan.instances in plan.probes
        assert all(plan.probes[n] > 5.0 for n in plan.probes
                   if n < plan.instances)

    def test_infeasible_raises(self, default_accel):
        reqs = PoissonArrivals(3000, MIX, seed=1).generate(200)
        with pytest.raises(RuntimeError, match="no fleet"):
            plan_capacity(default_accel, reqs, target_p99_ms=1e-6,
                          max_instances=4)

    def test_empty_workload_rejected(self, default_accel):
        with pytest.raises(ValueError):
            plan_capacity(default_accel, [], target_p99_ms=5.0)

    def test_render_capacity_plan(self, default_accel):
        reqs = PoissonArrivals(2000, MIX, seed=2).generate(500)
        plan = plan_capacity(default_accel, reqs, target_p99_ms=5.0)
        text = render_capacity_plan(plan)
        assert "Capacity plan" in text and str(plan.instances) in text


class TestCapacityPlanningErrorPaths:
    def test_empty_fleet_rejected(self, default_accel):
        """max_instances=0 is an empty search space: named error, not
        a probe loop that silently returns a 1-instance plan."""
        reqs = PoissonArrivals(100, MIX, seed=0).generate(200)
        with pytest.raises(ValueError, match="empty fleet"):
            plan_capacity(default_accel, reqs, target_p99_ms=50.0,
                          max_instances=0)

    def test_zero_instance_cluster_rejected(self, default_accel):
        from repro.serving import ClusterSimulator

        with pytest.raises(ValueError, match="at least one instance"):
            ClusterSimulator(default_accel, 0)

    def test_zero_capacity_instance_rejected(self):
        """An instance that can serve nothing (empty capability set)
        is a configuration error, not a silent dead instance."""
        from repro.sim import InstanceSpec

        with pytest.raises(ValueError, match="at least one model"):
            InstanceSpec(models=())

    def test_zero_slot_generation_cluster_rejected(self, default_accel):
        from repro.serving import GenerationClusterSimulator

        with pytest.raises(ValueError, match="sequence slot"):
            GenerationClusterSimulator(default_accel, 1, slots=0)
