"""Token-level continuous batching: simulator, workloads, metrics."""

import json
import math
import random

import pytest

from repro.core import ProTEA
from repro.isa import SynthParams
from repro.serving import (
    GenerationRequest,
    LengthSampler,
    ModelMix,
    PoissonArrivals,
    attach_generation_lengths,
    render_generation_report,
    simulate_generation,
    summarize_generation,
)
from repro.serving.generation import GenerationClusterSimulator


@pytest.fixture(scope="module")
def accel():
    return ProTEA.synthesize(SynthParams())


def _workload(accel, qps=100, duration=1_000, seed=0,
              model="model2-lhc-trigger"):
    arrivals = PoissonArrivals(qps, ModelMix(model),
                               seed=seed).generate(duration)
    return attach_generation_lengths(
        arrivals, LengthSampler("uniform", 4, 12),
        LengthSampler("geometric", 2, 32, mean_extra=6.0),
        seed=seed, max_total=accel.synth.max_seq_len)


class TestLengthSampler:
    def test_fixed(self):
        s = LengthSampler("fixed", 7)
        assert [s.sample(random.Random(0)) for _ in range(3)] == [7, 7, 7]

    def test_uniform_bounds_and_determinism(self):
        s = LengthSampler("uniform", 3, 9)
        a = [s.sample(random.Random(5)) for _ in range(50)]
        b = [s.sample(random.Random(5)) for _ in range(50)]
        assert a == b
        assert all(3 <= v <= 9 for v in a)

    def test_geometric_bounds(self):
        s = LengthSampler("geometric", 4, 20, mean_extra=5.0)
        vals = [s.sample(random.Random(9)) for _ in range(200)]
        assert all(4 <= v <= 20 for v in vals)
        assert max(vals) > 4  # actually disperses

    def test_parse_forms(self):
        assert LengthSampler.parse("12").kind == "fixed"
        u = LengthSampler.parse("3:9")
        assert (u.kind, u.lo, u.hi) == ("uniform", 3, 9)
        g = LengthSampler.parse("geo:4:6")
        assert (g.kind, g.lo, g.mean_extra) == ("geometric", 4, 6.0)

    def test_parse_rejects_garbage(self):
        for bad in ("", "a", "4:x", "geo:4", "1:2:3:4"):
            with pytest.raises(ValueError):
                LengthSampler.parse(bad)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            LengthSampler("fixed", 0)
        with pytest.raises(ValueError):
            LengthSampler("uniform", 5, 3)
        with pytest.raises(ValueError):
            LengthSampler("weird", 1)


class TestGenerationWorkload:
    def test_attach_is_deterministic(self, accel):
        a = _workload(accel)
        b = _workload(accel)
        assert a == b

    def test_max_total_clamps(self, accel):
        arrivals = PoissonArrivals(50, ModelMix("model2-lhc-trigger"),
                                   seed=1).generate(500)
        reqs = attach_generation_lengths(
            arrivals, LengthSampler("fixed", 100),
            LengthSampler("fixed", 100), max_total=64)
        assert all(r.total_tokens <= 64 for r in reqs)
        assert all(r.output_tokens >= 1 for r in reqs)

    def test_request_validation(self):
        with pytest.raises(ValueError):
            GenerationRequest(rid=0, t_ms=0.0, model="m",
                              prompt_tokens=0, output_tokens=1)


class TestSimulator:
    def test_conservation_and_records(self, accel):
        reqs = _workload(accel)
        result = simulate_generation(accel, reqs, 2, slots=4)
        assert result.total_requests == len(reqs)
        assert result.total_tokens == sum(r.output_tokens for r in reqs)
        by_rid = {r.rid: r for r in result.records}
        assert set(by_rid) == {r.rid for r in reqs}
        for rec in result.records:
            assert rec.t_arrival_ms <= rec.t_admit_ms
            assert rec.t_admit_ms < rec.t_first_token_ms
            assert rec.t_first_token_ms <= rec.t_complete_ms + 1e-9
            assert rec.ttft_ms > 0

    def test_trace_identical_across_replays(self, accel):
        reqs = _workload(accel)
        r1 = simulate_generation(accel, reqs, 2, slots=4)
        r2 = simulate_generation(accel, reqs, 2, slots=4)
        assert r1.trace == r2.trace
        assert r1.records == r2.records

    def test_slots_respected(self, accel):
        reqs = _workload(accel, qps=400)
        result = simulate_generation(accel, reqs, 1, slots=3)
        for entry in result.trace:
            if entry[0] == "step":
                _, _, _, _, admitted, decoding, _ = entry
                assert admitted + decoding <= 3

    def test_single_model_resident_per_instance(self, accel):
        arrivals = PoissonArrivals(
            200, ModelMix({"model2-lhc-trigger": 1.0,
                           "model1-peng-isqed21": 1.0}),
            seed=2).generate(500)
        reqs = attach_generation_lengths(
            arrivals, LengthSampler("fixed", 8), LengthSampler("fixed", 4),
            max_total=accel.synth.max_seq_len)
        result = simulate_generation(accel, reqs, 1, slots=8)
        # Reconstruct per-step models from the trace: the admitted
        # model never changes while sequences are still decoding
        # another model.
        admits = {}
        for entry in result.trace:
            if entry[0] == "admit":
                admits.setdefault(entry[1], entry[3])
        assert result.total_requests == len(reqs)
        # Switching models is allowed only between drained sets: the
        # reprogram accounting must match the trace's step models.
        step_models = [e[3] for e in result.trace if e[0] == "step"]
        switches = sum(1 for a, b in zip(step_models, step_models[1:])
                       if a != b) + 1
        assert result.total_switches == switches

    def test_no_mixed_models_admitted_into_one_step(self, accel):
        """Two different-model requests draining into an *empty* active
        set must not be admitted together: the second waits for the
        first to finish and pays its own reprogram switch."""
        reqs = [
            GenerationRequest(rid=0, t_ms=0.0, model="model2-lhc-trigger",
                              prompt_tokens=4, output_tokens=4),
            GenerationRequest(rid=1, t_ms=0.1,
                              model="model1-peng-isqed21",
                              prompt_tokens=4, output_tokens=4),
        ]
        result = simulate_generation(accel, reqs, 1, slots=4,
                                     reprogram_latency_ms=7.0)
        steps = [(e[3], e[4]) for e in result.trace if e[0] == "step"]
        assert all(n <= 1 for _, n in steps)  # never co-admitted
        models_in_order = [m for m, n in steps if n]
        assert models_in_order == ["model2-lhc-trigger",
                                   "model1-peng-isqed21"]
        assert result.total_switches == 2
        assert result.total_reprogram_time_ms == pytest.approx(14.0)
        by_rid = {r.rid: r for r in result.records}
        # The model-Y request only starts after model X fully drains.
        assert by_rid[1].t_admit_ms >= by_rid[0].t_complete_ms - 1e-9

    def test_continuous_batching_beats_serial_slots(self, accel):
        reqs = _workload(accel, qps=400, duration=2_000)
        batched = summarize_generation(
            simulate_generation(accel, reqs, 2, slots=8))
        serial = summarize_generation(
            simulate_generation(accel, reqs, 2, slots=1))
        assert batched.p99_ttft_ms < serial.p99_ttft_ms
        assert batched.mean_ttft_ms < serial.mean_ttft_ms

    def test_reprogram_penalty_charged_on_switch(self, accel):
        reqs = [
            GenerationRequest(rid=0, t_ms=0.0, model="model2-lhc-trigger",
                              prompt_tokens=4, output_tokens=2),
            GenerationRequest(rid=1, t_ms=100.0,
                              model="model1-peng-isqed21",
                              prompt_tokens=4, output_tokens=2),
        ]
        result = simulate_generation(accel, reqs, 1, slots=2,
                                     reprogram_latency_ms=25.0)
        assert result.total_switches == 2
        assert result.total_reprogram_time_ms == pytest.approx(50.0)

    def test_oversized_request_rejected(self, accel):
        big = [GenerationRequest(
            rid=0, t_ms=0.0, model="model2-lhc-trigger",
            prompt_tokens=accel.synth.max_seq_len,
            output_tokens=8)]
        with pytest.raises(ValueError, match="KV cache"):
            simulate_generation(accel, big, 1)

    def test_plain_requests_rejected(self, accel):
        from repro.serving import Request

        with pytest.raises(TypeError, match="GenerationRequest"):
            simulate_generation(
                accel, [Request(rid=0, t_ms=0.0,
                                model="model2-lhc-trigger")], 1)

    def test_invalid_parameters(self, accel):
        with pytest.raises(ValueError):
            GenerationClusterSimulator(accel, 0)
        with pytest.raises(ValueError):
            GenerationClusterSimulator(accel, 1, slots=0)
        with pytest.raises(ValueError):
            GenerationClusterSimulator(accel, 1, reprogram_latency_ms=-1)


class TestSummarize:
    def test_metrics_and_goodput(self, accel):
        reqs = _workload(accel, qps=200)
        result = simulate_generation(accel, reqs, 2, slots=8)
        report = summarize_generation(result, ttft_slo_ms=50.0,
                                      tpot_slo_ms=5.0)
        assert report.total_tokens == result.total_tokens
        assert report.p50_ttft_ms <= report.p95_ttft_ms <= report.p99_ttft_ms
        assert 0 <= report.slo_attainment <= 1
        assert report.goodput_tokens_per_s <= report.tokens_per_s + 1e-9
        blob = json.loads(json.dumps(report.as_dict()))
        assert blob["slo"]["attainment"] == report.slo_attainment

    def test_no_slo_means_no_goodput(self, accel):
        reqs = _workload(accel, qps=50, duration=300)
        report = summarize_generation(
            simulate_generation(accel, reqs, 1, slots=4))
        assert report.slo_attainment is None
        assert report.goodput_tokens_per_s is None
        assert "slo" not in report.as_dict()

    def test_empty_run_is_nan_not_crash(self, accel):
        report = summarize_generation(simulate_generation(accel, [], 1))
        assert report.total_requests == 0
        assert math.isnan(report.mean_ttft_ms)
        blob = json.loads(json.dumps(report.as_dict()))
        assert blob["ttft_ms"]["p99"] is None

    def test_render_smoke(self, accel):
        reqs = _workload(accel, qps=50, duration=300)
        report = summarize_generation(
            simulate_generation(accel, reqs, 1, slots=4),
            ttft_slo_ms=10.0)
        text = render_generation_report(report)
        assert "TTFT" in text and "Per-instance" in text
