"""Unit tests for batching policies and the batched service kernel."""

import pytest

from repro.nn import MODEL_ZOO, get_model
from repro.serving import (
    ServiceTimeModel,
    fixed_size,
    get_batching,
    no_batching,
    timeout,
)


@pytest.fixture(scope="module")
def service(default_accel):
    return ServiceTimeModel(default_accel, MODEL_ZOO)


class TestPolicyDecisions:
    def test_no_batching_always_single(self):
        p = no_batching()
        assert p.decide(1, 0.0) == 1
        assert p.decide(5, 0.0) == 1

    def test_fixed_size_greedy(self):
        p = fixed_size(4)
        assert p.decide(7, 0.0) == 4    # cap at max batch
        assert p.decide(2, 0.0) == 2    # never waits for stragglers

    def test_timeout_waits_then_flushes(self):
        p = timeout(4, 2.0)
        assert p.decide(4, 0.0) == 4          # full batch: go now
        assert p.decide(2, 0.5) is None       # partial, young head: wait
        assert p.decide(2, 2.0) == 2          # deadline reached: flush
        assert p.decide(3, 5.0) == 3

    def test_factory(self):
        assert get_batching("none").max_batch == 1
        assert get_batching("fixed", 16).max_batch == 16
        p = get_batching("timeout", 8, 3.0)
        assert (p.max_batch, p.timeout_ms) == (8, 3.0)
        with pytest.raises(KeyError):
            get_batching("nope")

    def test_validation(self):
        with pytest.raises(ValueError):
            fixed_size(0)
        with pytest.raises(ValueError):
            timeout(4, -1.0)


class TestServiceTimeModel:
    def test_batch_of_one_matches_latency_report(self, service, default_accel):
        cfg = get_model("model2-lhc-trigger")
        expected = default_accel.latency_report(cfg).latency_ms
        assert service.batch_service_ms("model2-lhc-trigger", 1) == expected

    def test_invocation_packing(self, service, default_accel):
        # model2 has SL=20; max_seq_len=128 → 6 requests per invocation.
        assert default_accel.synth.max_seq_len == 128
        assert service.invocation_seq_lens("model2-lhc-trigger", 6) == [120]
        assert service.invocation_seq_lens("model2-lhc-trigger", 8) == [120, 40]
        # bert-variant has SL=64 → 2 per invocation.
        assert service.invocation_seq_lens("bert-variant", 5) == [128, 128, 64]

    def test_batching_is_sublinear(self, service):
        """Packed invocations amortize the per-invocation weight streams."""
        one = service.batch_service_ms("model2-lhc-trigger", 1)
        six = service.batch_service_ms("model2-lhc-trigger", 6)
        assert six < 6 * one
        assert six >= one  # but more tokens never get cheaper than fewer

    def test_batch_beyond_one_invocation_adds_up(self, service):
        six = service.batch_service_ms("model2-lhc-trigger", 6)
        twelve = service.batch_service_ms("model2-lhc-trigger", 12)
        assert twelve == pytest.approx(2 * six)

    def test_unknown_model_raises(self, service):
        with pytest.raises(KeyError, match="unknown model"):
            service.batch_service_ms("nope", 1)

    def test_unservable_model_rejected_on_use(self, default_accel):
        """Validation is lazy: an unservable zoo entry only errors when
        the workload actually requests it — a table full of large
        models must not break simulations that never touch them."""
        from repro.nn import TransformerConfig

        big = TransformerConfig("too-long", d_model=256, num_heads=4,
                                num_layers=1, seq_len=512)
        ok = TransformerConfig("fits", d_model=64, num_heads=2,
                               num_layers=1, seq_len=16)
        svc = ServiceTimeModel(default_accel, {"too-long": big, "fits": ok})
        assert svc.batch_service_ms("fits", 2) > 0
        with pytest.raises(ValueError, match="max_seq_len"):
            svc.batch_service_ms("too-long", 1)

    def test_cache_is_exact(self, service):
        a = service.batch_service_ms("model3-efa-trans", 3)
        b = service.batch_service_ms("model3-efa-trans", 3)
        assert a == b
