"""Unit tests for the golden decoder."""

import numpy as np
import pytest

from repro.nn import CrossAttention, Decoder, DecoderLayer, causal_mask


class TestCausalMask:
    def test_shape_and_pattern(self):
        m = causal_mask(4)
        assert m.shape == (4, 4)
        assert np.all(np.tril(m) == 0)
        assert np.all(m[np.triu_indices(4, k=1)] < -1e20)

    def test_invalid(self):
        with pytest.raises(ValueError):
            causal_mask(0)


class TestCrossAttention:
    def test_memory_widths_validated(self, rng):
        ca = CrossAttention.initialize(rng, 16, 2)
        with pytest.raises(ValueError):
            ca(np.zeros((4, 16)), np.zeros((6, 8)))

    def test_different_lengths_allowed(self, rng):
        """Decoder length and memory length are independent."""
        ca = CrossAttention.initialize(rng, 16, 2)
        out = ca(rng.normal(size=(3, 16)), rng.normal(size=(7, 16)))
        assert out.shape == (3, 16)

    def test_attends_over_memory(self, rng):
        """Changing the memory changes the output; changing future
        decoder positions does not affect earlier ones (no mask here —
        cross attention sees all memory)."""
        ca = CrossAttention.initialize(rng, 16, 2)
        x = rng.normal(size=(3, 16))
        m1 = rng.normal(size=(5, 16))
        m2 = m1 + 1.0
        assert not np.allclose(ca(x, m1), ca(x, m2))

    def test_divisibility(self, rng):
        with pytest.raises(ValueError):
            CrossAttention.initialize(rng, 15, 2)


class TestDecoderLayer:
    def test_causality(self, rng):
        """Changing target position j>i must not change output at i."""
        layer = DecoderLayer.initialize(rng, 16, 2)
        mem = rng.normal(size=(6, 16))
        x = rng.normal(size=(5, 16))
        y1 = layer(x, mem)
        x2 = x.copy()
        x2[3:] += 5.0
        y2 = layer(x2, mem)
        assert np.allclose(y1[:3], y2[:3], atol=1e-10)
        assert not np.allclose(y1[3:], y2[3:])

    def test_memory_feeds_through(self, rng):
        layer = DecoderLayer.initialize(rng, 16, 2)
        x = rng.normal(size=(4, 16))
        m1 = rng.normal(size=(6, 16))
        assert not np.allclose(layer(x, m1), layer(x, m1 * 2))

    def test_post_ln_output_normalized(self, rng):
        layer = DecoderLayer.initialize(rng, 24, 3)
        y = layer(rng.normal(size=(5, 24)), rng.normal(size=(7, 24)))
        assert np.allclose(y.mean(axis=-1), 0.0, atol=1e-8)


class TestDecoderStack:
    def test_composition(self, rng):
        dec = Decoder.initialize(rng, 2, 16, 2)
        x = rng.normal(size=(4, 16))
        mem = rng.normal(size=(6, 16))
        manual = dec.layers[1](dec.layers[0](x, mem), mem)
        assert np.allclose(dec(x, mem), manual)

    def test_depth(self, rng):
        assert Decoder.initialize(rng, 3, 16, 2).num_layers == 3
