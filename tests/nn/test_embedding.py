"""Unit tests for embedding + positional encoding."""

import numpy as np
import pytest

from repro.nn import Embedding, sinusoidal_positional_encoding


class TestPositionalEncoding:
    def test_shape(self):
        assert sinusoidal_positional_encoding(10, 16).shape == (10, 16)

    def test_position_zero_pattern(self):
        pe = sinusoidal_positional_encoding(4, 8)
        assert np.allclose(pe[0, 0::2], 0.0)  # sin(0)
        assert np.allclose(pe[0, 1::2], 1.0)  # cos(0)

    def test_values_bounded(self):
        pe = sinusoidal_positional_encoding(100, 64)
        assert np.all(np.abs(pe) <= 1.0)

    def test_distinct_positions(self):
        pe = sinusoidal_positional_encoding(50, 32)
        # No two positions share an encoding.
        for i in range(0, 50, 7):
            for j in range(i + 1, 50, 11):
                assert not np.allclose(pe[i], pe[j])

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            sinusoidal_positional_encoding(0, 8)
        with pytest.raises(ValueError):
            sinusoidal_positional_encoding(8, 0)


class TestEmbedding:
    def test_lookup_plus_positions(self, rng):
        emb = Embedding.initialize(rng, vocab_size=100, d_model=16)
        ids = np.array([3, 1, 4])
        out = emb(ids)
        pe = sinusoidal_positional_encoding(3, 16)
        assert np.allclose(out, emb.table[ids] + pe)

    def test_without_positions(self, rng):
        emb = Embedding.initialize(rng, 10, 8)
        emb.add_positional = False
        ids = np.array([0, 0])
        out = emb(ids)
        assert np.allclose(out[0], out[1])

    def test_out_of_vocab_rejected(self, rng):
        emb = Embedding.initialize(rng, 10, 8)
        with pytest.raises(ValueError):
            emb(np.array([10]))
        with pytest.raises(ValueError):
            emb(np.array([-1]))

    def test_requires_1d_ids(self, rng):
        emb = Embedding.initialize(rng, 10, 8)
        with pytest.raises(ValueError):
            emb(np.zeros((2, 2), dtype=int))

    def test_table_must_be_2d(self):
        with pytest.raises(ValueError):
            Embedding(table=np.zeros(5))
