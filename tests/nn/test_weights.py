"""Unit tests for the weight store / parameter-extraction flow."""

import io

import numpy as np
import pytest

from repro.nn import (
    TransformerConfig,
    build_encoder,
    encoder_state_dict,
    extract_hyperparameters,
    load_encoder,
    save_encoder,
)

CFG = TransformerConfig("ws", d_model=32, num_heads=2, num_layers=2, seq_len=8,
                        activation="relu")


class TestStateDict:
    def test_key_schema(self):
        enc = build_encoder(CFG, seed=0)
        state = encoder_state_dict(enc)
        assert "layer0.attn.head0.wq.weight" in state
        assert "layer1.ffn.w2.bias" in state
        assert "layer0.ln1.gamma" in state

    def test_counts(self):
        enc = build_encoder(CFG, seed=0)
        state = encoder_state_dict(enc)
        # per layer: 2 heads x 3 proj x 2 tensors + wo(2) + ffn(4) + ln(4)
        assert len(state) == 2 * (2 * 3 * 2 + 2 + 4 + 4)


class TestSaveLoadRoundtrip:
    def test_roundtrip_exact(self):
        enc = build_encoder(CFG, seed=1)
        buf = io.BytesIO()
        save_encoder(enc, buf, config=CFG)
        buf.seek(0)
        loaded = load_encoder(buf)
        x = np.random.default_rng(0).normal(size=(8, 32))
        assert np.array_equal(enc(x), loaded(x))

    def test_activation_preserved(self):
        enc = build_encoder(CFG, seed=1)
        buf = io.BytesIO()
        save_encoder(enc, buf, config=CFG)
        buf.seek(0)
        loaded = load_encoder(buf)
        assert loaded.layers[0].ffn.activation == "relu"


class TestExtraction:
    def test_extract_from_state_dict(self):
        enc = build_encoder(CFG, seed=2)
        params = extract_hyperparameters(encoder_state_dict(enc))
        assert params.num_heads == 2
        assert params.num_layers == 2
        assert params.d_model == 32
        assert params.d_ff == 128
        assert params.seq_len is None  # no meta in bare state dict

    def test_extract_from_file_with_meta(self):
        enc = build_encoder(CFG, seed=2)
        buf = io.BytesIO()
        save_encoder(enc, buf, config=CFG)
        buf.seek(0)
        params = extract_hyperparameters(buf)
        assert params.seq_len == 8

    def test_extract_rejects_garbage(self):
        with pytest.raises(ValueError):
            extract_hyperparameters({"not_a_layer": np.zeros(3)})

    def test_extracted_params_drive_csr_programming(self):
        """The extraction → CSR pipeline of Section IV-D."""
        from repro.isa import ConfigRegisterFile, SynthParams

        enc = build_encoder(CFG, seed=3)
        params = extract_hyperparameters(encoder_state_dict(enc))
        csr = ConfigRegisterFile(SynthParams(
            ts_mha=16, ts_ffn=16, max_heads=4, max_layers=4,
            max_d_model=32, max_seq_len=16, seq_chunk=16))
        csr.write("num_heads", params.num_heads)
        csr.write("num_layers", params.num_layers)
        csr.write("d_model", params.d_model)
        csr.write("seq_len", 8)
        assert csr.snapshot()["d_model"] == 32
