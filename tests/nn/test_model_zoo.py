"""Unit tests for the model zoo and Table I test matrix."""

import pytest

from repro.nn import BERT_VARIANT, MODEL_ZOO, TransformerConfig, get_model, table1_tests


class TestTransformerConfig:
    def test_d_ff_defaults_to_4x(self):
        cfg = TransformerConfig("t", 64, 2, 1, 8)
        assert cfg.d_ff == 256

    def test_d_k(self):
        assert BERT_VARIANT.d_k == 96

    def test_divisibility_enforced(self):
        with pytest.raises(ValueError):
            TransformerConfig("bad", 65, 2, 1, 8)

    def test_positive_dims_enforced(self):
        with pytest.raises(ValueError):
            TransformerConfig("bad", 64, 2, 0, 8)

    def test_with_updates(self):
        cfg = BERT_VARIANT.with_(num_heads=4)
        assert cfg.num_heads == 4
        assert cfg.d_model == BERT_VARIANT.d_model
        assert BERT_VARIANT.num_heads == 8  # original untouched


class TestZoo:
    def test_bert_variant_matches_paper(self):
        assert BERT_VARIANT.d_model == 768
        assert BERT_VARIANT.num_heads == 8
        assert BERT_VARIANT.num_layers == 12
        assert BERT_VARIANT.seq_len == 64

    def test_all_models_valid(self):
        for name, cfg in MODEL_ZOO.items():
            assert cfg.d_model % cfg.num_heads == 0, name

    def test_get_model_error_lists_choices(self):
        with pytest.raises(KeyError, match="bert-variant"):
            get_model("nonexistent")

    def test_table2_workloads_exist(self):
        for key in ("model1-peng-isqed21", "model2-lhc-trigger",
                    "model3-efa-trans", "model4-qi-iccad21",
                    "ftrans-workload"):
            assert key in MODEL_ZOO


class TestTable1Matrix:
    def test_nine_tests(self):
        tests = table1_tests()
        assert sorted(tests) == list(range(1, 10))

    def test_parameter_axes(self):
        t = table1_tests()
        assert (t[1].num_heads, t[2].num_heads, t[3].num_heads) == (8, 4, 2)
        assert (t[1].num_layers, t[4].num_layers, t[5].num_layers) == (12, 8, 4)
        assert (t[1].d_model, t[6].d_model, t[7].d_model) == (768, 512, 256)
        assert (t[1].seq_len, t[8].seq_len, t[9].seq_len) == (64, 128, 32)

    def test_only_one_axis_varies_per_test(self):
        base = table1_tests()[1]
        for i, cfg in table1_tests().items():
            diffs = sum([
                cfg.num_heads != base.num_heads,
                cfg.num_layers != base.num_layers,
                cfg.d_model != base.d_model,
                cfg.seq_len != base.seq_len,
            ])
            assert diffs <= 1, f"test {i} varies more than one axis"
