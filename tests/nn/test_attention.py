"""Unit tests for golden multi-head attention."""

import numpy as np
import pytest

from repro.nn import Linear, MultiHeadAttention


@pytest.fixture()
def mha(rng):
    return MultiHeadAttention.initialize(rng, d_model=32, num_heads=4)


class TestConstruction:
    def test_initialize_shapes(self, mha):
        assert mha.num_heads == 4
        assert mha.d_k == 8
        assert mha.d_model == 32
        assert mha.wo.in_features == 32

    def test_d_model_divisibility_enforced(self, rng):
        with pytest.raises(ValueError):
            MultiHeadAttention.initialize(rng, d_model=30, num_heads=4)

    def test_mismatched_dk_rejected(self, rng):
        heads = [Linear.initialize(rng, 16, 4) for _ in range(2)]
        bad_v = [Linear.initialize(rng, 16, 4), Linear.initialize(rng, 16, 8)]
        with pytest.raises(ValueError):
            MultiHeadAttention(wq=heads, wk=heads, wv=bad_v,
                               wo=Linear.initialize(rng, 8, 16))

    def test_wrong_wo_rejected(self, rng):
        heads = [Linear.initialize(rng, 16, 4) for _ in range(2)]
        with pytest.raises(ValueError):
            MultiHeadAttention(wq=heads, wk=heads, wv=heads,
                               wo=Linear.initialize(rng, 999, 16))


class TestForward:
    def test_output_shape(self, mha, rng):
        x = rng.normal(size=(10, 32))
        assert mha(x).shape == (10, 32)

    def test_trace_matches_call(self, mha, rng):
        x = rng.normal(size=(6, 32))
        trace = mha.forward_trace(x)
        assert np.allclose(trace.output, mha(x))

    def test_trace_internals_consistent(self, mha, rng):
        x = rng.normal(size=(6, 32))
        t = mha.forward_trace(x)
        assert len(t.q) == 4
        for h in range(4):
            assert np.allclose(t.weights[h].sum(axis=-1), 1.0)
            assert np.allclose(t.head_outputs[h], t.weights[h] @ t.v[h])
        assert t.concat.shape == (6, 32)

    def test_mask_changes_output(self, mha, rng):
        x = rng.normal(size=(5, 32))
        mask = np.triu(np.full((5, 5), -1e30), k=1)  # causal
        assert not np.allclose(mha(x), mha(x, mask=mask))

    def test_causal_mask_first_row_ignores_future(self, mha, rng):
        """With a causal mask, output at position 0 must not change when
        later positions change."""
        x = rng.normal(size=(5, 32))
        mask = np.triu(np.full((5, 5), -1e30), k=1)
        y1 = mha(x, mask=mask)
        x2 = x.copy()
        x2[3:] += 10.0
        y2 = mha(x2, mask=mask)
        assert np.allclose(y1[0], y2[0])

    def test_paper_alg2_scale_mode(self, rng):
        a = MultiHeadAttention.initialize(rng, 32, 4, scale_mode="sqrt_dk")
        b = MultiHeadAttention(wq=a.wq, wk=a.wk, wv=a.wv, wo=a.wo,
                               scale_mode="paper_alg2")
        x = np.random.default_rng(3).normal(size=(4, 32))
        assert not np.allclose(a(x), b(x))

    def test_permutation_equivariance_without_positions(self, mha, rng):
        """Self-attention (no mask) is permutation-equivariant."""
        x = rng.normal(size=(6, 32))
        perm = rng.permutation(6)
        assert np.allclose(mha(x)[perm], mha(x[perm]), atol=1e-10)
