"""Unit tests for the golden encoder stack."""

import numpy as np
import pytest

from repro.nn import Encoder, EncoderLayer, FeedForward, Linear


class TestFeedForward:
    def test_default_expansion_is_4x(self, rng):
        ffn = FeedForward.initialize(rng, d_model=16)
        assert ffn.d_ff == 64

    def test_forward_shape(self, rng):
        ffn = FeedForward.initialize(rng, 16)
        x = rng.normal(size=(5, 16))
        assert ffn(x).shape == (5, 16)

    def test_relu_vs_gelu_differ(self, rng):
        r = FeedForward.initialize(rng, 16, activation="relu")
        g = FeedForward(w1=r.w1, w2=r.w2, activation="gelu")
        x = np.random.default_rng(0).normal(size=(4, 16))
        assert not np.allclose(r(x), g(x))

    def test_unknown_activation_rejected(self, rng):
        with pytest.raises(ValueError):
            FeedForward.initialize(rng, 16, activation="swish")

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            FeedForward(w1=Linear.initialize(rng, 16, 32),
                        w2=Linear.initialize(rng, 64, 16))


class TestEncoderLayer:
    def test_output_shape_and_normalization(self, rng):
        layer = EncoderLayer.initialize(rng, d_model=24, num_heads=3)
        x = rng.normal(size=(7, 24))
        y = layer(x)
        assert y.shape == (7, 24)
        # Post-LN output: each row is normalized.
        assert np.allclose(y.mean(axis=-1), 0.0, atol=1e-8)
        assert np.allclose(y.var(axis=-1), 1.0, atol=1e-3)

    def test_residual_path_matters(self, rng):
        """Zeroing the layer input must change the output (residual)."""
        layer = EncoderLayer.initialize(rng, 16, 2)
        x = rng.normal(size=(4, 16))
        assert not np.allclose(layer(x), layer(np.zeros_like(x)))


class TestEncoder:
    def test_stack_depth(self, rng):
        enc = Encoder.initialize(rng, num_layers=3, d_model=16, num_heads=2)
        assert enc.num_layers == 3

    def test_forward_composes_layers(self, rng):
        enc = Encoder.initialize(rng, 2, 16, 2)
        x = rng.normal(size=(5, 16))
        manual = enc.layers[1](enc.layers[0](x))
        assert np.allclose(enc(x), manual)

    def test_empty_encoder_is_identity(self):
        enc = Encoder(layers=[])
        x = np.ones((3, 4))
        assert np.array_equal(enc(x), x)

    def test_deterministic_given_seed(self):
        rng1 = np.random.default_rng(42)
        rng2 = np.random.default_rng(42)
        e1 = Encoder.initialize(rng1, 1, 16, 2)
        e2 = Encoder.initialize(rng2, 1, 16, 2)
        x = np.random.default_rng(0).normal(size=(4, 16))
        assert np.array_equal(e1(x), e2(x))
