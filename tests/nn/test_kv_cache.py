"""Golden KV-cache: incremental decode vs the full-sequence decoder."""

import numpy as np
import pytest

from repro.nn import (
    Decoder,
    DecoderKVCache,
    MultiHeadAttention,
    causal_fill,
    causal_mask,
    score_mask_value,
    softmax,
)


@pytest.fixture(scope="module")
def stack():
    rng = np.random.default_rng(11)
    decoder = Decoder.initialize(rng, num_layers=2, d_model=32, num_heads=4)
    gen = np.random.default_rng(12)
    x = gen.normal(size=(12, 32))
    memory = gen.normal(size=(7, 32))
    return decoder, x, memory


class TestIncrementalEqualsFull:
    def test_every_step_matches_full_forward(self, stack):
        """Step ``t`` equals row ``t`` of the full pass over ``t+1``
        tokens (float64 round-off only — BLAS may block a one-row
        matmul differently from the same row of a full product)."""
        decoder, x, memory = stack
        cache = DecoderKVCache.initialize(decoder, memory)
        for t in range(x.shape[0]):
            row = cache.step(x[t])
            full = decoder(x[:t + 1], memory)
            np.testing.assert_allclose(row, full[t:t + 1],
                                       rtol=1e-10, atol=1e-12)

    def test_prefill_matches_full_forward(self, stack):
        decoder, x, memory = stack
        cache = DecoderKVCache.initialize(decoder, memory)
        out = cache.prefill(x)
        np.testing.assert_allclose(out, decoder(x, memory),
                                   rtol=1e-10, atol=1e-12)
        assert cache.seq_len == x.shape[0]

    def test_cache_grows_one_row_per_step(self, stack):
        decoder, x, memory = stack
        cache = DecoderKVCache.initialize(decoder, memory)
        assert cache.seq_len == 0
        cache.step(x[0])
        assert cache.seq_len == 1
        layer0 = cache.layers[0]
        assert all(k.shape == (1, 32 // 4) for k in layer0.self_k)

    def test_cross_kv_precomputed_and_fixed(self, stack):
        decoder, x, memory = stack
        cache = DecoderKVCache.initialize(decoder, memory)
        before = [k.copy() for k in cache.layers[0].cross_k]
        cache.step(x[0])
        cache.step(x[1])
        for b, a in zip(before, cache.layers[0].cross_k):
            np.testing.assert_array_equal(b, a)

    def test_empty_prompt_rejected(self, stack):
        decoder, _, memory = stack
        cache = DecoderKVCache.initialize(decoder, memory)
        with pytest.raises(ValueError):
            cache.prefill(np.empty((0, 32)))


class TestMaskHelpers:
    def test_mask_value_is_dtype_minimum(self):
        assert score_mask_value(np.float64) == np.finfo(np.float64).min
        assert score_mask_value(np.float32) == float(
            np.finfo(np.float32).min)

    def test_causal_mask_dtype_aware(self):
        m32 = causal_mask(4, dtype=np.float32)
        assert m32.dtype == np.float32
        assert np.all(np.isfinite(m32))
        assert np.all(m32[np.triu_indices(4, k=1)]
                      == np.finfo(np.float32).min)

    def test_causal_fill_square(self):
        filled = causal_fill(np.zeros((3, 3)), -7.0)
        assert np.all(filled[np.triu_indices(3, k=1)] == -7.0)
        assert np.all(np.tril(filled) == 0)

    def test_causal_fill_last_rows_alignment(self):
        """A (rows < cols) block is the *last* rows of the sequence:
        a single decode row masks nothing."""
        one = causal_fill(np.zeros((1, 5)), -7.0)
        assert np.all(one == 0)
        two = causal_fill(np.zeros((2, 5)), -7.0)
        assert np.all(two[0, :4] == 0) and two[0, 4] == -7.0
        assert np.all(two[1] == 0)

    def test_causal_fill_rejects_non_2d(self):
        with pytest.raises(ValueError):
            causal_fill(np.zeros(4), -1.0)


class TestMaskedSoftmaxRegression:
    """The causal_mask bugfix: masked softmax rows must equal an
    explicit re-normalized reference in float32 and float64."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_masked_rows_match_renormalized_reference(self, dtype):
        rng = np.random.default_rng(3)
        n = 9
        scores = rng.normal(scale=3.0, size=(n, n)).astype(dtype)
        masked = (scores + causal_mask(n, dtype=dtype)).astype(dtype)
        rows = softmax(masked, axis=-1)
        tol = 1e-6 if dtype is np.float32 else 1e-14
        for i in range(n):
            visible = scores[i, :i + 1].astype(np.float64)
            e = np.exp(visible - visible.max())
            ref = e / e.sum()
            np.testing.assert_allclose(rows[i, :i + 1], ref, rtol=tol,
                                       atol=tol)
            # Future lanes carry exactly zero probability.
            assert np.all(rows[i, i + 1:] == 0.0)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_mask_stays_finite_under_reapplication(self, dtype):
        """Applying the mask twice (the float32 failure mode of the old
        fixed ``-1e30``) must not reach inf/NaN."""
        m = causal_mask(6, dtype=dtype)
        scores = np.zeros((6, 6), dtype=dtype)
        once = np.where(m < 0, m, scores).astype(dtype)
        twice = np.where(m < 0, np.maximum(once, m), once)
        assert np.all(np.isfinite(twice))
        out = softmax(twice, axis=-1)
        assert np.all(np.isfinite(out))

    def test_attention_with_masked_fill_matches_additive(self):
        """Additive application of the dtype-min mask and a hard fill
        agree — both force masked scores to the format minimum."""
        rng = np.random.default_rng(5)
        mha = MultiHeadAttention.initialize(rng, 16, 2)
        x = rng.normal(size=(6, 16))
        additive = mha(x, mask=causal_mask(6))
        trace = mha.forward_trace(x, mask=causal_mask(6))
        for s in trace.scores:
            filled = causal_fill(s, score_mask_value())
            np.testing.assert_allclose(softmax(filled, axis=-1),
                                       softmax(s, axis=-1))
        assert additive.shape == (6, 16)
