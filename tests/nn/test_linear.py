"""Unit tests for the Linear layer."""

import numpy as np
import pytest

from repro.nn import Linear, xavier_uniform


class TestLinear:
    def test_forward_matches_matmul(self, rng):
        lin = Linear.initialize(rng, 8, 4)
        x = rng.normal(size=(5, 8))
        assert np.allclose(lin(x), x @ lin.weight + lin.bias)

    def test_shapes_exposed(self, rng):
        lin = Linear.initialize(rng, 8, 4)
        assert lin.in_features == 8
        assert lin.out_features == 4

    def test_bias_shape_validated(self):
        with pytest.raises(ValueError):
            Linear(weight=np.zeros((4, 3)), bias=np.zeros(4))

    def test_weight_must_be_2d(self):
        with pytest.raises(ValueError):
            Linear(weight=np.zeros(4), bias=np.zeros(4))

    def test_initialize_zero_bias(self, rng):
        lin = Linear.initialize(rng, 16, 16)
        assert np.all(lin.bias == 0)


class TestXavier:
    def test_limits_respected(self, rng):
        w = xavier_uniform(rng, 100, 50)
        limit = np.sqrt(6.0 / 150)
        assert w.shape == (100, 50)
        assert np.all(np.abs(w) <= limit)

    def test_variance_roughly_glorot(self, rng):
        w = xavier_uniform(rng, 400, 400)
        expected_var = 2.0 / (400 + 400)
        assert w.var() == pytest.approx(expected_var, rel=0.1)
