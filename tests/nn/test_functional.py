"""Unit + property tests for the golden NN primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import (
    attention_scale,
    gelu,
    layer_norm,
    relu,
    scaled_dot_product_attention,
    softmax,
)

finite = st.floats(-50, 50)


class TestSoftmax:
    @given(hnp.arrays(np.float64, (4, 9), elements=finite))
    def test_rows_sum_to_one(self, x):
        s = softmax(x, axis=-1)
        assert np.allclose(s.sum(axis=-1), 1.0)
        assert np.all(s >= 0)

    @given(hnp.arrays(np.float64, (3, 5), elements=finite),
           st.floats(-100, 100))
    def test_shift_invariance(self, x, c):
        assert np.allclose(softmax(x), softmax(x + c))

    def test_numerical_stability_large_inputs(self):
        x = np.array([[1000.0, 1000.0]])
        s = softmax(x)
        assert np.allclose(s, 0.5)
        assert np.all(np.isfinite(s))

    def test_argmax_preserved(self):
        x = np.array([[1.0, 3.0, 2.0]])
        assert softmax(x).argmax() == 1


class TestActivations:
    @given(hnp.arrays(np.float64, (17,), elements=finite))
    def test_relu_nonnegative_and_identity_on_positive(self, x):
        y = relu(x)
        assert np.all(y >= 0)
        assert np.allclose(y[x > 0], x[x > 0])

    def test_gelu_known_values(self):
        assert gelu(np.array(0.0)) == pytest.approx(0.0)
        # GELU(x) → x for large positive x
        assert gelu(np.array(10.0)) == pytest.approx(10.0, abs=1e-6)
        assert gelu(np.array(-10.0)) == pytest.approx(0.0, abs=1e-6)

    @given(hnp.arrays(np.float64, (9,), elements=st.floats(-8, 8)))
    def test_gelu_bounded_below_by_small_constant(self, x):
        assert np.all(gelu(x) >= -0.171)  # min of GELU ≈ -0.17


class TestLayerNorm:
    @given(hnp.arrays(np.float64, (5, 12), elements=st.floats(-20, 20)))
    def test_normalizes_rows(self, x):
        d = x.shape[-1]
        y = layer_norm(x, np.ones(d), np.zeros(d), eps=1e-12)
        # Rows whose variance is within a few orders of eps normalize
        # to something between 0 and 1 — exclude them from the strict
        # variance check.
        rows_const = x.var(axis=-1) < 1e-6
        mean = y.mean(axis=-1)
        var = y.var(axis=-1)
        assert np.allclose(mean[~rows_const], 0.0, atol=1e-8)
        assert np.allclose(var[~rows_const], 1.0, atol=1e-5)
        # Constant rows normalize to ~zero rather than NaN.
        assert np.all(np.isfinite(y))

    def test_gamma_beta_applied(self):
        x = np.random.default_rng(0).normal(size=(3, 8))
        g, b = 2.0 * np.ones(8), 3.0 * np.ones(8)
        y = layer_norm(x, g, b, eps=0.0)
        assert np.allclose(y.mean(axis=-1), 3.0, atol=1e-8)
        assert np.allclose(y.std(axis=-1), 2.0, atol=1e-6)


class TestAttention:
    def test_scale_modes(self):
        assert attention_scale(64, 512, "sqrt_dk") == pytest.approx(1 / 8)
        assert attention_scale(64, 512, "paper_alg2") == pytest.approx(1 / 512)
        with pytest.raises(ValueError):
            attention_scale(64, 512, "bogus")

    def test_uniform_attention_averages_values(self):
        """Identical queries/keys → softmax uniform → output = mean(V)."""
        sl, dk = 4, 8
        q = np.ones((sl, dk))
        k = np.ones((sl, dk))
        v = np.arange(sl * dk, dtype=float).reshape(sl, dk)
        out = scaled_dot_product_attention(q, k, v)
        assert np.allclose(out, v.mean(axis=0))

    def test_mask_blocks_positions(self):
        rng = np.random.default_rng(1)
        q = rng.normal(size=(3, 4))
        k = rng.normal(size=(3, 4))
        v = rng.normal(size=(3, 4))
        mask = np.zeros((3, 3))
        mask[:, 2] = -1e30  # never attend to position 2
        out = scaled_dot_product_attention(q, k, v, mask=mask)
        ref = scaled_dot_product_attention(q[:, :], k[:2], v[:2],
                                           mask=mask[:, :2])
        assert np.allclose(out, ref, atol=1e-10)

    def test_one_hot_attention_selects_value(self):
        """A query aligned with exactly one key selects that value."""
        k = np.eye(3) * 100
        q = k.copy()
        v = np.diag([1.0, 2.0, 3.0])
        out = scaled_dot_product_attention(q, k, v, scale=1.0)
        assert np.allclose(out, v, atol=1e-6)
