"""Unit tests for the Fig. 7 design-space sweep."""

import math

import pytest

from repro.core import find_optimum, normalize_latency, tile_size_sweep


@pytest.fixture(scope="module")
def sweep():
    return tile_size_sweep()


class TestSweepGrid:
    def test_full_grid(self, sweep):
        assert len(sweep) == 3 * 5
        combos = {(p.tiles_mha, p.tiles_ffn) for p in sweep}
        assert (12, 6) in combos and (48, 2) in combos

    def test_tile_sizes_derived(self, sweep):
        by = {(p.tiles_mha, p.tiles_ffn): p for p in sweep}
        assert by[(12, 6)].ts_mha == 64
        assert by[(12, 6)].ts_ffn == 128
        assert by[(6, 2)].ts_ffn == 384
        assert by[(12, 5)].ts_ffn == math.ceil(768 / 5)


class TestHeadline:
    def test_optimum_matches_paper(self, sweep):
        """Both the frequency max and the latency min sit at 12/6."""
        best_freq, best_lat = find_optimum(sweep)
        assert (best_freq.tiles_mha, best_freq.tiles_ffn) == (12, 6)
        assert (best_lat.tiles_mha, best_lat.tiles_ffn) == (12, 6)

    def test_peak_frequency_200mhz(self, sweep):
        best_freq, _ = find_optimum(sweep)
        assert best_freq.fmax_mhz == pytest.approx(200.0)

    def test_frequency_range_matches_figure(self, sweep):
        """Fig. 7's y-axis spans ~60-240 MHz."""
        freqs = [p.fmax_mhz for p in sweep]
        assert min(freqs) >= 55
        assert max(freqs) <= 240

    def test_biggest_tiles_are_slowest_clock(self, sweep):
        by = {(p.tiles_mha, p.tiles_ffn): p for p in sweep}
        assert by[(12, 2)].fmax_mhz < by[(12, 6)].fmax_mhz

    def test_most_fragmented_also_slower(self, sweep):
        by = {(p.tiles_mha, p.tiles_ffn): p for p in sweep}
        assert by[(48, 6)].fmax_mhz < by[(12, 6)].fmax_mhz


class TestNormalization:
    def test_minimum_normalizes_to_one(self, sweep):
        assert min(p.normalized_latency for p in sweep) == pytest.approx(1.0)

    def test_normalize_empty(self):
        assert normalize_latency([]) == []

    def test_find_optimum_empty(self):
        with pytest.raises(ValueError):
            find_optimum([])


class TestResourceTradeoff:
    def test_fewer_tiles_more_dsps(self, sweep):
        """Bigger tiles → wider PE arrays → more DSPs."""
        by = {(p.tiles_mha, p.tiles_ffn): p for p in sweep}
        assert by[(6, 2)].dsps > by[(12, 6)].dsps > by[(48, 6)].dsps
