"""Unit tests for the FFN module (functional, cycles, resources)."""

import numpy as np
import pytest

from repro.core import DatapathFormats
from repro.core.ffn_module import FFNModule
from repro.core.quantized import QuantizedEncoder
from repro.fixedpoint import FxTensor
from repro.isa import SynthParams
from repro.nn import TransformerConfig, build_encoder

CFG = TransformerConfig("fm", d_model=64, num_heads=2, num_layers=1, seq_len=16)
SYNTH = SynthParams(ts_mha=16, ts_ffn=32, max_heads=2, max_layers=2,
                    max_d_model=64, max_seq_len=32, seq_chunk=16)


@pytest.fixture(scope="module")
def setup():
    enc = build_encoder(CFG, seed=4)
    fmts = DatapathFormats.fix16()
    module = FFNModule(SYNTH, fmts)
    q = QuantizedEncoder.from_encoder(enc, fmts)
    rng = np.random.default_rng(1)
    concat = FxTensor.from_float(rng.normal(0, 0.5, (16, 64)), fmts.activation)
    layer_in = FxTensor.from_float(rng.normal(0, 0.5, (16, 64)), fmts.activation)
    return module, q.layers[0], concat, layer_in, enc.layers[0]


class TestFunctional:
    def test_trace_shapes(self, setup):
        module, layer, concat, layer_in, _ = setup
        t = module.forward(concat, layer_in, layer)
        assert t.proj.raw.shape == (16, 64)
        assert t.hidden.raw.shape == (16, 256)
        assert t.out.raw.shape == (16, 64)

    def test_matches_float_reference(self, setup):
        """fix16 FFN module tracks the float computation stagewise."""
        module, layer, concat, layer_in, golden = setup
        t = module.forward(concat, layer_in, layer)
        c = concat.to_float()
        xin = layer_in.to_float()
        from repro.nn.functional import gelu, layer_norm

        proj = c @ layer.wo.weight.to_float() + layer.wo.bias.to_float()
        ln1 = layer_norm(proj + xin, layer.ln1_gamma, layer.ln1_beta)
        hid = gelu(ln1 @ layer.w1.weight.to_float() + layer.w1.bias.to_float())
        out = layer_norm(
            hid @ layer.w2.weight.to_float() + layer.w2.bias.to_float() + ln1,
            layer.ln2_gamma, layer.ln2_beta)
        assert np.max(np.abs(t.ln1.to_float() - ln1)) < 0.05
        assert np.max(np.abs(t.out.to_float() - out)) < 0.15

    def test_relu_activation_path(self, setup):
        module, layer, concat, layer_in, _ = setup
        import dataclasses

        relu_layer = dataclasses.replace(layer, activation="relu")
        t = module.forward(concat, layer_in, relu_layer)
        assert np.all(t.hidden.raw >= 0)

    def test_unknown_activation_rejected(self, setup):
        module, layer, concat, layer_in, _ = setup
        import dataclasses

        bad = dataclasses.replace(layer, activation="swish")
        with pytest.raises(ValueError):
            module.forward(concat, layer_in, bad)


class TestCycles:
    def test_tile_grid_published_counts(self):
        """At the published config: FFN1 36, FFN2 144, FFN3 36."""
        module = FFNModule(SynthParams(), DatapathFormats.fix8())
        grid = module.tile_grid(768)
        assert grid == {"ffn1": 36, "ffn2": 144, "ffn3": 36}

    def test_linear_scaling_in_d_model(self):
        """Output grid frozen at synthesis → invocations linear in the
        runtime d_model (the Table I tests 6-7 mechanism)."""
        module = FFNModule(SynthParams(), DatapathFormats.fix8())
        g768 = module.tile_grid(768)
        g512 = module.tile_grid(512)
        g256 = module.tile_grid(256)
        assert g512["ffn2"] / g768["ffn2"] == pytest.approx(4 / 6)
        assert g256["ffn2"] / g768["ffn2"] == pytest.approx(2 / 6)

    def test_compute_cycles_dominated_by_ffn2(self):
        module = FFNModule(SynthParams(), DatapathFormats.fix8())
        c = module.compute_cycles(64, 768)
        assert c["ffn2"] > c["ffn1"]
        assert c["ffn2"] > c["ffn3"]
        assert c["total"] == c["ffn1"] + c["ffn2"] + c["ffn3"] + c["ln"]

    def test_weight_bytes(self):
        module = FFNModule(SynthParams(), DatapathFormats.fix8())
        wb = module.weight_bytes(768)
        assert wb["ffn1"] == 768 * 768
        assert wb["ffn2"] == 768 * 3072
        assert wb["ffn3"] == 3072 * 768


class TestResources:
    def test_published_dsp_budget(self):
        """128 + 128 + 512 PEs + 2 LN units x 6 DSPs = 780."""
        module = FFNModule(SynthParams(), DatapathFormats.fix8())
        assert module.resources().dsps == 128 + 128 + 512 + 12

    def test_timing_paths(self):
        module = FFNModule(SynthParams(), DatapathFormats.fix8())
        paths = {p.name: p for p in module.timing_paths()}
        assert paths["ffn3_ce"].width == 512
