"""Unit + property tests for engine building blocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engines import (
    DatapathFormats,
    add_bias_and_requantize,
    ffn_loop_nest,
    qk_loop_nest,
    qkv_loop_nest,
    reduction_passes,
    softmax_loop_nest,
    sv_loop_nest,
    tiled_fx_matmul_2d,
    tiled_fx_matmul_reduction,
)
from repro.fixedpoint import FxTensor, QFormat
from repro.hls import estimate_loop_resources, schedule_loop

Q84 = QFormat(8, 4)


class TestFormats:
    def test_fix8_widths(self):
        f = DatapathFormats.fix8()
        assert f.weight_bits == 8
        assert f.activation.total_bits == 8

    def test_fix16_widths(self):
        f = DatapathFormats.fix16()
        assert f.weight_bits == 16
        assert f.qkv.total_bits == 16


class TestTiledMatmuls:
    @settings(max_examples=30)
    @given(st.integers(1, 12), st.integers(1, 40), st.integers(1, 12),
           st.integers(1, 16))
    def test_reduction_tiling_bit_exact(self, sl, d, dk, tile):
        rng = np.random.default_rng(7)
        x = FxTensor(rng.integers(-128, 128, (sl, d)), Q84)
        w = FxTensor(rng.integers(-128, 128, (d, dk)), Q84)
        out = tiled_fx_matmul_reduction(x, w, tile)
        assert np.array_equal(out.raw, x.raw @ w.raw)

    @settings(max_examples=30)
    @given(st.integers(1, 8), st.integers(1, 32), st.integers(1, 32),
           st.integers(1, 12), st.integers(1, 12))
    def test_2d_tiling_bit_exact(self, sl, d_in, d_out, tr, tc):
        rng = np.random.default_rng(8)
        x = FxTensor(rng.integers(-128, 128, (sl, d_in)), Q84)
        w = FxTensor(rng.integers(-128, 128, (d_in, d_out)), Q84)
        out = tiled_fx_matmul_2d(x, w, tr, tc)
        assert np.array_equal(out.raw, x.raw @ w.raw)

    def test_mismatched_reduction_rejected(self):
        x = FxTensor(np.zeros((2, 3), dtype=np.int64), Q84)
        w = FxTensor(np.zeros((4, 2), dtype=np.int64), Q84)
        with pytest.raises(ValueError):
            tiled_fx_matmul_reduction(x, w, 2)
        with pytest.raises(ValueError):
            tiled_fx_matmul_2d(x, w, 2, 2)

    def test_bias_add_requantize(self):
        x = FxTensor(np.array([[10, 20]]), Q84)
        w = FxTensor(np.eye(2, dtype=np.int64) * 16, Q84)  # identity
        acc = tiled_fx_matmul_reduction(x, w, 1)
        bias = FxTensor.from_float(np.array([0.5, -0.5]), QFormat(16, 8))
        out = add_bias_and_requantize(acc, bias, Q84)
        expect = x.to_float() + np.array([0.5, -0.5])
        assert np.allclose(out.to_float(), expect, atol=Q84.scale)


class TestLoopNests:
    def test_qkv_pe_count(self):
        """Algorithm 1 with TS=64 yields 3x64 = 192 PEs per head."""
        nest = qkv_loop_nest(seq_len=64, d_k=96, ts_mha=64)
        assert estimate_loop_resources(nest).dsps == 192

    def test_qk_pe_count(self):
        nest = qk_loop_nest(64, 64, d_k_unroll=96)
        assert estimate_loop_resources(nest).dsps == 96

    def test_sv_pe_count(self):
        nest = sv_loop_nest(64, 96, sl_unroll=64)
        assert estimate_loop_resources(nest).dsps == 64

    def test_ffn_pe_counts(self):
        assert estimate_loop_resources(
            ffn_loop_nest(64, 128, 128)).dsps == 128
        assert estimate_loop_resources(
            ffn_loop_nest(64, 128, 512)).dsps == 512

    def test_qkv_cycles_scale_with_dk(self):
        fast = schedule_loop(qkv_loop_nest(64, 48, 64)).cycles
        slow = schedule_loop(qkv_loop_nest(64, 96, 64)).cycles
        assert slow > fast

    def test_qk_reduction_passes_multiply_cycles(self):
        one = schedule_loop(qk_loop_nest(64, 64, 96, reduction_passes=1))
        four = schedule_loop(qk_loop_nest(64, 64, 96, reduction_passes=4))
        assert four.cycles > 3 * one.cycles

    def test_softmax_has_three_passes(self):
        nest = softmax_loop_nest(rows=8, row_len=16)
        sched = schedule_loop(nest)
        # at least 3 passes of 16 per row
        assert sched.cycles >= 8 * 3 * 16


class TestReductionPasses:
    def test_exact_fit(self):
        assert reduction_passes(96, 96) == (1, 96)

    def test_oversized_runtime_dk(self):
        assert reduction_passes(384, 96) == (4, 384)

    def test_undersized_still_one_pass(self):
        assert reduction_passes(32, 96) == (1, 96)

    def test_validation(self):
        with pytest.raises(ValueError):
            reduction_passes(0, 96)
