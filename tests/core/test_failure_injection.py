"""Failure-injection tests: broken programs, corrupted weights, and
infeasible design corners must fail loudly, not silently."""

import numpy as np
import pytest

from repro import ProTEA, SynthParams, TransformerConfig
from repro.analysis import grid_sweep
from repro.core.runtime import ProgramExecutor, TileNotResidentError
from repro.fixedpoint import FxTensor
from repro.isa import Instruction, Opcode, compile_program
from repro.isa.interpreter import Interpreter, UnhandledOpcodeError
from repro.nn import build_encoder

CFG = TransformerConfig("fi", d_model=64, num_heads=2, num_layers=1, seq_len=8)
SYNTH = SynthParams(ts_mha=16, ts_ffn=32, max_heads=2, max_layers=2,
                    max_d_model=64, max_seq_len=16, seq_chunk=16)


@pytest.fixture()
def accel():
    a = ProTEA.synthesize(SYNTH, enforce_fit=False)
    a.program(CFG).load_weights(build_encoder(CFG, seed=0))
    return a


@pytest.fixture()
def x_fx(accel):
    return FxTensor.from_float(
        np.random.default_rng(0).normal(0, 0.5, (8, 64)),
        accel.formats.activation)


class TestBrokenPrograms:
    def _run_mutated(self, accel, x_fx, mutate):
        program = compile_program(CFG, SYNTH)
        program = mutate(program)
        execu = ProgramExecutor(accel, accel.weights)
        cfg = accel.config
        from repro.core.runtime import _LayerState

        execu._state = _LayerState(x=x_fx)
        execu._layer_idx = 0
        execu._output = None
        execu.interp.run(program[4:])  # skip CONFIGURE prologue
        return execu

    def test_dropping_qkv_loads_detected(self, accel, x_fx):
        def drop_loads(program):
            return [i for i in program
                    if i.opcode is not Opcode.LOAD_QKV_WEIGHTS]

        with pytest.raises(TileNotResidentError):
            self._run_mutated(accel, x_fx, drop_loads)

    def test_dropping_ffn_loads_detected(self, accel, x_fx):
        def drop_loads(program):
            return [i for i in program
                    if i.opcode is not Opcode.LOAD_FFN_WEIGHTS]

        with pytest.raises(TileNotResidentError):
            self._run_mutated(accel, x_fx, drop_loads)

    def test_missing_store_detected(self, accel, x_fx):
        program = [i for i in compile_program(CFG, SYNTH)
                   if i.opcode is not Opcode.STORE_OUTPUT]
        execu = ProgramExecutor(accel, accel.weights)
        with pytest.raises(RuntimeError, match="STORE_OUTPUT"):
            # run() rebuilds the program; drive the interpreter directly.
            from repro.core.runtime import _LayerState

            execu._state = _LayerState(x=x_fx)
            execu._layer_idx = 0
            execu._output = None
            execu.interp.run(program)
            if execu._output is None:
                raise RuntimeError("program halted without STORE_OUTPUT")

    def test_ffn2_before_ln1_detected(self, accel, x_fx):
        """Reordering the FFN stages breaks the dataflow contract."""
        def swap(program):
            out = []
            for ins in program:
                if ins.opcode is Opcode.RUN_LN1:
                    continue  # drop LN1 entirely
                out.append(ins)
            return out

        with pytest.raises(RuntimeError, match="FFN2"):
            self._run_mutated(accel, x_fx, swap)

    def test_unregistered_opcode(self):
        interp = Interpreter()
        with pytest.raises(UnhandledOpcodeError):
            interp.run([Instruction(Opcode.RUN_QKV)])


class TestCorruptedWeights:
    def test_saturated_weights_still_produce_finite_output(self, accel, x_fx):
        """Saturating an entire weight tensor must not overflow the
        integer pipeline (saturation arithmetic everywhere)."""
        layer = accel.weights.layers[0]
        wfmt = layer.w1.weight.fmt
        layer.w1.weight.raw[:] = wfmt.int_max
        out = accel.run_fx(x_fx)
        assert np.all(out.raw <= out.fmt.int_max)
        assert np.all(out.raw >= out.fmt.int_min)

    def test_zero_weights_give_ln_of_bias(self, accel, x_fx):
        """All-zero weights: attention output collapses to bias terms;
        the pipeline must stay well-defined."""
        for lin in (accel.weights.layers[0].wq[0],
                    accel.weights.layers[0].wk[0]):
            lin.weight.raw[:] = 0
        out = accel.run_fx(x_fx)
        assert np.all(np.isfinite(out.to_float()))


class TestInfeasibleCorners:
    def test_dse_tolerates_overutilized_points(self):
        """A DSE sweep over head counts records failures instead of
        aborting (continue_on_error path)."""
        import dataclasses

        from repro.fpga import ZCU102
        from repro.core.resource_model import device_utilization

        def evaluate(heads):
            synth = dataclasses.replace(SynthParams(), max_heads=heads)
            return device_utilization(synth, ZCU102, enforce=True)

        results = grid_sweep({"heads": [1, 2, 4, 8]}, evaluate,
                             continue_on_error=True)
        assert all(not r.ok for r in results)  # nothing fits ZCU102
        assert all("OverUtilization" in r.error for r in results)

    def test_sweep_reports_which_params_failed(self):
        def evaluate(x):
            if x > 1:
                raise ValueError("boom")
            return x

        results = grid_sweep({"x": [1, 2]}, evaluate, continue_on_error=True)
        assert results[1].params == {"x": 2}
        assert not results[1].ok
