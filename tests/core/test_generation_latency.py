"""Prefill/decode latency split (GenerationReport + decode cycles)."""

import pytest

from repro.core import ProTEA
from repro.isa import ResynthesisRequiredError, SynthParams
from repro.nn import BERT_VARIANT, get_model


@pytest.fixture(scope="module")
def accel():
    return ProTEA.synthesize(SynthParams())


class TestDecodeLayerCycles:
    def test_weight_streaming_dominates(self, accel):
        """Per-token loads are the full layer weight traffic; compute
        is one row — the decode regime the KV cache creates."""
        layer = accel.latency_model.decode_layer_cycles(16, 768, 8)
        assert layer.load_total > layer.compute_total

    def test_attention_term_grows_with_cache(self, accel):
        model = accel.latency_model
        short = model.decode_layer_cycles(8, 768, 8)
        long = model.decode_layer_cycles(120, 768, 8)
        assert long.compute["qk"] > short.compute["qk"]
        assert long.compute["softmax"] > short.compute["softmax"]
        assert long.compute["sv"] > short.compute["sv"]

    def test_loads_independent_of_cache(self, accel):
        model = accel.latency_model
        a = model.decode_layer_cycles(4, 768, 8)
        b = model.decode_layer_cycles(100, 768, 8)
        assert a.loads == b.loads

    def test_decode_cheaper_than_full_sequence(self, accel):
        """One decode step must undercut re-running the whole prefix."""
        model = accel.latency_model
        decode = model.decode_layer_cycles(64, 768, 8)
        full = model.layer_cycles(64, 768, 8)
        assert decode.total < full.total

    def test_invalid_cache_len(self, accel):
        with pytest.raises(ValueError):
            accel.latency_model.decode_layer_cycles(0, 768, 8)


class TestGenerationReport:
    def test_ttft_is_prefill_latency(self, accel):
        rep = accel.generation_report(BERT_VARIANT, prompt_len=32,
                                      output_len=16)
        prefill = accel.latency_report(BERT_VARIANT.with_(seq_len=32))
        assert rep.ttft_ms == prefill.latency_ms

    def test_totals_compose(self, accel):
        rep = accel.generation_report(BERT_VARIANT, prompt_len=16,
                                      output_len=8)
        assert rep.total_ms == pytest.approx(rep.ttft_ms + rep.decode_ms)
        assert len(rep.decode_step_cycles) == 7
        assert rep.tpot_ms == pytest.approx(rep.decode_ms / 7)
        assert rep.tokens_per_s == pytest.approx(
            8 / (rep.total_ms / 1e3))

    def test_single_token_output_has_no_decode(self, accel):
        rep = accel.generation_report(BERT_VARIANT, prompt_len=16,
                                      output_len=1)
        assert rep.decode_step_cycles == []
        assert rep.decode_ms == 0.0
        assert rep.tpot_ms == 0.0
        assert rep.total_ms == rep.ttft_ms

    def test_decode_steps_monotone_in_cache_depth(self, accel):
        rep = accel.generation_report(BERT_VARIANT, prompt_len=8,
                                      output_len=32)
        steps = rep.decode_step_cycles
        assert all(b >= a for a, b in zip(steps, steps[1:]))

    def test_capacity_validated(self, accel):
        max_sl = accel.synth.max_seq_len
        with pytest.raises(ResynthesisRequiredError):
            accel.generation_report(BERT_VARIANT, prompt_len=max_sl,
                                    output_len=1)
        with pytest.raises(ValueError):
            accel.generation_report(BERT_VARIANT, prompt_len=0,
                                    output_len=4)

    def test_as_dict_round_trips(self, accel):
        import json

        rep = accel.generation_report(get_model("model2-lhc-trigger"),
                                      prompt_len=8, output_len=8)
        blob = json.loads(json.dumps(rep.as_dict()))
        assert blob["prompt_tokens"] == 8
        assert blob["tokens_per_s"] > 0
