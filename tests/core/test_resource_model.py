"""Unit tests for the whole-accelerator resource model."""

import pytest

from repro.core import accelerator_resources, device_utilization, max_parallel_heads
from repro.fpga import ALVEO_U55C, OverUtilizationError, ZCU102
from repro.isa import SynthParams


class TestPublishedNumbers:
    def test_dsp_count_exact(self):
        """Table I: 3,612 DSPs."""
        assert accelerator_resources(SynthParams()).dsps == 3612

    def test_lut_within_one_percent_of_paper(self):
        est = accelerator_resources(SynthParams())
        assert abs(est.luts - 993107) / 993107 < 0.01

    def test_ff_within_one_percent_of_paper(self):
        est = accelerator_resources(SynthParams())
        assert abs(est.ffs - 704115) / 704115 < 0.01

    def test_utilization_percentages(self):
        util = device_utilization(SynthParams(), ALVEO_U55C)
        assert round(util.percent["dsp"]) == 40
        assert round(util.percent["lut"]) == 76
        assert round(util.percent["ff"]) == 27

    def test_breakdown_has_all_engines(self):
        est = accelerator_resources(SynthParams())
        for name in ("qkv_ce", "qk_ce", "sv_ce", "ffn1_ce", "ffn2_ce",
                     "ffn3_ce"):
            assert name in est.breakdown


class TestDeviceFit:
    def test_fits_u55c(self):
        device_utilization(SynthParams(), ALVEO_U55C, enforce=True)

    def test_does_not_fit_zcu102(self):
        """The full 8-head design cannot fit the embedded part."""
        with pytest.raises(OverUtilizationError):
            device_utilization(SynthParams(), ZCU102, enforce=True)

    def test_enforce_false_reports_anyway(self):
        util = device_utilization(SynthParams(), ZCU102, enforce=False)
        assert util.percent["lut"] > 100


class TestMaxHeads:
    def test_u55c_supports_exactly_eight(self):
        """Section V: 'the optimal number of parallel attention heads
        was determined to be 8 on the Alveo U55C'."""
        assert max_parallel_heads(SynthParams(), ALVEO_U55C) == 8

    def test_binding_resource_is_luts(self):
        """At 8 heads LUTs are near 76%; doubling heads blows LUTs
        before DSPs reach 9024."""
        import dataclasses

        synth16 = dataclasses.replace(SynthParams(), max_heads=16)
        util = device_utilization(synth16, ALVEO_U55C, enforce=False)
        assert util.percent["lut"] > 100
        assert util.percent["dsp"] < 100

    def test_small_device_allows_fewer_heads(self):
        import dataclasses

        small = dataclasses.replace(SynthParams(), ts_mha=16, ts_ffn=32,
                                    max_d_model=128, max_heads=2,
                                    max_seq_len=32, seq_chunk=32)
        heads = max_parallel_heads(small, ZCU102, limit_pct=100.0)
        assert 1 <= heads < 8
