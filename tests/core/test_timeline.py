"""Unit + cross-validation tests for the event-driven timeline."""

import pytest

from repro.core import DatapathFormats, Timeline, TimelineEvent, TimelineSimulator
from repro.core.attention_module import AttentionModule
from repro.core.ffn_module import FFNModule
from repro.core.latency import LatencyModel, LatencyOptions
from repro.isa import SynthParams
from repro.nn import BERT_VARIANT


def make_sim(double_buffered=False, synth=None):
    synth = synth or SynthParams()
    fmts = DatapathFormats.fix8()
    att, ffn = AttentionModule(synth, fmts), FFNModule(synth, fmts)
    opts = LatencyOptions(double_buffered=double_buffered)
    return (TimelineSimulator(att, ffn, opts),
            LatencyModel(synth, att, ffn, opts))


@pytest.fixture(scope="module")
def bert2():
    return BERT_VARIANT.with_(num_layers=2)


class TestTimelineStructure:
    def test_events_cover_all_engines(self, bert2):
        sim, _ = make_sim()
        tl = sim.simulate(bert2)
        resources = {e.resource for e in tl.events}
        assert {"axi", "qkv_ce", "ffn1_ce", "ffn2_ce", "ffn3_ce",
                "ln"} <= resources
        assert any(r.startswith("softmax[") for r in resources)

    def test_no_resource_overlap(self, bert2):
        """Two events on the same resource never overlap in time."""
        sim, _ = make_sim()
        tl = sim.simulate(bert2)
        by_res = {}
        for e in tl.events:
            by_res.setdefault(e.resource, []).append(e)
        for events in by_res.values():
            events.sort(key=lambda e: e.start)
            for a, b in zip(events, events[1:]):
                assert a.end <= b.start, (a, b)

    def test_dataflow_ordering(self, bert2):
        """FFN2 of a layer never starts before that layer's LN1 ends."""
        sim, _ = make_sim()
        tl = sim.simulate(bert2)
        for layer in (0, 1):
            ln1 = [e for e in tl.events
                   if e.layer == layer and e.name.endswith("ln1")]
            ffn2 = [e for e in tl.events
                    if e.layer == layer and ".ffn2." in e.name]
            assert ln1 and ffn2
            assert min(f.start for f in ffn2) >= ln1[0].end

    def test_layers_serialize(self, bert2):
        sim, _ = make_sim()
        tl = sim.simulate(bert2)
        l0_end = max(e.end for e in tl.events
                     if e.layer == 0 and e.name.endswith("ln2"))
        l1_starts = [e.start for e in tl.events
                     if e.layer == 1 and e.resource != "axi"]
        assert min(l1_starts) >= l0_end


class TestCrossValidation:
    """The headline: event-driven total ≈ analytic total."""

    @pytest.mark.parametrize("double_buffered", [False, True])
    def test_agrees_with_analytic_model(self, bert2, double_buffered):
        sim, analytic = make_sim(double_buffered)
        tl_total = sim.simulate(bert2).total_cycles
        an_total = analytic.evaluate(bert2, 200.0).total_cycles
        assert tl_total == pytest.approx(an_total, rel=0.02)

    def test_double_buffering_helps_in_timeline_too(self, bert2):
        serial, _ = make_sim(False)
        overlap, _ = make_sim(True)
        assert (overlap.simulate(bert2).total_cycles
                < serial.simulate(bert2).total_cycles)


class TestReporting:
    def test_occupancy_fractions_valid(self, bert2):
        sim, _ = make_sim()
        occ = sim.simulate(bert2).occupancy()
        assert all(0.0 <= v <= 1.0 for v in occ.values())
        # FFN2 is the busiest engine — the paper's premise.
        engines = {k: v for k, v in occ.items() if k.endswith("_ce")}
        assert max(engines, key=engines.get) == "ffn2_ce"

    def test_gantt_renders(self, bert2):
        sim, _ = make_sim()
        chart = sim.simulate(bert2).gantt(width=50)
        assert "ffn2_ce" in chart and "#" in chart

    def test_empty_timeline(self):
        assert Timeline().total_cycles == 0
        assert Timeline().gantt() == "(empty timeline)"

    def test_event_duration(self):
        e = TimelineEvent("x", "r", 10, 25, 0)
        assert e.duration == 15
