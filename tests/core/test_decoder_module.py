"""Unit tests for the decoder acceleration extension."""

import numpy as np
import pytest

from repro.core import DatapathFormats, DecoderModule, QuantizedDecoder
from repro.fixedpoint import FxTensor
from repro.isa import SynthParams
from repro.nn import Decoder

SYNTH = SynthParams(ts_mha=16, ts_ffn=32, max_heads=2, max_layers=2,
                    max_d_model=64, max_seq_len=32, seq_chunk=16)
D, H, TGT, MEM = 64, 2, 12, 16


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(31)
    golden = Decoder.initialize(rng, num_layers=2, d_model=D, num_heads=H)
    fmts = DatapathFormats.fix16()
    module = DecoderModule(SYNTH, fmts)
    weights = QuantizedDecoder.from_decoder(golden, fmts)
    gen = np.random.default_rng(32)
    x = FxTensor.from_float(gen.normal(0, 0.5, (TGT, D)), fmts.activation)
    mem = FxTensor.from_float(gen.normal(0, 0.5, (MEM, D)), fmts.activation)
    return module, weights, golden, x, mem


class TestFunctional:
    def test_output_shape(self, setup):
        module, weights, _, x, mem = setup
        out = module.forward(x, mem, weights)
        assert out.raw.shape == (TGT, D)

    def test_tracks_golden_decoder(self, setup):
        """fix16 decoder datapath vs the float golden decoder."""
        module, weights, golden, x, mem = setup
        out = module.forward(x, mem, weights).to_float()
        ref = golden(x.to_float(), mem.to_float())
        rms = np.sqrt(np.mean((out - ref) ** 2))
        assert rms < 0.05

    def test_causality_in_fixed_point(self, setup):
        """The integer mask unit enforces causality exactly."""
        module, weights, _, x, mem = setup
        y1 = module.forward_layer(x, mem, weights.layers[0])
        raw2 = x.raw.copy()
        raw2[8:] = np.clip(raw2[8:] + 7, x.fmt.int_min, x.fmt.int_max)
        x2 = FxTensor(raw2, x.fmt)
        y2 = module.forward_layer(x2, mem, weights.layers[0])
        assert np.array_equal(y1.raw[:8], y2.raw[:8])

    def test_memory_influences_output(self, setup):
        module, weights, _, x, mem = setup
        mem2 = FxTensor(np.clip(mem.raw + 5, mem.fmt.int_min,
                                mem.fmt.int_max), mem.fmt)
        y1 = module.forward(x, mem, weights)
        y2 = module.forward(x, mem2, weights)
        assert not np.array_equal(y1.raw, y2.raw)

    def test_width_mismatch_rejected(self, setup):
        module, weights, _, x, _ = setup
        bad_mem = FxTensor(np.zeros((MEM, 32), dtype=np.int64), x.fmt)
        with pytest.raises(ValueError):
            module.forward_layer(x, bad_mem, weights.layers[0])


class TestCycles:
    def test_decoder_layer_costs_more_than_encoder(self):
        from repro.core.attention_module import AttentionModule
        from repro.core.ffn_module import FFNModule

        synth = SynthParams()
        fmts = DatapathFormats.fix8()
        dec = DecoderModule(synth, fmts)
        enc_att = AttentionModule(synth, fmts).compute_cycles(64, 768, 8)
        enc_ffn = FFNModule(synth, fmts).compute_cycles(64, 768)
        enc_total = enc_att["total"] + enc_ffn["total"]
        dec_total = dec.compute_cycles(64, 64, 768, 8)["total"]
        assert dec_total > enc_total

    def test_cross_attention_scales_with_memory_length(self):
        dec = DecoderModule(SynthParams(), DatapathFormats.fix8())
        short = dec.compute_cycles(64, 32, 768, 8)
        long = dec.compute_cycles(64, 128, 768, 8)
        assert long["cross_kv"] > short["cross_kv"]
        assert long["cross_qk"] > short["cross_qk"]
        assert long["self_attention"] == short["self_attention"]

    def test_breakdown_sums(self):
        dec = DecoderModule(SynthParams(), DatapathFormats.fix8())
        c = dec.compute_cycles(64, 64, 768, 8)
        parts = [v for k, v in c.items() if k != "total"]
        assert c["total"] == sum(parts)


class TestResources:
    def test_incremental_resources_are_small(self):
        """Decoder support reuses the encoder engines: the increment is
        one LN unit + mask comparators, well under 1% of the design."""
        dec = DecoderModule(SynthParams(), DatapathFormats.fix8())
        extra = dec.resources()
        assert extra.dsps <= 8
        assert extra.luts < 10_000
