"""KV-cache oracle: incremental fixed-point decode is bit-identical to
the full-sequence DecoderModule at every step."""

import numpy as np
import pytest

from repro.core import DatapathFormats, DecoderModule, QuantizedDecoder
from repro.core.kv_cache import FxDecoderKVCache
from repro.fixedpoint import FxTensor
from repro.isa import ResynthesisRequiredError, SynthParams
from repro.nn import Decoder, get_model

#: The oracle sweep: three model-zoo shapes (tiny physics model, a
#: pruned single-layer BERT slice, a two-layer base block) under both
#: datapath formats.  Step counts stay small — each step re-runs the
#: full-sequence pass as the reference, which is quadratic by design.
ZOO_CONFIGS = ["model2-lhc-trigger", "model1-peng-isqed21",
               "model3-efa-trans"]
FORMATS = {"fix8": DatapathFormats.fix8, "fix16": DatapathFormats.fix16}
STEPS = 5
MEM_LEN = 6


def _stack(model_name, fmt_name):
    cfg = get_model(model_name)
    fmts = FORMATS[fmt_name]()
    synth = SynthParams()  # published maxima cover every zoo shape
    rng = np.random.default_rng(hash((model_name, fmt_name)) % 2**32)
    golden = Decoder.initialize(rng, num_layers=cfg.num_layers,
                                d_model=cfg.d_model,
                                num_heads=cfg.num_heads,
                                activation=cfg.activation)
    module = DecoderModule(synth, fmts)
    weights = QuantizedDecoder.from_decoder(golden, fmts)
    x = FxTensor.from_float(rng.normal(0, 0.5, (STEPS, cfg.d_model)),
                            fmts.activation)
    memory = FxTensor.from_float(rng.normal(0, 0.5, (MEM_LEN, cfg.d_model)),
                                 fmts.activation)
    return module, weights, x, memory


class TestBitIdentityOracle:
    @pytest.mark.parametrize("fmt_name", sorted(FORMATS))
    @pytest.mark.parametrize("model_name", ZOO_CONFIGS)
    def test_incremental_equals_full_at_every_step(self, model_name,
                                                   fmt_name):
        module, weights, x, memory = _stack(model_name, fmt_name)
        cache = FxDecoderKVCache.initialize(module, weights, memory)
        for t in range(STEPS):
            row = cache.step(x[t:t + 1])
            full = module.forward(x[:t + 1], memory, weights)
            assert np.array_equal(row.raw, full.raw[t:t + 1]), (
                f"{model_name}/{fmt_name}: step {t} diverged from the "
                f"full-sequence decoder")
            assert row.fmt == full.fmt

    @pytest.mark.parametrize("fmt_name", sorted(FORMATS))
    def test_prefill_equals_full_forward(self, fmt_name):
        module, weights, x, memory = _stack("model2-lhc-trigger", fmt_name)
        cache = FxDecoderKVCache.initialize(module, weights, memory)
        out = cache.prefill(x)
        full = module.forward(x, memory, weights)
        assert np.array_equal(out.raw, full.raw)
        assert cache.seq_len == STEPS


class TestCacheMechanics:
    def test_capacity_enforced_at_max_seq_len(self):
        synth = SynthParams(ts_mha=16, ts_ffn=32, max_heads=2,
                            max_layers=1, max_d_model=64, max_seq_len=4,
                            seq_chunk=4)
        fmts = DatapathFormats.fix8()
        rng = np.random.default_rng(0)
        golden = Decoder.initialize(rng, 1, 64, 2)
        module = DecoderModule(synth, fmts)
        weights = QuantizedDecoder.from_decoder(golden, fmts)
        x = FxTensor.from_float(rng.normal(0, 0.5, (5, 64)),
                                fmts.activation)
        memory = FxTensor.from_float(rng.normal(0, 0.5, (3, 64)),
                                     fmts.activation)
        cache = FxDecoderKVCache.initialize(module, weights, memory)
        for t in range(4):
            cache.step(x[t:t + 1])
        with pytest.raises(ResynthesisRequiredError):
            cache.step(x[4:5])

    def test_single_row_enforced(self):
        module, weights, x, memory = _stack("model2-lhc-trigger", "fix8")
        cache = FxDecoderKVCache.initialize(module, weights, memory)
        with pytest.raises(ValueError):
            cache.step(x)  # multi-row input is a prefill, not a step

    def test_cache_bytes_grow_with_steps(self):
        module, weights, x, memory = _stack("model2-lhc-trigger", "fix8")
        cache = FxDecoderKVCache.initialize(module, weights, memory)
        assert cache.cache_bytes() == 0
        cache.step(x[0:1])
        one = cache.cache_bytes()
        cache.step(x[1:2])
        assert cache.cache_bytes() == 2 * one > 0

    def test_causality_via_cache(self):
        """A later step cannot change an earlier step's output — the
        cache formulation makes causality structural."""
        module, weights, x, memory = _stack("model2-lhc-trigger", "fix8")
        c1 = FxDecoderKVCache.initialize(module, weights, memory)
        first = c1.step(x[0:1])
        c2 = FxDecoderKVCache.initialize(module, weights, memory)
        first_again = c2.step(x[0:1])
        perturbed = FxTensor(
            np.clip(x.raw[1:2] + 9, x.fmt.int_min, x.fmt.int_max), x.fmt)
        c1.step(x[1:2])
        c2.step(perturbed)
        assert np.array_equal(first.raw, first_again.raw)
