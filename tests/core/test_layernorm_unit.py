"""Unit tests for the fixed-point layer-norm unit."""

import numpy as np
import pytest

from repro.core import DatapathFormats, LayerNormUnit
from repro.fixedpoint import FxTensor

FMT8 = DatapathFormats.fix8()
FMT16 = DatapathFormats.fix16()


def act(arr, fmts=FMT8):
    return FxTensor.from_float(np.asarray(arr, dtype=float), fmts.activation)


class TestFunctional:
    def test_matches_reference_fix16(self):
        unit = LayerNormUnit(formats=FMT16)
        rng = np.random.default_rng(0)
        x = FxTensor.from_float(rng.normal(0, 1, (8, 32)), FMT16.activation)
        g, b = np.ones(32), np.zeros(32)
        out = unit(x, None, g, b).to_float()
        ref = unit.reference(x, None, g, b)
        assert np.max(np.abs(out - ref)) < 0.02

    def test_output_rows_normalized(self):
        unit = LayerNormUnit()
        rng = np.random.default_rng(1)
        x = act(rng.normal(0, 1.5, (6, 32)))
        out = unit(x, None, np.ones(32), np.zeros(32)).to_float()
        assert np.all(np.abs(out.mean(axis=1)) < 0.1)
        assert np.all(np.abs(out.std(axis=1) - 1.0) < 0.15)

    def test_residual_added_before_normalization(self):
        unit = LayerNormUnit()
        rng = np.random.default_rng(2)
        x = act(rng.normal(size=(4, 16)))
        r = act(rng.normal(size=(4, 16)))
        with_res = unit(x, r, np.ones(16), np.zeros(16)).to_float()
        manual = unit.reference(x, r, np.ones(16), np.zeros(16))
        assert np.max(np.abs(with_res - manual)) < 0.15

    def test_gamma_beta_quantized_but_applied(self):
        unit = LayerNormUnit()
        x = act(np.random.default_rng(3).normal(size=(4, 16)))
        g = np.full(16, 2.0)
        b = np.full(16, -1.0)
        out = unit(x, None, g, b).to_float()
        assert np.all(np.abs(out.mean(axis=1) + 1.0) < 0.15)

    def test_residual_shape_mismatch_rejected(self):
        unit = LayerNormUnit()
        x = act(np.zeros((4, 16)))
        r = act(np.zeros((4, 8)))
        with pytest.raises(ValueError):
            unit(x, r, np.ones(16), np.zeros(16))

    def test_requires_2d(self):
        unit = LayerNormUnit()
        with pytest.raises(ValueError):
            unit(act(np.zeros(16)), None, np.ones(16), np.zeros(16))


class TestHardwareModel:
    def test_three_pass_cycles(self):
        from repro.hls import schedule_loop

        unit = LayerNormUnit()
        sched = schedule_loop(unit.loop_nest(8, 64))
        assert sched.cycles >= 8 * 3 * 64

    def test_dsp_budget(self):
        assert LayerNormUnit().dsps == 6
