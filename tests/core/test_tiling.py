"""Unit + property tests for the tiling strategies (Figs. 5 & 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    iter_reduction_tiles,
    iter_tiles_2d,
    num_tiles,
    tiled_matmul_ffn,
    tiled_matmul_mha,
)


class TestIterators:
    def test_num_tiles(self):
        assert num_tiles(768, 64) == 12
        assert num_tiles(768, 128) == 6
        assert num_tiles(65, 64) == 2  # ragged

    def test_num_tiles_validation(self):
        with pytest.raises(ValueError):
            num_tiles(0, 64)

    def test_reduction_tiles_cover_exactly(self):
        tiles = list(iter_reduction_tiles(100, 32))
        assert tiles[0].start == 0
        assert tiles[-1].stop == 100
        covered = sum(t.width for t in tiles)
        assert covered == 100

    def test_2d_order_is_column_major(self):
        """Fig. 6: all reduction tiles of one output tile before moving
        to the next output tile."""
        tiles = list(iter_tiles_2d(4, 6, 2, 3))
        order = [(t.col, t.row) for t in tiles]
        assert order == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_2d_ragged_edges(self):
        tiles = list(iter_tiles_2d(5, 7, 2, 3))
        assert tiles[-1].shape == (1, 1)


class TestFig5WorkedExample:
    """The 2x3 by 3x6 example drawn in Fig. 5."""

    def setup_method(self):
        rng = np.random.default_rng(5)
        self.x = rng.integers(-4, 5, size=(2, 3)).astype(float)
        self.w = rng.integers(-4, 5, size=(3, 6)).astype(float)

    def test_reduction_tiling_lossless(self):
        # Tile the reduction axis with width 1 (the figure's extreme).
        out = tiled_matmul_mha(self.x, self.w, ts_mha=1)
        assert np.allclose(out, self.x @ self.w)

    def test_partial_products_accumulate(self):
        """First-tile partial product matches the figure's annotation:
        X00·W00 + 0 (only reduction index 0 contributes)."""
        partial = self.x[:, :1] @ self.w[:1, :]
        rest = self.x[:, 1:] @ self.w[1:, :]
        assert np.allclose(partial + rest, self.x @ self.w)


class TestFig6WorkedExample:
    """The 2x4 by 4x6 example drawn in Fig. 6 (2x2-ish tiles)."""

    def setup_method(self):
        rng = np.random.default_rng(6)
        self.x = rng.integers(-4, 5, size=(2, 4)).astype(float)
        self.w = rng.integers(-4, 5, size=(4, 6)).astype(float)

    def test_2d_tiling_lossless(self):
        out = tiled_matmul_ffn(self.x, self.w, ts_ffn=2, ts_out=3)
        assert np.allclose(out, self.x @ self.w)

    def test_column_then_row_accumulation(self):
        """'Output Column = sum over column tiles' from the figure."""
        col0 = (self.x[:, :2] @ self.w[:2, :3]
                + self.x[:, 2:] @ self.w[2:, :3])
        assert np.allclose(col0, (self.x @ self.w)[:, :3])


class TestProperties:
    @settings(max_examples=40)
    @given(st.integers(1, 32), st.integers(1, 48), st.integers(1, 24),
           st.integers(1, 48))
    def test_mha_tiling_equals_untiled(self, sl, d, dk, ts):
        rng = np.random.default_rng(sl * 1000 + d)
        x = rng.normal(size=(sl, d))
        w = rng.normal(size=(d, dk))
        assert np.allclose(tiled_matmul_mha(x, w, ts), x @ w)

    @settings(max_examples=40)
    @given(st.integers(1, 16), st.integers(1, 40), st.integers(1, 40),
           st.integers(1, 16), st.integers(1, 16))
    def test_ffn_tiling_equals_untiled(self, sl, d_in, d_out, tr, tc):
        rng = np.random.default_rng(d_in * 100 + d_out)
        x = rng.normal(size=(sl, d_in))
        w = rng.normal(size=(d_in, d_out))
        assert np.allclose(tiled_matmul_ffn(x, w, tr, tc), x @ w)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            tiled_matmul_mha(np.zeros((2, 3)), np.zeros((4, 5)), 2)
        with pytest.raises(ValueError):
            tiled_matmul_ffn(np.zeros((2, 3)), np.zeros((4, 5)), 2)
