"""Unit tests for the runtime layer (executor + session)."""

import numpy as np
import pytest

from repro import ProTEA, ResynthesisRequiredError
from repro.core.runtime import ProgramExecutor, RuntimeSession, TileNotResidentError
from repro.fixedpoint import FxTensor
from repro.isa import Instruction, Opcode
from repro.nn import build_encoder


class TestProgramExecutor:
    def test_bit_identical_to_module_path(self, small_accel, small_input):
        fx = FxTensor.from_float(small_input, small_accel.formats.activation)
        y_mod = small_accel.run_fx(fx)
        y_isa = ProgramExecutor(small_accel, small_accel.weights).run(fx)
        assert np.array_equal(y_mod.raw, y_isa.raw)

    def test_bit_identical_fix16(self, small_accel_fix16, small_input):
        fx = FxTensor.from_float(small_input,
                                 small_accel_fix16.formats.activation)
        y_mod = small_accel_fix16.run_fx(fx)
        y_isa = ProgramExecutor(
            small_accel_fix16, small_accel_fix16.weights).run(fx)
        assert np.array_equal(y_mod.raw, y_isa.raw)

    def test_ragged_and_padded_dimensions(self, small_synth):
        """d_model smaller than TS_FFN and not a multiple of TS_MHA."""
        from repro.nn import TransformerConfig

        cfg = TransformerConfig("ragged", d_model=48, num_heads=2,
                                num_layers=1, seq_len=8)
        enc = build_encoder(cfg, seed=11)
        accel = ProTEA.synthesize(small_synth, enforce_fit=False)
        accel.program(cfg).load_weights(enc)
        x = FxTensor.from_float(
            np.random.default_rng(2).normal(0, 0.5, (8, 48)),
            accel.formats.activation)
        y_mod = accel.run_fx(x)
        y_isa = ProgramExecutor(accel, accel.weights).run(x)
        assert np.array_equal(y_mod.raw, y_isa.raw)

    def test_unloaded_tile_raises(self, small_accel, small_input):
        """Running an engine on a tile that was never loaded is a
        controller bug the executor must catch."""
        execu = ProgramExecutor(small_accel, small_accel.weights)
        execu._state = None
        fx = FxTensor.from_float(small_input, small_accel.formats.activation)
        # Craft a broken program: RUN_QKV without LOAD_QKV_WEIGHTS.
        from repro.core.runtime import _LayerState

        execu._state = _LayerState(x=fx)
        execu._layer_idx = 0
        with pytest.raises(TileNotResidentError):
            execu._run_qkv(Instruction(Opcode.RUN_QKV, layer=0, tile=0))


class TestRuntimeSession:
    def test_hop_between_models_without_resynthesis(self, default_accel):
        from repro.nn import get_model, table1_tests

        session = RuntimeSession(default_accel)
        latencies = []
        for cfg in list(table1_tests().values())[:3]:
            latencies.append(session.latency_ms(cfg))
        latencies.append(session.latency_ms(get_model("model2-lhc-trigger")))
        assert session.reprogram_count == 4
        assert session.resynthesis_count == 0
        assert len(set(latencies)) == 4  # different workloads, different ms

    def test_history_recorded(self, default_accel):
        from repro.nn import BERT_VARIANT

        session = RuntimeSession(default_accel)
        session.deploy(BERT_VARIANT)
        assert session.history == [BERT_VARIANT]

    def test_oversized_model_still_requires_resynthesis(self, default_accel):
        from repro.nn import BERT_VARIANT

        session = RuntimeSession(default_accel)
        with pytest.raises(ResynthesisRequiredError):
            session.deploy(BERT_VARIANT.with_(num_layers=24))

    def test_failed_deploy_leaves_no_trace(self, default_accel):
        from repro.nn import BERT_VARIANT

        session = RuntimeSession(default_accel, reprogram_latency_ms=5.0)
        with pytest.raises(ResynthesisRequiredError):
            session.deploy(BERT_VARIANT.with_(seq_len=4096))
        assert session.reprogram_count == 0
        assert session.history == []
        assert session.reprogram_time_ms == 0.0


class TestReprogramLatencyHook:
    def test_default_cost_is_zero(self, default_accel):
        from repro.nn import BERT_VARIANT, get_model

        session = RuntimeSession(default_accel)
        session.deploy(BERT_VARIANT)
        session.deploy(get_model("model2-lhc-trigger"))
        assert session.reprogram_time_ms == 0.0
        assert session.switch_count == 2

    def test_switch_cost_charged_on_workload_change(self, default_accel):
        from repro.nn import BERT_VARIANT, get_model

        session = RuntimeSession(default_accel, reprogram_latency_ms=12.5)
        assert session.switch_cost_ms(BERT_VARIANT) == 12.5  # cold start
        session.deploy(BERT_VARIANT)
        # Redeploying the resident workload is free...
        assert session.switch_cost_ms(BERT_VARIANT) == 0.0
        session.deploy(BERT_VARIANT)
        assert session.reprogram_time_ms == 12.5
        assert session.switch_count == 1
        # ...switching to a different one is not.
        other = get_model("model2-lhc-trigger")
        assert session.switch_cost_ms(other) == 12.5
        session.deploy(other)
        assert session.reprogram_time_ms == 25.0
        assert session.switch_count == 2
        assert session.reprogram_count == 3  # every deploy still counted

    def test_switch_detected_by_config_equality(self, default_accel):
        from repro.nn import BERT_VARIANT

        session = RuntimeSession(default_accel, reprogram_latency_ms=1.0)
        session.deploy(BERT_VARIANT)
        # Same name, different runtime parameters → still a switch.
        session.deploy(BERT_VARIANT.with_(num_layers=6))
        assert session.switch_count == 2

    def test_resynthesis_count_stays_zero(self, default_accel):
        from repro.nn import table1_tests

        session = RuntimeSession(default_accel, reprogram_latency_ms=3.0)
        for cfg in table1_tests().values():
            session.deploy(cfg)
        assert session.resynthesis_count == 0
        assert session.reprogram_count == 9
        assert session.reprogram_time_ms == pytest.approx(9 * 3.0)
