"""Unit tests for the attention module (functional, cycles, resources)."""

import numpy as np
import pytest

from repro.core import DatapathFormats
from repro.core.attention_module import AttentionModule
from repro.core.quantized import QuantizedEncoder
from repro.fixedpoint import FxTensor
from repro.isa import SynthParams
from repro.nn import TransformerConfig, build_encoder

CFG = TransformerConfig("am", d_model=64, num_heads=2, num_layers=1, seq_len=16)
SYNTH = SynthParams(ts_mha=16, ts_ffn=32, max_heads=2, max_layers=2,
                    max_d_model=64, max_seq_len=32, seq_chunk=16)


@pytest.fixture(scope="module")
def setup():
    enc = build_encoder(CFG, seed=3)
    fmts = DatapathFormats.fix16()
    module = AttentionModule(SYNTH, fmts)
    q = QuantizedEncoder.from_encoder(enc, fmts)
    rng = np.random.default_rng(0)
    x = FxTensor.from_float(rng.normal(0, 0.5, (16, 64)), fmts.activation)
    return module, q.layers[0], x


class TestFunctional:
    def test_head_trace_shapes(self, setup):
        module, layer, x = setup
        t = module.forward_head(x, layer, head=0)
        assert t.q.raw.shape == (16, 32)
        assert t.scores.raw.shape == (16, 16)
        assert t.sv.raw.shape == (16, 32)

    def test_probs_are_probabilities(self, setup):
        module, layer, x = setup
        t = module.forward_head(x, layer, head=0)
        p = t.probs.to_float()
        assert np.all(p >= 0)
        assert np.all(np.abs(p.sum(axis=1) - 1) < 0.05)

    def test_concat_matches_reference(self, setup):
        """Fixed-point concat output tracks the float reference computed
        from the dequantized weights."""
        module, layer, x = setup
        concat, _ = module.forward(x, layer)
        ref = module.reference_concat(x, layer)
        err = np.abs(concat.to_float() - ref)
        assert err.max() < 0.05  # fix16 datapath

    def test_paper_alg2_scaling_differs(self, setup):
        _, layer, x = setup
        m1 = AttentionModule(SYNTH, DatapathFormats.fix16(),
                             scale_mode="sqrt_dk")
        m2 = AttentionModule(SYNTH, DatapathFormats.fix16(),
                             scale_mode="paper_alg2")
        a = m1.forward_head(x, layer, 0).scores.to_float()
        b = m2.forward_head(x, layer, 0).scores.to_float()
        assert not np.allclose(a, b)


class TestCycles:
    def test_qkv_scales_with_tiles(self):
        module = AttentionModule(SynthParams(), DatapathFormats.fix8())
        c768 = module.compute_cycles(64, 768, 8)
        c384 = module.compute_cycles(64, 384, 8)
        assert c768["qkv"] > c384["qkv"]

    def test_attention_quadratic_in_chunks(self):
        module = AttentionModule(SynthParams(), DatapathFormats.fix8())
        c64 = module.compute_cycles(64, 768, 8)
        c128 = module.compute_cycles(128, 768, 8)
        # QK iterates chunk pairs: 2 chunks → 4x the per-pair cost.
        assert c128["qk"] >= 3.5 * c64["qk"]

    def test_fewer_heads_cost_more_per_head(self):
        """dk doubles when h halves → QKV middle loop lengthens; the
        measured Table I trend (tests 1-3)."""
        module = AttentionModule(SynthParams(), DatapathFormats.fix8())
        h8 = module.compute_cycles(64, 768, 8)
        h2 = module.compute_cycles(64, 768, 2)
        assert h2["total"] > h8["total"]

    def test_byte_accounting(self):
        module = AttentionModule(SynthParams(), DatapathFormats.fix8())
        assert module.weight_bytes_per_tile(768, 8) == 3 * 96 * 64
        assert module.input_bytes_per_tile(64) == 64 * 64


class TestResources:
    def test_published_dsp_budget(self):
        """8 heads x (192 QKV + 96 QK + 64 SV + 2 softmax) = 2832."""
        module = AttentionModule(SynthParams(), DatapathFormats.fix8())
        est = module.resources()
        assert est.dsps == 8 * (192 + 96 + 64 + 2)

    def test_timing_paths_cover_engines(self):
        module = AttentionModule(SynthParams(), DatapathFormats.fix8())
        names = {p.name for p in module.timing_paths()}
        assert {"qkv_ce", "qk_ce", "sv_ce"} <= names
