"""Unit tests for the latency model: composition rules + paper trends."""

import pytest

from repro.core import DatapathFormats
from repro.core.attention_module import AttentionModule
from repro.core.ffn_module import FFNModule
from repro.core.latency import LatencyModel, LatencyOptions
from repro.isa import ResynthesisRequiredError, SynthParams
from repro.memory import AXI4Master
from repro.nn import BERT_VARIANT


def make_model(options=None, synth=None):
    synth = synth or SynthParams()
    fmts = DatapathFormats.fix8()
    return LatencyModel(synth, AttentionModule(synth, fmts),
                        FFNModule(synth, fmts), options)


@pytest.fixture(scope="module")
def model():
    return make_model()


class TestComposition:
    def test_total_at_least_compute(self, model):
        layer = model.layer_cycles(64, 768, 8)
        assert layer.total >= layer.compute_total

    def test_serialized_total_is_compute_plus_loads(self, model):
        layer = model.layer_cycles(64, 768, 8)
        assert layer.total == layer.compute_total + layer.load_total

    def test_double_buffering_strictly_helps(self):
        serial = make_model(LatencyOptions(double_buffered=False))
        overlap = make_model(LatencyOptions(double_buffered=True))
        assert (overlap.layer_cycles(64, 768, 8).total
                < serial.layer_cycles(64, 768, 8).total)

    def test_wider_axi_reduces_load_cycles(self):
        narrow = make_model(LatencyOptions(axi=AXI4Master(data_bits=32)))
        wide = make_model(LatencyOptions(axi=AXI4Master(data_bits=256)))
        assert (wide.layer_cycles(64, 768, 8).load_total
                < narrow.layer_cycles(64, 768, 8).load_total)

    def test_breakdown_keys(self, model):
        layer = model.layer_cycles(64, 768, 8)
        assert set(layer.compute) == {"qkv", "qk", "softmax", "sv",
                                      "ffn1", "ffn2", "ffn3", "ln"}
        assert set(layer.loads) == {"qkv", "ffn1", "ffn2", "ffn3"}


class TestPaperTrends:
    def test_layers_scale_exactly_linearly(self, model):
        r12 = model.evaluate(BERT_VARIANT, 200.0)
        r4 = model.evaluate(BERT_VARIANT.with_(num_layers=4), 200.0)
        assert r12.total_cycles == 3 * r4.total_cycles

    def test_d_model_scales_roughly_linearly(self, model):
        """Tests 6-7: latency(512)/latency(768) ≈ 2/3, not (2/3)²."""
        r768 = model.evaluate(BERT_VARIANT, 200.0)
        r512 = model.evaluate(
            BERT_VARIANT.with_(d_model=512, d_ff=2048), 200.0)
        ratio = r512.latency_ms / r768.latency_ms
        assert 0.55 < ratio < 0.72  # linear ≈ 0.67; quadratic would be 0.44

    def test_head_count_weakly_affects_latency(self, model):
        """Tests 1-3: halving heads costs only a few percent."""
        r8 = model.evaluate(BERT_VARIANT, 200.0)
        r2 = model.evaluate(BERT_VARIANT.with_(num_heads=2), 200.0)
        assert r2.latency_ms > r8.latency_ms
        assert r2.latency_ms < 1.15 * r8.latency_ms

    def test_seq_len_scaling(self, model):
        """Tests 8-9: SL=128 roughly doubles; SL=32 lands above half
        (loads are SL-independent)."""
        r64 = model.evaluate(BERT_VARIANT, 200.0)
        r128 = model.evaluate(BERT_VARIANT.with_(seq_len=128), 200.0)
        r32 = model.evaluate(BERT_VARIANT.with_(seq_len=32), 200.0)
        assert 1.6 < r128.latency_ms / r64.latency_ms < 2.1
        assert 0.5 < r32.latency_ms / r64.latency_ms < 0.75

    def test_ffn_dominates_mha(self, model):
        """The paper's premise: FFNs are "the most time- and
        resource-intensive components"."""
        layer = model.layer_cycles(64, 768, 8)
        ffn = layer.compute["ffn1"] + layer.compute["ffn2"] + layer.compute["ffn3"]
        mha = (layer.compute["qkv"] + layer.compute["qk"]
               + layer.compute["softmax"] + layer.compute["sv"])
        assert ffn > 5 * mha


class TestReporting:
    def test_latency_units(self, model):
        rep = model.evaluate(BERT_VARIANT, 200.0)
        assert rep.latency_ms == pytest.approx(rep.total_cycles / 200e3)
        assert rep.latency_s == pytest.approx(rep.latency_ms / 1e3)

    def test_breakdown_ms_sums_to_total(self, model):
        rep = model.evaluate(BERT_VARIANT, 200.0)
        assert sum(rep.breakdown_ms().values()) == pytest.approx(
            rep.latency_ms, rel=1e-9)

    def test_evaluate_validates_maxima(self, model):
        with pytest.raises(ResynthesisRequiredError):
            model.evaluate(BERT_VARIANT.with_(d_model=1536, d_ff=6144,
                                              num_heads=8), 200.0)
