"""Unit tests for the quantized weight containers."""

import numpy as np

from repro.core import DatapathFormats, QuantizedEncoder
from repro.core.quantized import QuantizedLinear
from repro.nn import Linear, TransformerConfig, build_encoder

CFG = TransformerConfig("q", d_model=32, num_heads=2, num_layers=2, seq_len=8)


class TestQuantizedLinear:
    def test_weight_roundtrip_within_lsb(self, rng):
        lin = Linear.initialize(rng, 16, 8)
        q = QuantizedLinear.from_linear(lin, weight_bits=8)
        err = np.abs(q.weight.to_float() - lin.weight)
        assert err.max() <= q.weight.fmt.scale / 2 + 1e-12

    def test_bias_uses_wider_format(self, rng):
        lin = Linear.initialize(rng, 16, 8)
        q = QuantizedLinear.from_linear(lin, weight_bits=8)
        assert q.bias.fmt.total_bits >= 16

    def test_nbytes(self, rng):
        lin = Linear.initialize(rng, 16, 8)
        q8 = QuantizedLinear.from_linear(lin, 8)
        q16 = QuantizedLinear.from_linear(lin, 16)
        assert q8.nbytes == 16 * 8
        assert q16.nbytes == 16 * 8 * 2


class TestQuantizedEncoder:
    def test_structure_preserved(self):
        enc = build_encoder(CFG, seed=0)
        q = QuantizedEncoder.from_encoder(enc)
        assert q.num_layers == 2
        assert q.layers[0].num_heads == 2
        assert q.layers[0].d_model == 32
        assert q.layers[0].activation == "gelu"

    def test_per_tensor_calibration(self):
        """Each head's format adapts to that tensor's range."""
        enc = build_encoder(CFG, seed=0)
        enc.layers[0].attention.wq[0].weight *= 8.0  # inflate one tensor
        q = QuantizedEncoder.from_encoder(enc)
        big = q.layers[0].wq[0].weight.fmt
        normal = q.layers[0].wq[1].weight.fmt
        assert big.frac_bits < normal.frac_bits

    def test_weight_bytes_accounting(self):
        enc = build_encoder(CFG, seed=0)
        q = QuantizedEncoder.from_encoder(enc)
        d, dff = 32, 128
        per_layer = 3 * d * (d // 2) * 2 + d * d + d * dff + dff * d
        assert q.weight_bytes() == 2 * per_layer

    def test_fix16_doubles_footprint(self):
        enc = build_encoder(CFG, seed=0)
        q8 = QuantizedEncoder.from_encoder(enc, DatapathFormats.fix8())
        q16 = QuantizedEncoder.from_encoder(enc, DatapathFormats.fix16())
        assert q16.weight_bytes() == 2 * q8.weight_bytes()
