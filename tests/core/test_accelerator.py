"""Unit tests for the ProTEA top-level lifecycle."""

import numpy as np
import pytest

from repro import ProTEA, ResynthesisRequiredError, SynthParams
from repro.nn import BERT_VARIANT, TransformerConfig, build_encoder


class TestSynthesis:
    def test_default_closes_at_200mhz(self, default_accel):
        assert default_accel.clock_mhz == pytest.approx(200.0)

    def test_summary_mentions_device_and_tiles(self, default_accel):
        s = default_accel.summary()
        assert "U55C" in s and "TS_MHA=64" in s

    def test_synthesize_checks_fit(self):
        import dataclasses

        huge = dataclasses.replace(SynthParams(), max_heads=24)
        with pytest.raises(Exception):
            ProTEA.synthesize(huge)


class TestProgramming:
    def test_program_required_before_run(self, small_synth):
        accel = ProTEA.synthesize(small_synth, enforce_fit=False)
        with pytest.raises(RuntimeError, match="program"):
            _ = accel.config

    def test_program_validates_maxima(self, default_accel):
        too_long = BERT_VARIANT.with_(seq_len=256)
        with pytest.raises(ResynthesisRequiredError):
            default_accel.program(too_long)

    def test_weights_required_before_run(self, small_synth, small_config):
        accel = ProTEA.synthesize(small_synth, enforce_fit=False)
        accel.program(small_config)
        with pytest.raises(RuntimeError, match="weights"):
            _ = accel.weights

    def test_layer_count_consistency(self, small_synth, small_config):
        accel = ProTEA.synthesize(small_synth, enforce_fit=False)
        accel.program(small_config.with_(num_layers=3))
        shallow = build_encoder(small_config.with_(num_layers=1), seed=0)
        with pytest.raises(ValueError, match="layers"):
            accel.load_weights(shallow)


class TestInference:
    def test_input_shape_validated(self, small_accel, small_config):
        with pytest.raises(ValueError, match="shape"):
            small_accel.run(np.zeros((1, small_config.d_model)))

    def test_run_deterministic(self, small_accel, small_input):
        y1 = small_accel.run(small_input)
        y2 = small_accel.run(small_input)
        assert np.array_equal(y1, y2)

    def test_fix8_tracks_golden(self, small_accel, small_encoder,
                                small_input):
        golden = small_encoder(small_input)
        y = small_accel.run(small_input)
        rms = np.sqrt(np.mean((y - golden) ** 2))
        assert rms < 0.2  # 8-bit datapath over 2 layers

    def test_fix16_tracks_golden_tightly(self, small_accel_fix16,
                                         small_encoder, small_input):
        golden = small_encoder(small_input)
        y = small_accel_fix16.run(small_input)
        rms = np.sqrt(np.mean((y - golden) ** 2))
        assert rms < 0.02

    def test_fewer_programmed_layers_run_fewer_layers(
            self, small_accel, small_encoder, small_config, small_input):
        full = small_accel.run(small_input)
        small_accel.program(small_config.with_(num_layers=1))
        one = small_accel.run(small_input)
        assert not np.allclose(full, one)


class TestMeasurements:
    def test_latency_positive_and_stable(self, default_accel):
        a = default_accel.latency_ms(BERT_VARIANT)
        b = default_accel.latency_ms(BERT_VARIANT)
        assert a == b > 0

    def test_gops_consistent_with_ops(self, default_accel):
        rep = default_accel.latency_report(BERT_VARIANT)
        g = default_accel.throughput_gops(BERT_VARIANT)
        assert g == pytest.approx(
            default_accel.ops(BERT_VARIANT) / rep.latency_s / 1e9)

    def test_bert_latency_same_order_as_paper(self, default_accel):
        """Paper: 279 ms. Simulation must land within 2x either way."""
        ms = default_accel.latency_ms(BERT_VARIANT)
        assert 140 < ms < 560
