"""Unit tests for the LUT softmax unit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import DatapathFormats, SoftmaxUnit
from repro.fixedpoint import FxTensor, QFormat

SCORE = QFormat(8, 4)


def make_scores(arr):
    return FxTensor.from_float(np.asarray(arr, dtype=float), SCORE)


class TestFunctional:
    def test_rows_approximately_sum_to_one(self):
        unit = SoftmaxUnit()
        scores = make_scores(np.random.default_rng(0).normal(0, 2, (8, 16)))
        probs = unit(scores).to_float()
        assert np.all(np.abs(probs.sum(axis=1) - 1.0) < 0.08)

    def test_matches_float_softmax(self):
        unit = SoftmaxUnit()
        scores = make_scores(np.random.default_rng(1).normal(0, 2, (8, 16)))
        assert unit.max_abs_error(scores) < 0.05

    def test_error_floor_set_by_lut_not_output_format(self):
        """With the same exp/recip tables, fix8 and fix16 land at the
        same error floor (the LUT step dominates); a finer exp table
        lowers the floor."""
        from repro.fixedpoint import ExpLUT, ReciprocalLUT

        rng = np.random.default_rng(2)
        vals = rng.normal(0, 2, (8, 16))
        u16 = SoftmaxUnit(formats=DatapathFormats.fix16())
        u16_fine = SoftmaxUnit(
            formats=DatapathFormats.fix16(),
            exp_lut=ExpLUT(entries=8192),
            recip_lut=ReciprocalLUT(lo=0.5, hi=1024.0, entries=1 << 15))
        s16 = FxTensor.from_float(vals, DatapathFormats.fix16().score)
        assert u16_fine.max_abs_error(s16) < u16.max_abs_error(s16) / 10

    def test_argmax_preserved(self):
        unit = SoftmaxUnit()
        scores = make_scores([[0.0, 3.0, 1.0, -2.0]])
        probs = unit(scores).to_float()
        assert probs.argmax() == 1

    def test_extreme_scores_saturate_gracefully(self):
        unit = SoftmaxUnit()
        scores = make_scores([[7.9, -8.0, -8.0, -8.0]])
        probs = unit(scores).to_float()
        assert probs[0, 0] > 0.9

    def test_requires_2d(self):
        unit = SoftmaxUnit()
        with pytest.raises(ValueError):
            unit(make_scores([1.0, 2.0]))

    @settings(max_examples=25)
    @given(hnp.arrays(np.float64, (4, 8), elements=st.floats(-7, 7)))
    def test_probabilities_valid(self, vals):
        unit = SoftmaxUnit()
        probs = unit(make_scores(vals)).to_float()
        assert np.all(probs >= 0.0)
        assert np.all(probs <= 1.0 + 1/32)


class TestHardwareModel:
    def test_loop_nest_scales_with_row_length(self):
        from repro.hls import schedule_loop

        unit = SoftmaxUnit()
        short = schedule_loop(unit.loop_nest(8, 16)).cycles
        long = schedule_loop(unit.loop_nest(8, 64)).cycles
        assert long > short * 3

    def test_dsp_budget(self):
        assert SoftmaxUnit().dsps == 2
