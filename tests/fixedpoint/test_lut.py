"""Unit tests for the LUT function units."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fixedpoint import (
    ErfLUT,
    ExpLUT,
    FunctionLUT,
    ReciprocalLUT,
    RsqrtLUT,
    lut_resource_estimate,
)


class TestFunctionLUT:
    def test_entries_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            FunctionLUT(fn=np.exp, lo=0, hi=1, entries=100)

    def test_interval_must_be_nonempty(self):
        with pytest.raises(ValueError):
            FunctionLUT(fn=np.exp, lo=1.0, hi=1.0)

    def test_exact_at_sample_points(self):
        lut = FunctionLUT(fn=lambda x: x * 2, lo=0, hi=1, entries=16)
        xs = np.linspace(0, 1, 16)
        assert np.allclose(lut(xs), xs * 2)

    def test_clamps_out_of_range(self):
        lut = FunctionLUT(fn=lambda x: x, lo=0.0, hi=1.0, entries=16)
        assert lut(np.array([-5.0]))[0] == 0.0
        assert lut(np.array([5.0]))[0] == 1.0

    def test_interpolation_better_than_nearest(self):
        near = FunctionLUT(fn=np.exp, lo=-4, hi=0, entries=64)
        interp = FunctionLUT(fn=np.exp, lo=-4, hi=0, entries=64,
                             interpolate=True)
        assert interp.max_error() <= near.max_error()

    def test_vectorized_shapes(self):
        lut = ExpLUT()
        x = np.zeros((4, 7))
        assert lut(x).shape == (4, 7)

    @given(st.integers(4, 10))
    def test_error_shrinks_with_entries(self, log_entries):
        small = FunctionLUT(fn=np.exp, lo=-8, hi=0, entries=2 ** log_entries)
        big = FunctionLUT(fn=np.exp, lo=-8, hi=0,
                          entries=2 ** (log_entries + 1))
        assert big.max_error() <= small.max_error() * 1.01


class TestSpecificLUTs:
    def test_exp_lut_accuracy_softmax_grade(self):
        """512-entry exp table must stay under half an 8-bit prob LSB."""
        lut = ExpLUT(entries=512)
        assert lut.max_error() < 1 / 64

    def test_exp_lut_at_zero(self):
        assert ExpLUT()(np.array([0.0]))[0] == pytest.approx(1.0, abs=1e-6)

    def test_reciprocal_requires_positive_lo(self):
        with pytest.raises(ValueError):
            ReciprocalLUT(lo=0.0)

    def test_reciprocal_accuracy(self):
        lut = ReciprocalLUT(lo=1.0, hi=64.0, entries=1024)
        xs = np.linspace(1.0, 64.0, 999)
        assert np.max(np.abs(lut(xs) - 1 / xs)) < 0.01

    def test_rsqrt_requires_positive_lo(self):
        with pytest.raises(ValueError):
            RsqrtLUT(lo=-1.0)

    def test_rsqrt_accuracy_near_one(self):
        lut = RsqrtLUT(lo=0.5, hi=4.0, entries=1024)
        xs = np.linspace(0.5, 4.0, 777)
        assert np.max(np.abs(lut(xs) - 1 / np.sqrt(xs))) < 5e-3

    def test_erf_lut_symmetry(self):
        lut = ErfLUT(entries=512)
        xs = np.linspace(-3, 3, 101)
        assert np.allclose(lut(xs), -lut(-xs), atol=2e-2)


class TestResourceEstimate:
    def test_small_table_uses_lutram_not_bram(self):
        lut = FunctionLUT(fn=np.exp, lo=-1, hi=0, entries=64)
        res = lut_resource_estimate(lut, value_bits=16)
        assert res["brams"] == 0
        assert res["luts"] > 0

    def test_huge_table_spills_to_bram(self):
        lut = FunctionLUT(fn=np.exp, lo=-1, hi=0, entries=4096)
        res = lut_resource_estimate(lut, value_bits=18)
        assert res["brams"] >= 1

    def test_interpolation_costs_a_dsp(self):
        base = FunctionLUT(fn=np.exp, lo=-1, hi=0, entries=64)
        interp = FunctionLUT(fn=np.exp, lo=-1, hi=0, entries=64,
                             interpolate=True)
        assert lut_resource_estimate(base)["dsps"] == 0
        assert lut_resource_estimate(interp)["dsps"] == 1
