"""Unit + property tests for quantize/dequantize/requantize."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.fixedpoint import (
    QFormat,
    Rounding,
    calibrate_format,
    dequantize,
    quantization_error,
    quantize,
    requantize,
    saturate,
)

Q84 = QFormat(8, 4)


class TestQuantizeBasics:
    def test_zero_maps_to_zero(self):
        assert quantize(np.array(0.0), Q84) == 0

    def test_one_lsb(self):
        assert quantize(np.array(Q84.scale), Q84) == 1

    def test_saturation_high(self):
        assert quantize(np.array(1e9), Q84) == Q84.int_max

    def test_saturation_low(self):
        assert quantize(np.array(-1e9), Q84) == Q84.int_min

    def test_round_half_even(self):
        # 0.5 LSB above an even code rounds down (nearest even).
        val = (2 + 0.5) * Q84.scale
        assert quantize(np.array(val), Q84) == 2
        val = (3 + 0.5) * Q84.scale
        assert quantize(np.array(val), Q84) == 4

    def test_truncate_mode_floors(self):
        val = 2.9 * Q84.scale
        assert quantize(np.array(val), Q84, Rounding.TRUNCATE) == 2
        assert quantize(np.array(-val), Q84, Rounding.TRUNCATE) == -3

    def test_vectorized_shape_preserved(self):
        x = np.zeros((3, 5, 7))
        assert quantize(x, Q84).shape == (3, 5, 7)


class TestRoundTrip:
    @given(hnp.arrays(np.float64, st.integers(1, 64),
                      elements=st.floats(-7.9, 7.9)))
    def test_roundtrip_within_half_lsb(self, x):
        recon = dequantize(quantize(x, Q84), Q84)
        assert np.all(np.abs(recon - x) <= Q84.scale / 2 + 1e-12)

    @given(hnp.arrays(np.float64, st.integers(1, 64),
                      elements=st.floats(-1e3, 1e3)))
    def test_roundtrip_idempotent(self, x):
        """Quantizing an already-quantized tensor is the identity."""
        once = quantize(x, Q84)
        twice = quantize(dequantize(once, Q84), Q84)
        assert np.array_equal(once, twice)


class TestRequantize:
    def test_identity_when_same_format(self):
        raw = np.array([1, -5, 100])
        assert np.array_equal(requantize(raw, Q84, Q84), raw)

    def test_upshift_exact(self):
        src, dst = QFormat(8, 2), QFormat(16, 6)
        raw = np.array([3, -7])
        out = requantize(raw, src, dst)
        assert np.array_equal(out, raw * 16)

    def test_downshift_rounds_half_even(self):
        src, dst = QFormat(16, 8), QFormat(8, 4)
        # 40 / 16 = 2.5 → ties to 2 (even); 56 / 16 = 3.5 → 4.
        out = requantize(np.array([40, 56]), src, dst)
        assert out.tolist() == [2, 4]

    def test_downshift_saturates(self):
        src, dst = QFormat(16, 8), QFormat(8, 8)
        out = requantize(np.array([32000]), src, dst)
        assert out == dst.int_max

    def test_truncate_shifts_toward_neg_inf(self):
        src, dst = QFormat(16, 8), QFormat(8, 4)
        out = requantize(np.array([-41]), src, dst, Rounding.TRUNCATE)
        assert out == -3  # floor(-41/16) = -3 (toward -inf)

    @given(hnp.arrays(np.int64, st.integers(1, 32),
                      elements=st.integers(-2**14, 2**14 - 1)),
           st.integers(0, 8))
    def test_requantize_value_preserving(self, raw, shift):
        """Down-then-up requantization deviates by at most one source LSB
        step and never exceeds the value range."""
        src = QFormat(16, 8)
        dst = QFormat(16, 8 - shift)
        down = requantize(raw, src, dst)
        back = requantize(down, dst, src)
        err = np.abs(back - np.clip(raw, dst.int_min << shift,
                                    dst.int_max << shift))
        assert np.all(err <= (1 << shift) // 2 + 1)


class TestSaturateAndCalibrate:
    def test_saturate_clamps_both_sides(self):
        out = saturate(np.array([-1000, 0, 1000]), Q84)
        assert out.tolist() == [Q84.int_min, 0, Q84.int_max]

    def test_calibrate_covers_data(self):
        data = np.array([-3.7, 0.1, 2.9])
        fmt = calibrate_format(data, total_bits=8)
        assert fmt.representable(-3.7)
        assert fmt.representable(2.9)

    def test_calibrate_empty_input(self):
        fmt = calibrate_format(np.array([]), total_bits=8)
        assert fmt.total_bits == 8

    @given(hnp.arrays(np.float64, st.integers(1, 100),
                      elements=st.floats(-1e4, 1e4)))
    def test_calibrated_quantization_error_bounded(self, data):
        fmt = calibrate_format(data, total_bits=8)
        max_err, rms = quantization_error(data, fmt)
        assert max_err <= fmt.scale / 2 + 1e-9
        assert rms <= max_err + 1e-12


def test_quantization_error_empty():
    assert quantization_error(np.array([]), Q84) == (0.0, 0.0)
