"""Unit + property tests for the FxTensor integer datapath."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.fixedpoint import (
    FxTensor,
    QFormat,
    fx_add,
    fx_matmul,
    fx_mul,
    fx_scale_shift,
)

Q84 = QFormat(8, 4)
Q85 = QFormat(8, 5)


def fx_arrays(shape, fmt=Q84):
    return hnp.arrays(
        np.int64, shape,
        elements=st.integers(fmt.int_min, fmt.int_max),
    ).map(lambda raw: FxTensor(raw, fmt))


class TestFxTensor:
    def test_from_float_roundtrip(self):
        x = np.array([[0.5, -1.25], [3.0, 0.0]])
        t = FxTensor.from_float(x, Q84)
        assert np.allclose(t.to_float(), x)

    def test_out_of_range_raw_rejected(self):
        with pytest.raises(ValueError):
            FxTensor(np.array([300]), Q84)

    def test_astype_requantizes(self):
        t = FxTensor(np.array([16]), QFormat(16, 8))
        narrow = t.astype(Q84)
        assert narrow.raw[0] == 1
        assert narrow.to_float()[0] == pytest.approx(16 / 256)

    def test_getitem_preserves_format(self):
        t = FxTensor(np.arange(10), QFormat(16, 4))
        assert t[2:5].fmt == t.fmt
        assert t[2:5].raw.tolist() == [2, 3, 4]


class TestMatmul:
    def test_exactness_small(self):
        a = FxTensor(np.array([[1, 2], [3, 4]]), Q84)
        b = FxTensor(np.array([[5, 6], [7, 8]]), Q84)
        out = fx_matmul(a, b)
        assert np.array_equal(out.raw, np.array([[19, 22], [43, 50]]))
        assert out.fmt.frac_bits == 8

    def test_shape_mismatch_rejected(self):
        a = FxTensor(np.zeros((2, 3), dtype=np.int64), Q84)
        b = FxTensor(np.zeros((4, 2), dtype=np.int64), Q84)
        with pytest.raises(ValueError):
            fx_matmul(a, b)

    def test_mixed_sign_rejected(self):
        a = FxTensor(np.zeros((2, 2), dtype=np.int64), Q84)
        b = FxTensor(np.zeros((2, 2), dtype=np.int64),
                     QFormat(8, 4, signed=False))
        with pytest.raises(ValueError):
            fx_matmul(a, b)

    @settings(max_examples=50)
    @given(fx_arrays((4, 6)), fx_arrays((6, 3), Q85))
    def test_matches_float_matmul(self, a, b):
        """Exact integer matmul == float matmul of dequantized values."""
        out = fx_matmul(a, b)
        ref = a.to_float() @ b.to_float()
        assert np.allclose(out.to_float(), ref, atol=1e-9)

    @settings(max_examples=25)
    @given(fx_arrays((3, 8)), fx_arrays((8, 2)))
    def test_requantized_output(self, a, b):
        out_fmt = QFormat(16, 6)
        out = fx_matmul(a, b, acc_fmt=out_fmt)
        ref = a.to_float() @ b.to_float()
        assert np.all(np.abs(out.to_float() - np.clip(
            ref, out_fmt.min_value, out_fmt.max_value)) <= out_fmt.scale)


class TestAddMul:
    def test_add_aligns_fractions(self):
        a = FxTensor(np.array([4]), Q84)   # 0.25
        b = FxTensor(np.array([8]), Q85)   # 0.25
        out = fx_add(a, b)
        assert out.to_float()[0] == pytest.approx(0.5)

    def test_add_saturates_into_target(self):
        a = FxTensor(np.array([127]), Q84)
        b = FxTensor(np.array([127]), Q84)
        out = fx_add(a, b, out_fmt=Q84)
        assert out.raw[0] == Q84.int_max

    @settings(max_examples=50)
    @given(fx_arrays((5,)), fx_arrays((5,)))
    def test_add_commutative(self, a, b):
        assert np.array_equal(fx_add(a, b).raw, fx_add(b, a).raw)

    def test_mul_exact_format(self):
        a = FxTensor(np.array([3]), Q84)
        b = FxTensor(np.array([5]), Q85)
        out = fx_mul(a, b)
        assert out.raw[0] == 15
        assert out.fmt.frac_bits == 9

    @settings(max_examples=50)
    @given(fx_arrays((4,)), fx_arrays((4,), Q85))
    def test_mul_matches_float(self, a, b):
        out = fx_mul(a, b)
        assert np.allclose(out.to_float(), a.to_float() * b.to_float(),
                           atol=1e-9)


class TestScaleShift:
    def test_multiplier_and_shift(self):
        x = FxTensor(np.array([100]), QFormat(16, 8))
        out = fx_scale_shift(x, multiplier=3, shift=1)
        assert out.raw[0] == 150

    def test_negative_shift_rejected(self):
        x = FxTensor(np.array([1]), Q84)
        with pytest.raises(ValueError):
            fx_scale_shift(x, 1, -1)

    def test_models_constant_multiply(self):
        """c = 0.7109375 = 182/256 folded into multiplier/shift."""
        x = FxTensor.from_float(np.array([2.0]), QFormat(16, 8))
        out = fx_scale_shift(x, multiplier=182, shift=8,
                             out_fmt=QFormat(32, 8))
        assert out.to_float()[0] == pytest.approx(2.0 * 182 / 256, abs=1e-2)
