"""Unit tests for Q-format descriptors."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.fixedpoint import ACC32, Q8_4, QFormat


class TestBounds:
    def test_signed_8bit_range(self):
        fmt = QFormat(8, 0)
        assert fmt.int_min == -128
        assert fmt.int_max == 127

    def test_unsigned_range(self):
        fmt = QFormat(8, 0, signed=False)
        assert fmt.int_min == 0
        assert fmt.int_max == 255

    def test_real_bounds_follow_scale(self):
        fmt = QFormat(8, 4)
        assert fmt.scale == pytest.approx(1 / 16)
        assert fmt.max_value == pytest.approx(127 / 16)
        assert fmt.min_value == pytest.approx(-8.0)

    def test_negative_frac_bits_scale_up(self):
        fmt = QFormat(8, -2)
        assert fmt.scale == 4.0
        assert fmt.max_value == 127 * 4

    def test_int_bits_accounting(self):
        assert QFormat(8, 4).int_bits == 3  # 1 sign + 3 int + 4 frac
        assert QFormat(8, 4, signed=False).int_bits == 4

    def test_invalid_widths_rejected(self):
        with pytest.raises(ValueError):
            QFormat(0, 0)
        with pytest.raises(ValueError):
            QFormat(1, 0, signed=True)

    def test_representable(self):
        fmt = QFormat(8, 4)
        assert fmt.representable(0.0)
        assert fmt.representable(fmt.max_value)
        assert not fmt.representable(fmt.max_value + 1.0)
        assert not fmt.representable(fmt.min_value - 0.1)


class TestDerivedFormats:
    def test_widen_preserves_fraction(self):
        wide = Q8_4.widen(8)
        assert wide.total_bits == 16
        assert wide.frac_bits == 4

    def test_widen_rejects_negative(self):
        with pytest.raises(ValueError):
            Q8_4.widen(-1)

    def test_product_format_adds_widths(self):
        prod = Q8_4.product_format(QFormat(8, 5))
        assert prod.total_bits == 16
        assert prod.frac_bits == 9

    def test_accumulator_guard_bits(self):
        acc = Q8_4.accumulator_format(Q8_4, length=256)
        # product is 16 bits, 256 terms need 8 guard bits
        assert acc.total_bits == 16 + 8

    def test_accumulator_length_one(self):
        acc = Q8_4.accumulator_format(Q8_4, length=1)
        assert acc.total_bits == 16

    def test_accumulator_never_overflows(self):
        # Worst case dot product must fit the computed format.
        n = 768
        acc = Q8_4.accumulator_format(Q8_4, n)
        worst = n * 128 * 128
        assert worst <= acc.int_max + 1  # symmetric magnitude fits

    def test_accumulator_rejects_bad_length(self):
        with pytest.raises(ValueError):
            Q8_4.accumulator_format(Q8_4, 0)


class TestForRange:
    def test_unit_range_uses_max_fraction(self):
        fmt = QFormat.for_range(-1.0, 1.0, total_bits=8)
        assert fmt.representable(-1.0)
        assert fmt.representable(1.0)
        # Should give at least 6 fractional bits for [-1, 1].
        assert fmt.frac_bits >= 6

    def test_large_range(self):
        fmt = QFormat.for_range(-100.0, 100.0, total_bits=8)
        assert fmt.representable(100.0)
        assert fmt.representable(-100.0)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            QFormat.for_range(1.0, -1.0)

    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_for_range_always_covers(self, hi):
        fmt = QFormat.for_range(-hi, hi, total_bits=8)
        assert fmt.representable(hi)
        assert fmt.representable(-hi)

    @given(st.floats(min_value=1e-6, max_value=1e6),
           st.integers(min_value=4, max_value=24))
    def test_finer_format_does_not_exist(self, hi, bits):
        """for_range picks the *finest* covering format."""
        fmt = QFormat.for_range(-hi, hi, total_bits=bits)
        finer = QFormat(bits, fmt.frac_bits + 1)
        assert not (finer.representable(hi) and finer.representable(-hi))


def test_acc32_constant_sanity():
    assert ACC32.total_bits == 32
    assert ACC32.frac_bits == 8
    assert math.log2(ACC32.int_max + 1) == 31
