"""Shared fixtures: small configurations that keep functional tests fast.

The "small" accelerator uses tiny tile sizes and dimensions so full
fixed-point forward passes run in milliseconds; the "default" session
fixture is the published U55C instance (synthesized once per session —
the expensive step, exactly like the real flow).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ProTEA, SynthParams, TransformerConfig
from repro.core import DatapathFormats
from repro.nn import build_encoder

SMALL_CONFIG = TransformerConfig(
    name="small-test", d_model=64, num_heads=2, num_layers=2, seq_len=16
)

SMALL_SYNTH = SynthParams(
    ts_mha=16,
    ts_ffn=32,
    max_heads=2,
    max_layers=4,
    max_d_model=64,
    max_seq_len=32,
    seq_chunk=16,
)


@pytest.fixture(scope="session")
def small_config() -> TransformerConfig:
    return SMALL_CONFIG


@pytest.fixture(scope="session")
def small_synth() -> SynthParams:
    return SMALL_SYNTH


@pytest.fixture(scope="session")
def small_encoder():
    return build_encoder(SMALL_CONFIG, seed=7)


@pytest.fixture()
def small_accel(small_encoder):
    accel = ProTEA.synthesize(SMALL_SYNTH, enforce_fit=False)
    accel.program(SMALL_CONFIG).load_weights(small_encoder)
    return accel


@pytest.fixture()
def small_accel_fix16(small_encoder):
    accel = ProTEA.synthesize(
        SMALL_SYNTH, formats=DatapathFormats.fix16(), enforce_fit=False
    )
    accel.program(SMALL_CONFIG).load_weights(small_encoder)
    return accel


@pytest.fixture(scope="session")
def default_accel():
    """The published U55C instance (synthesized once per test session)."""
    return ProTEA.synthesize(SynthParams())


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_input() -> np.ndarray:
    gen = np.random.default_rng(99)
    return gen.normal(0.0, 0.5, size=(SMALL_CONFIG.seq_len, SMALL_CONFIG.d_model))
