"""Parallel-determinism harness: jobs and batching change nothing.

The engine promises that an exploration's *results* are a pure
function of (space, strategy, seed, settings) — ``jobs`` and
``batch_size`` may only move the wall clock.  These tests hold that
promise byte for byte, for every strategy, across:

* serial (``jobs=1``), the persistent pool (``jobs=3``), and every
  batching shape (auto, single-point, mid, oversized);
* the rendered report (``as_dict()`` minus the wall clock and the job
  count themselves);
* the on-disk cache: same entry *filenames* (content keys) and same
  entry *bytes*, whichever path wrote them.
"""

import json

import pytest

from repro.dse import Axis, EvalCache, Objective, SearchSpace, explore

OBJS = (Objective("y", "min"), Objective("z", "max"))

#: Every (jobs, batch_size) execution shape under test.  jobs=3 on a
#: 4x3 space exercises multi-worker dispatch; batch sizes cover
#: per-point round-trips (1), uneven splits (2, 5), one-dispatch
#: oversize (50), and the auto heuristic (None).
SHAPES = [(1, None), (3, None), (3, 1), (3, 2), (3, 5), (3, 50)]

STRATEGIES = [
    ("grid", {}),
    ("random", {"samples": 8, "seed": 7}),
    ("evolutionary", {"population": 6, "generations": 3, "seed": 3}),
]


def _space(n=4, m=3):
    return SearchSpace((Axis("a", tuple(range(1, n + 1))),
                        Axis("b", tuple(range(1, m + 1)))))


def bumpy_eval(point, settings):
    """Module-level (picklable) evaluator with an error corner."""
    if point["a"] == settings.get("poison"):
        raise ValueError(f"bad corner a={point['a']}")
    return {"y": float(point["a"] * point["b"]),
            "z": float(point["a"]) - 0.1 * point["b"],
            "extra": point["a"] + point["b"]}


def toy_surrogate(point, settings):
    """Exactly-correlated surrogate for prescreen identity runs."""
    return {"y": float(point["a"] * point["b"]),
            "z": float(point["a"]) - 0.1 * point["b"]}


def report_blob(result) -> str:
    """The canonical report: everything except the wall clock."""
    out = result.as_dict()
    del out["jobs"]
    del out["elapsed_s"]
    return json.dumps(out, sort_keys=True)


def cache_snapshot(path) -> dict:
    """Key -> raw bytes for every cache entry on disk."""
    return {entry.name: entry.read_bytes()
            for entry in path.glob("*.json")}


class TestReportIdentity:
    @pytest.mark.parametrize("strategy,options", STRATEGIES)
    def test_all_shapes_identical(self, strategy, options):
        blobs = {
            report_blob(explore(
                _space(), bumpy_eval, objectives=OBJS,
                strategy=strategy, strategy_options=options,
                settings={"poison": 3}, jobs=jobs, batch_size=batch))
            for jobs, batch in SHAPES
        }
        assert len(blobs) == 1

    def test_legacy_chunk_size_alias(self):
        serial = explore(_space(), bumpy_eval, objectives=OBJS)
        chunked = explore(_space(), bumpy_eval, objectives=OBJS,
                          jobs=3, chunk_size=2)
        assert report_blob(serial) == report_blob(chunked)

    @pytest.mark.parametrize("strategy,options", STRATEGIES)
    def test_prescreen_identical_across_shapes(self, strategy, options):
        """A prescreened sweep is deterministic too: survivor selection
        happens strategy-side, before jobs or batching exist."""
        blobs = set()
        for jobs, batch in SHAPES:
            result = explore(
                _space(), bumpy_eval, objectives=OBJS,
                strategy="prescreen",
                strategy_options={"inner": strategy,
                                  "surrogate": toy_surrogate,
                                  "keep": 0.4, "min_keep": 2, **options},
                jobs=jobs, batch_size=batch)
            assert result.prescreen is not None
            blobs.add(report_blob(result))
        assert len(blobs) == 1


class TestCacheIdentity:
    @pytest.mark.parametrize("strategy,options", STRATEGIES)
    def test_same_keys_same_bytes(self, tmp_path, strategy, options):
        """Whoever evaluates, the parent writes the same records under
        the same content keys."""
        snapshots = []
        for i, (jobs, batch) in enumerate(SHAPES):
            cache_dir = tmp_path / f"run{i}"
            explore(_space(), bumpy_eval, objectives=OBJS,
                    strategy=strategy, strategy_options=options,
                    settings={"poison": 2}, jobs=jobs, batch_size=batch,
                    cache=EvalCache(cache_dir))
            snapshots.append(cache_snapshot(cache_dir))
        assert all(snap == snapshots[0] for snap in snapshots[1:])
        assert snapshots[0]  # the sweep actually cached something

    def test_serial_cache_serves_parallel_and_back(self, tmp_path):
        """A cache written serially resumes a pooled sweep verbatim,
        and vice versa — entries carry no trace of who computed them."""
        a, b = tmp_path / "a", tmp_path / "b"
        explore(_space(), bumpy_eval, objectives=OBJS,
                cache=EvalCache(a), jobs=1)
        explore(_space(), bumpy_eval, objectives=OBJS,
                cache=EvalCache(b), jobs=3, batch_size=2)
        assert cache_snapshot(a) == cache_snapshot(b)
        warm = explore(_space(), bumpy_eval, objectives=OBJS,
                       cache=EvalCache(a), jobs=3)
        assert warm.n_evaluated == 0
        assert warm.cache_hits == 12


class TestFrontierIdentity:
    def test_frontier_points_and_objectives_match(self):
        runs = [explore(_space(5, 4), bumpy_eval, objectives=OBJS,
                        jobs=jobs, batch_size=batch)
                for jobs, batch in SHAPES]
        reference = [(r.point, r.objectives) for r in runs[0].frontier]
        assert reference  # non-trivial frontier
        for run in runs[1:]:
            assert [(r.point, r.objectives)
                    for r in run.frontier] == reference
