"""Unit tests for the content-keyed on-disk evaluation cache."""

from repro.dse import EvalCache


class TestKeying:
    def test_key_is_content_addressed(self):
        k1 = EvalCache.key_for({"a": 1}, {"qps": 100})
        k2 = EvalCache.key_for({"a": 1}, {"qps": 100})
        assert k1 == k2

    def test_key_insensitive_to_dict_order(self):
        assert (EvalCache.key_for({"a": 1, "b": 2}, {"x": 1, "y": 2})
                == EvalCache.key_for({"b": 2, "a": 1}, {"y": 2, "x": 1}))

    def test_key_sensitive_to_point_and_settings(self):
        base = EvalCache.key_for({"a": 1}, {"qps": 100})
        assert EvalCache.key_for({"a": 2}, {"qps": 100}) != base
        assert EvalCache.key_for({"a": 1}, {"qps": 200}) != base

    def test_key_sensitive_to_package_version(self, monkeypatch):
        """A release that changes the models must miss, not serve
        stale scores."""
        import repro

        base = EvalCache.key_for({"a": 1})
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert EvalCache.key_for({"a": 1}) != base


class TestStorage:
    def test_roundtrip(self, tmp_path):
        cache = EvalCache(tmp_path / "c")
        key = cache.key_for({"a": 1})
        assert cache.get(key) is None
        cache.put(key, {"objectives": {"latency_ms": 3.0}, "error": ""})
        record = cache.get(key)
        assert record["objectives"]["latency_ms"] == 3.0
        assert len(cache) == 1

    def test_hit_miss_counters(self, tmp_path):
        cache = EvalCache(tmp_path)
        key = cache.key_for({"a": 1})
        cache.get(key)
        cache.put(key, {"v": 1})
        cache.get(key)
        assert cache.stats == {"hits": 1, "misses": 1, "entries": 1}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = EvalCache(tmp_path)
        key = cache.key_for({"a": 1})
        cache.put(key, {"v": 1})
        (tmp_path / f"{key}.json").write_text("{not json")
        assert cache.get(key) is None

    def test_non_dict_entry_is_a_miss(self, tmp_path):
        cache = EvalCache(tmp_path)
        key = cache.key_for({"a": 1})
        (tmp_path / f"{key}.json").write_text("[1, 2]")
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = EvalCache(tmp_path)
        for i in range(3):
            cache.put(cache.key_for({"a": i}), {"v": i})
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_persists_across_instances(self, tmp_path):
        EvalCache(tmp_path).put(EvalCache.key_for({"a": 1}), {"v": 7})
        reopened = EvalCache(tmp_path)
        assert reopened.get(EvalCache.key_for({"a": 1})) == {"v": 7}


class TestIndex:
    def test_index_lists_every_key(self, tmp_path):
        cache = EvalCache(tmp_path)
        keys = {cache.key_for({"a": i}) for i in range(3)}
        for key in keys:
            cache.put(key, {"v": 1})
        assert cache.index() == keys

    def test_index_is_a_snapshot(self, tmp_path):
        cache = EvalCache(tmp_path)
        assert cache.index() == set()
        key = cache.key_for({"a": 1})
        cache.put(key, {"v": 1})
        assert cache.index() == {key}

    def test_index_probes_do_not_move_counters(self, tmp_path):
        cache = EvalCache(tmp_path)
        cache.put(cache.key_for({"a": 1}), {"v": 1})
        cache.index()
        assert cache.stats["hits"] == 0 and cache.stats["misses"] == 0


class TestVersionRekeying:
    def test_old_version_entries_are_not_reused(self, tmp_path,
                                                monkeypatch):
        """Entries written by an earlier package release must miss —
        the analytic models behind the scores may have changed — so a
        version bump silently re-keys the whole cache."""
        import repro
        from repro.dse import Axis, Objective, SearchSpace, explore

        space = SearchSpace((Axis("x", (1, 2, 3)),))
        objs = (Objective("a", "min"),)

        def evaluator(point, settings):
            return {"a": float(point["x"])}

        monkeypatch.setattr(repro, "__version__", "1.4.0-old")
        old = explore(space, evaluator, objectives=objs,
                      cache=EvalCache(tmp_path))
        assert old.cache_misses == 3
        monkeypatch.undo()
        rerun = explore(space, evaluator, objectives=objs,
                        cache=EvalCache(tmp_path))
        # All three old-version entries are still on disk, but none is
        # served: every point re-scores under the current version.
        assert rerun.cache_hits == 0
        assert rerun.n_evaluated == 3
        assert len(EvalCache(tmp_path)) == 6

    def test_current_version_entries_are_reused(self, tmp_path):
        from repro.dse import Axis, Objective, SearchSpace, explore

        space = SearchSpace((Axis("x", (1, 2)),))

        def evaluator(point, settings):
            return {"a": float(point["x"])}

        kwargs = dict(objectives=(Objective("a", "min"),),
                      cache=EvalCache(tmp_path))
        explore(space, evaluator, **kwargs)
        warm = explore(space, evaluator, **kwargs)
        assert warm.cache_hits == 2 and warm.n_evaluated == 0


class TestObjectiveOrderingCannotAlias:
    """The cache key covers (point, settings) but *not* the objective
    selection or its order — deliberately: records store the full
    metrics mapping and each run re-derives its own objective vector.
    These tests pin that two runs differing only in `--pareto`
    objective order share entries *safely* (same key, order-insensitive
    content) and can never read a wrong value through the alias."""

    def test_key_ignores_objective_order_by_construction(self):
        """Objective selection is not part of the key inputs, and the
        canonical JSON sorts keys, so no ordering of any mapping can
        mint a second key for the same content."""
        s1 = {"qps": 100, "link": "aurora"}
        s2 = {"link": "aurora", "qps": 100}
        assert EvalCache.key_for({"a": 1}, s1) == EvalCache.key_for(
            {"a": 1}, s2)

    def test_reordered_objectives_hit_and_rederive_correctly(self, tmp_path):
        from repro.dse import Axis, Objective, SearchSpace, explore

        space = SearchSpace((Axis("x", (1, 2, 3)),))

        def evaluator(point, settings):
            return {"a": float(point["x"]), "b": -float(point["x"])}

        cache = EvalCache(tmp_path)
        fwd = (Objective("a", "min"), Objective("b", "max"))
        rev = (Objective("b", "max"), Objective("a", "min"))
        first = explore(space, evaluator, objectives=fwd, cache=cache)
        second = explore(space, evaluator, objectives=rev, cache=cache)
        assert first.cache_misses == 3 and first.cache_hits == 0
        assert second.cache_hits == 3 and second.cache_misses == 0
        # Same stored metrics, each run's own objective ordering.
        for r1, r2 in zip(first.results, second.results):
            assert r1.metrics == r2.metrics
            assert list(r1.objectives) == ["a", "b"]
            assert list(r2.objectives) == ["b", "a"]
            assert r1.objectives["a"] == r2.objectives["a"]

    def test_distinct_settings_still_miss(self, tmp_path):
        """Sharing is keyed on content: any real settings change (not
        mere reordering) must re-score."""
        cache = EvalCache(tmp_path)
        k1 = cache.key_for({"x": 1}, {"qps": 100})
        k2 = cache.key_for({"x": 1}, {"qps": 200})
        cache.put(k1, {"metrics": {"a": 1.0}, "error": ""})
        assert cache.get(k2) is None
