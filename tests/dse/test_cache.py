"""Unit tests for the content-keyed on-disk evaluation cache."""

from repro.dse import EvalCache


class TestKeying:
    def test_key_is_content_addressed(self):
        k1 = EvalCache.key_for({"a": 1}, {"qps": 100})
        k2 = EvalCache.key_for({"a": 1}, {"qps": 100})
        assert k1 == k2

    def test_key_insensitive_to_dict_order(self):
        assert (EvalCache.key_for({"a": 1, "b": 2}, {"x": 1, "y": 2})
                == EvalCache.key_for({"b": 2, "a": 1}, {"y": 2, "x": 1}))

    def test_key_sensitive_to_point_and_settings(self):
        base = EvalCache.key_for({"a": 1}, {"qps": 100})
        assert EvalCache.key_for({"a": 2}, {"qps": 100}) != base
        assert EvalCache.key_for({"a": 1}, {"qps": 200}) != base

    def test_key_sensitive_to_package_version(self, monkeypatch):
        """A release that changes the models must miss, not serve
        stale scores."""
        import repro

        base = EvalCache.key_for({"a": 1})
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert EvalCache.key_for({"a": 1}) != base


class TestStorage:
    def test_roundtrip(self, tmp_path):
        cache = EvalCache(tmp_path / "c")
        key = cache.key_for({"a": 1})
        assert cache.get(key) is None
        cache.put(key, {"objectives": {"latency_ms": 3.0}, "error": ""})
        record = cache.get(key)
        assert record["objectives"]["latency_ms"] == 3.0
        assert len(cache) == 1

    def test_hit_miss_counters(self, tmp_path):
        cache = EvalCache(tmp_path)
        key = cache.key_for({"a": 1})
        cache.get(key)
        cache.put(key, {"v": 1})
        cache.get(key)
        assert cache.stats == {"hits": 1, "misses": 1, "entries": 1}

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = EvalCache(tmp_path)
        key = cache.key_for({"a": 1})
        cache.put(key, {"v": 1})
        (tmp_path / f"{key}.json").write_text("{not json")
        assert cache.get(key) is None

    def test_non_dict_entry_is_a_miss(self, tmp_path):
        cache = EvalCache(tmp_path)
        key = cache.key_for({"a": 1})
        (tmp_path / f"{key}.json").write_text("[1, 2]")
        assert cache.get(key) is None

    def test_clear(self, tmp_path):
        cache = EvalCache(tmp_path)
        for i in range(3):
            cache.put(cache.key_for({"a": i}), {"v": i})
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_persists_across_instances(self, tmp_path):
        EvalCache(tmp_path).put(EvalCache.key_for({"a": 1}), {"v": 7})
        reopened = EvalCache(tmp_path)
        assert reopened.get(EvalCache.key_for({"a": 1})) == {"v": 7}
