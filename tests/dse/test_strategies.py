"""Unit tests for the grid / random / evolutionary proposal loops."""

import pytest

from repro.dse import (
    Axis,
    EvalResult,
    Objective,
    SearchSpace,
    get_strategy,
    point_id,
)

OBJS = (Objective("y", "min"),)


def _space():
    return SearchSpace((Axis("a", (1, 2, 3, 4)), Axis("b", (10, 20, 30))))


def _score(point) -> EvalResult:
    return EvalResult(point=dict(point),
                      objectives={"y": float(point["a"] * point["b"])},
                      metrics={})


class TestGrid:
    def test_one_batch_then_done(self):
        strategy = get_strategy("grid", _space())
        batch = strategy.ask()
        assert len(batch) == 12
        assert strategy.ask() == []

    def test_grid_order(self):
        batch = get_strategy("grid", _space()).ask()
        assert batch[0] == {"a": 1, "b": 10}
        assert batch[-1] == {"a": 4, "b": 30}


class TestRandom:
    def test_seeded_and_distinct(self):
        s1 = get_strategy("random", _space(), samples=6, seed=42).ask()
        s2 = get_strategy("random", _space(), samples=6, seed=42).ask()
        assert s1 == s2
        assert len({point_id(p) for p in s1}) == 6

    def test_different_seed_differs(self):
        s1 = get_strategy("random", _space(), samples=8, seed=1).ask()
        s2 = get_strategy("random", _space(), samples=8, seed=2).ask()
        assert s1 != s2

    def test_samples_capped_by_space(self):
        batch = get_strategy("random", _space(), samples=999, seed=0).ask()
        assert len(batch) == _space().size

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            get_strategy("random", _space(), samples=0)


class TestEvolutionary:
    def _drive(self, seed=0, generations=3, population=4):
        strategy = get_strategy("evolutionary", _space(), objectives=OBJS,
                                population=population,
                                generations=generations, seed=seed)
        proposed = []
        while True:
            batch = strategy.ask()
            if not batch:
                break
            proposed.extend(batch)
            strategy.tell([_score(p) for p in batch])
        return proposed

    def test_runs_all_generations_without_repeats(self):
        proposed = self._drive(generations=3, population=4)
        ids = [point_id(p) for p in proposed]
        assert len(ids) == len(set(ids)), "points must never repeat"
        assert len(proposed) == 12  # space holds enough distinct points

    def test_points_stay_on_the_grid(self):
        space = _space()
        for point in self._drive(seed=5):
            space.validate_point(point)

    def test_seeded_determinism(self):
        assert self._drive(seed=9) == self._drive(seed=9)

    def test_requires_objectives(self):
        with pytest.raises(ValueError, match="objectives"):
            get_strategy("evolutionary", _space())

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            get_strategy("evolutionary", _space(), objectives=OBJS,
                         population=1)
        with pytest.raises(ValueError):
            get_strategy("evolutionary", _space(), objectives=OBJS,
                         generations=0)


class TestRegistry:
    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            get_strategy("anneal", _space())
