"""Unit tests for the grid / random / evolutionary proposal loops."""

import pytest

from repro.dse import (
    Axis,
    EvalResult,
    Objective,
    SearchSpace,
    get_strategy,
    point_id,
)

OBJS = (Objective("y", "min"),)


def _space():
    return SearchSpace((Axis("a", (1, 2, 3, 4)), Axis("b", (10, 20, 30))))


def _score(point) -> EvalResult:
    return EvalResult(point=dict(point),
                      objectives={"y": float(point["a"] * point["b"])},
                      metrics={})


class TestGrid:
    def test_one_batch_then_done(self):
        strategy = get_strategy("grid", _space())
        batch = strategy.ask()
        assert len(batch) == 12
        assert strategy.ask() == []

    def test_grid_order(self):
        batch = get_strategy("grid", _space()).ask()
        assert batch[0] == {"a": 1, "b": 10}
        assert batch[-1] == {"a": 4, "b": 30}


class TestRandom:
    def test_seeded_and_distinct(self):
        s1 = get_strategy("random", _space(), samples=6, seed=42).ask()
        s2 = get_strategy("random", _space(), samples=6, seed=42).ask()
        assert s1 == s2
        assert len({point_id(p) for p in s1}) == 6

    def test_different_seed_differs(self):
        s1 = get_strategy("random", _space(), samples=8, seed=1).ask()
        s2 = get_strategy("random", _space(), samples=8, seed=2).ask()
        assert s1 != s2

    def test_samples_capped_by_space(self):
        batch = get_strategy("random", _space(), samples=999, seed=0).ask()
        assert len(batch) == _space().size

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            get_strategy("random", _space(), samples=0)


class TestEvolutionary:
    def _drive(self, seed=0, generations=3, population=4):
        strategy = get_strategy("evolutionary", _space(), objectives=OBJS,
                                population=population,
                                generations=generations, seed=seed)
        proposed = []
        while True:
            batch = strategy.ask()
            if not batch:
                break
            proposed.extend(batch)
            strategy.tell([_score(p) for p in batch])
        return proposed

    def test_runs_all_generations_without_repeats(self):
        proposed = self._drive(generations=3, population=4)
        ids = [point_id(p) for p in proposed]
        assert len(ids) == len(set(ids)), "points must never repeat"
        assert len(proposed) == 12  # space holds enough distinct points

    def test_points_stay_on_the_grid(self):
        space = _space()
        for point in self._drive(seed=5):
            space.validate_point(point)

    def test_seeded_determinism(self):
        assert self._drive(seed=9) == self._drive(seed=9)

    def test_requires_objectives(self):
        with pytest.raises(ValueError, match="objectives"):
            get_strategy("evolutionary", _space())

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            get_strategy("evolutionary", _space(), objectives=OBJS,
                         population=1)
        with pytest.raises(ValueError):
            get_strategy("evolutionary", _space(), objectives=OBJS,
                         generations=0)


class TestRegistry:
    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            get_strategy("anneal", _space())


def exact_surrogate(point, settings):
    """Surrogate that equals the true toy objective."""
    return {"y": float(point["a"] * point["b"])}


def broken_surrogate(point, settings):
    if point["a"] == 4:
        raise RuntimeError("cannot estimate this corner")
    return {"y": float(point["a"] * point["b"])}


def partial_surrogate(point, settings):
    """Estimates an objective nobody ranks on."""
    return {"other": 1.0}


class TestPrescreen:
    def _strategy(self, **options):
        return get_strategy("prescreen", _space(), objectives=OBJS,
                            **options)

    def test_validation(self):
        with pytest.raises(ValueError, match="objectives"):
            get_strategy("prescreen", _space())
        with pytest.raises(ValueError, match="keep"):
            self._strategy(keep=0.0)
        with pytest.raises(ValueError, match="keep"):
            self._strategy(keep=1.5)
        with pytest.raises(ValueError, match="min_keep"):
            self._strategy(min_keep=0)
        with pytest.raises(ValueError, match="unknown strategy"):
            self._strategy(inner="anneal")

    def test_prescreen_does_not_nest(self):
        inner = self._strategy()
        with pytest.raises(ValueError, match="nest"):
            get_strategy("prescreen", _space(), objectives=OBJS,
                         inner=inner)

    def test_name_carries_the_inner(self):
        assert self._strategy(inner="random").name == "prescreen+random"

    def test_screens_to_whole_fronts(self):
        """keep=0.1 of 12 points targets ceil(1.2)=2 survivors; whole
        fronts are kept, so the 2-point second front rides along."""
        strategy = self._strategy(surrogate=exact_surrogate, keep=0.1,
                                  min_keep=1)
        batch = strategy.ask()
        # y = a*b minimized: front 1 is {(1,10)} (y=10) — short of the
        # target of 2 — so front 2 {(1,20), (2,10)} (y=20) is kept
        # whole, in original batch order.
        assert batch == [{"a": 1, "b": 10}, {"a": 1, "b": 20},
                         {"a": 2, "b": 10}]
        assert strategy.stats == {"proposed": 12, "forwarded": 3,
                                  "screened_out": 9,
                                  "surrogate_errors": 0}

    def test_small_batches_skip_the_screen(self):
        space = SearchSpace((Axis("a", (1, 2, 3)),))
        strategy = get_strategy("prescreen", space, objectives=OBJS,
                                surrogate=exact_surrogate, min_keep=4)
        batch = strategy.ask()
        assert len(batch) == 3  # <= min_keep: everything forwarded
        assert strategy.stats["forwarded"] == 3
        assert strategy.stats["screened_out"] == 0

    def test_surrogate_errors_forward_conservatively(self):
        strategy = self._strategy(surrogate=broken_surrogate, keep=0.1,
                                  min_keep=1)
        batch = strategy.ask()
        points_a = {p["a"] for p in batch}
        assert 4 in points_a  # unscoreable column forwarded whole
        assert strategy.stats["surrogate_errors"] == 3

    def test_unrankable_objectives_forward_everything(self):
        strategy = self._strategy(surrogate=partial_surrogate, keep=0.1)
        batch = strategy.ask()
        assert len(batch) == 12
        assert strategy.stats["screened_out"] == 0

    def test_tell_reaches_the_inner_strategy(self):
        strategy = self._strategy(inner="evolutionary", population=4,
                                  generations=2, seed=5,
                                  surrogate=exact_surrogate, keep=0.5)
        batch = strategy.ask()
        strategy.tell([_score(p) for p in batch])
        assert strategy.inner._archive  # survivors reached the inner

    def test_summary_shape(self):
        strategy = self._strategy(surrogate=exact_surrogate, keep=0.25)
        strategy.ask()
        summary = strategy.summary()
        assert summary["inner"] == "grid"
        assert summary["keep"] == 0.25
        assert summary["proposed"] == 12
        assert (summary["forwarded"] + summary["screened_out"]
                == summary["proposed"])
