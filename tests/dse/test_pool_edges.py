"""Concurrency edge cases: the pool under awkward and hostile shapes.

The persistent pool has to behave at the corners the happy path never
visits: more workers than points, one-point batches, a worker that
dies mid-batch, error policies crossing the process boundary, and
resuming a cached sweep under a different job count.
"""

import os

import pytest

from repro.dse import Axis, EvalCache, Objective, SearchSpace, explore
from repro.dse.pool import PersistentPool

OBJS = (Objective("y", "min"), Objective("z", "max"))


def _space(n=3, m=2):
    return SearchSpace((Axis("a", tuple(range(1, n + 1))),
                        Axis("b", tuple(range(1, m + 1)))))


def plain_eval(point, settings):
    return {"y": float(point["a"] * point["b"]), "z": float(point["a"])}


def lethal_eval(point, settings):
    """Kills its own process on the marked point — no exception, no
    goodbye — simulating a segfault or OOM kill."""
    if point["a"] == settings.get("lethal"):
        os._exit(13)
    return {"y": float(point["a"] * point["b"]), "z": float(point["a"])}


def raising_eval(point, settings):
    if point["a"] == settings.get("poison"):
        raise ValueError(f"bad corner a={point['a']}")
    return {"y": float(point["a"] * point["b"]), "z": float(point["a"])}


class TestShapes:
    def test_more_workers_than_points(self):
        """jobs > points: the surplus workers just stay idle."""
        space = SearchSpace((Axis("a", (1, 2)), Axis("b", (1,))))
        serial = explore(space, plain_eval, objectives=OBJS)
        pooled = explore(space, plain_eval, objectives=OBJS, jobs=8)
        assert ([(r.point, r.objectives) for r in pooled.results]
                == [(r.point, r.objectives) for r in serial.results])

    def test_single_point_batch_runs_inline(self):
        """One uncached point is evaluated in the parent — no pool is
        worth forking for it."""
        space = SearchSpace((Axis("a", (5,)), Axis("b", (2,))))
        result = explore(space, plain_eval, objectives=OBJS, jobs=4)
        assert result.n_evaluated == 1
        assert result.results[0].objectives == {"y": 10.0, "z": 5.0}

    def test_batch_size_larger_than_sweep(self):
        result = explore(_space(), plain_eval, objectives=OBJS,
                         jobs=2, batch_size=1000)
        assert result.n_evaluated == 6
        assert all(r.ok for r in result.results)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            explore(_space(), plain_eval, objectives=OBJS,
                    jobs=2, batch_size=0)


class TestWorkerDeath:
    def test_dead_worker_fails_batch_and_sweep_completes(self):
        """A worker dying mid-batch costs exactly that batch: its
        points come back as `worker died` error records, a replacement
        is forked, and every other point is scored normally."""
        result = explore(_space(4, 3), lethal_eval, objectives=OBJS,
                         settings={"lethal": 2}, jobs=2, batch_size=1)
        dead = [r for r in result.results if not r.ok]
        alive = [r for r in result.results if r.ok]
        # batch_size=1: only the lethal points die (a=2 with 3 b values).
        assert len(dead) == 3
        assert all(r.error.startswith("worker died:") for r in dead)
        assert all("exited with code 13" in r.error for r in dead)
        assert len(alive) == 9
        # The frontier is computed over the survivors.
        assert result.frontier
        assert all(r.ok for r in result.frontier)

    def test_dead_worker_takes_whole_batch_down(self):
        """Without per-point batches, the innocent points sharing the
        dying worker's batch are reported failed too — visibly, never
        silently dropped."""
        space = SearchSpace((Axis("a", (1, 2, 3, 4)), Axis("b", (1,))))
        result = explore(space, lethal_eval, objectives=OBJS,
                         settings={"lethal": 2}, jobs=2, batch_size=2)
        assert len(result.results) == 4
        dead = [r for r in result.results if not r.ok]
        assert len(dead) == 2  # the (a=1, a=2) batch
        assert {r.point["a"] for r in dead} == {1, 2}

    def test_pool_records_respawns(self):
        pool = PersistentPool(lethal_eval, {"lethal": 1}, jobs=2)
        try:
            replies = pool.map_batches([[{"a": 1, "b": 1}],
                                        [{"a": 3, "b": 1}]])
            assert pool.respawns >= 1
            _, dead_results = replies[0]
            assert "worker died" in dead_results[0][1]
            _, ok_results = replies[1]
            assert ok_results[0][0] == {"y": 3.0, "z": 3.0}
        finally:
            pool.close(force=True)

    def test_pool_reusable_after_death(self):
        """The replacement worker serves later dispatches."""
        pool = PersistentPool(lethal_eval, {"lethal": 2}, jobs=2)
        try:
            pool.map_batches([[{"a": 2, "b": 1}]])
            replies = pool.map_batches([[{"a": 5, "b": 2}]])
            _, results = replies[0]
            assert results[0][0] == {"y": 10.0, "z": 5.0}
        finally:
            pool.close(force=True)


class TestErrorPolicy:
    def test_tolerated_errors_cross_the_pipe(self):
        result = explore(_space(4, 3), raising_eval, objectives=OBJS,
                         settings={"poison": 3}, jobs=2, batch_size=2)
        errors = [r for r in result.results if not r.ok]
        assert len(errors) == 3
        assert all(r.error == "ValueError: bad corner a=3"
                   for r in errors)

    def test_fatal_errors_propagate_from_workers(self):
        with pytest.raises(ValueError, match="bad corner"):
            explore(_space(4, 3), raising_eval, objectives=OBJS,
                    settings={"poison": 1}, continue_on_error=False,
                    jobs=2, batch_size=2)

    def test_pool_requires_two_workers(self):
        with pytest.raises(ValueError, match="jobs"):
            PersistentPool(plain_eval, {}, jobs=1)


class TestResumeAcrossJobCounts:
    def test_parallel_resume_of_serial_cache(self, tmp_path):
        cold = explore(_space(4, 3), plain_eval, objectives=OBJS,
                       cache=EvalCache(tmp_path), jobs=1)
        warm = explore(_space(4, 3), plain_eval, objectives=OBJS,
                       cache=EvalCache(tmp_path), jobs=3, batch_size=2)
        assert warm.n_evaluated == 0
        assert warm.cache_hits == 12 and warm.cache_misses == 0
        assert ([(r.point, r.objectives) for r in warm.results]
                == [(r.point, r.objectives) for r in cold.results])

    def test_serial_resume_of_parallel_cache(self, tmp_path):
        explore(_space(4, 3), plain_eval, objectives=OBJS,
                cache=EvalCache(tmp_path), jobs=3)
        warm = explore(_space(4, 3), plain_eval, objectives=OBJS,
                       cache=EvalCache(tmp_path), jobs=1)
        assert warm.n_evaluated == 0
        assert all(r.cached for r in warm.results)

    def test_partial_resume_pools_only_the_remainder(self, tmp_path):
        """Growing an axis re-scores only the new points, through the
        pool, and the cache ends complete."""
        explore(_space(2, 2), plain_eval, objectives=OBJS,
                cache=EvalCache(tmp_path), jobs=1)
        grown = explore(_space(4, 2), plain_eval, objectives=OBJS,
                        cache=EvalCache(tmp_path), jobs=2, batch_size=1)
        assert grown.cache_hits == 4
        assert grown.n_evaluated == 4
        full = explore(_space(4, 2), plain_eval, objectives=OBJS,
                       cache=EvalCache(tmp_path), jobs=2)
        assert full.n_evaluated == 0 and full.cache_hits == 8
