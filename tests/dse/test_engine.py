"""Engine tests: serial/parallel evaluation, cache hits, resume semantics."""

import pytest

from repro.dse import (
    Axis,
    EvalCache,
    Objective,
    SearchSpace,
    explore,
)

OBJS = (Objective("y", "min"), Objective("z", "max"))


def _space(n=3, m=2):
    return SearchSpace((Axis("a", tuple(range(1, n + 1))),
                        Axis("b", tuple(range(1, m + 1)))))


def toy_eval(point, settings):
    """Module-level (hence picklable) toy evaluator."""
    scale = settings.get("scale", 1.0)
    if point["a"] == settings.get("poison"):
        raise ValueError(f"bad corner a={point['a']}")
    return {"y": scale * point["a"] * point["b"],
            "z": float(point["a"]),
            "extra": "kept"}


def inf_eval(point, settings):
    """Evaluator with a non-finite objective value."""
    return {"y": float(point["a"]), "z": float("inf")}


class TestSerial:
    def test_grid_results_in_order(self):
        result = explore(_space(), toy_eval, objectives=OBJS)
        assert [r.point for r in result.results] == list(_space().grid())
        assert result.n_evaluated == 6
        assert all(r.ok for r in result.results)
        assert result.results[0].metrics["extra"] == "kept"

    def test_objectives_extracted(self):
        result = explore(_space(), toy_eval, objectives=OBJS)
        first = result.results[0]
        assert first.objectives == {"y": 1.0, "z": 1.0}

    def test_settings_reach_evaluator(self):
        result = explore(_space(), toy_eval, objectives=OBJS,
                         settings={"scale": 10.0})
        assert result.results[0].objectives["y"] == 10.0

    def test_frontier_is_non_dominated(self):
        result = explore(_space(), toy_eval, objectives=OBJS)
        # y = a*b (min), z = a (max): the frontier trades a up vs y down.
        frontier_points = {(r.point["a"], r.point["b"])
                           for r in result.frontier}
        assert (1, 1) in frontier_points       # min y
        assert (3, 1) in frontier_points       # max z at min y for that a
        assert (3, 2) not in frontier_points   # dominated by (3, 1)

    def test_no_objectives_means_no_frontier(self):
        result = explore(_space(), toy_eval)
        assert result.frontier == []
        assert result.results[0].objectives == {}

    def test_missing_objective_metric_raises(self):
        with pytest.raises(KeyError, match="objective"):
            explore(_space(), toy_eval,
                    objectives=(Objective("nope", "min"),))

    def test_invalid_jobs(self):
        with pytest.raises(ValueError):
            explore(_space(), toy_eval, jobs=0)

    def test_duplicate_grid_values_evaluated_once(self, tmp_path):
        """A duplicated axis value appears per occurrence in the
        results but is scored (and cache-counted) exactly once."""
        space = SearchSpace((Axis("a", (8, 8, 12)),))

        def counting(point, settings):
            counting.calls += 1
            return {"y": float(point["a"]), "z": 1.0}

        counting.calls = 0
        cold = explore(space, counting, objectives=OBJS,
                       cache=EvalCache(tmp_path))
        assert counting.calls == 2
        assert cold.n_evaluated == 2
        assert cold.cache_misses == 2
        assert [r.point["a"] for r in cold.results] == [8, 8, 12]
        warm = explore(space, counting, objectives=OBJS,
                       cache=EvalCache(tmp_path))
        assert warm.cache_hits == 2 and warm.n_evaluated == 0


class TestErrors:
    def test_continue_on_error_records(self):
        result = explore(_space(), toy_eval, objectives=OBJS,
                         settings={"poison": 2})
        errors = [r for r in result.results if not r.ok]
        assert len(errors) == 2
        assert all("bad corner a=2" in r.error for r in errors)
        assert all(r.error.startswith("ValueError") for r in errors)
        # Errored points never reach the frontier.
        assert all(r.ok for r in result.frontier)

    def test_error_propagates_when_not_tolerated(self):
        with pytest.raises(ValueError, match="bad corner"):
            explore(_space(), toy_eval, settings={"poison": 1},
                    continue_on_error=False)


class TestParallel:
    def test_pool_matches_serial(self):
        serial = explore(_space(4, 3), toy_eval, objectives=OBJS)
        pooled = explore(_space(4, 3), toy_eval, objectives=OBJS, jobs=2)
        assert ([(r.point, r.objectives, r.error) for r in serial.results]
                == [(r.point, r.objectives, r.error) for r in pooled.results])
        assert ([r.point for r in serial.frontier]
                == [r.point for r in pooled.frontier])

    def test_pool_tolerates_errors(self):
        pooled = explore(_space(4, 3), toy_eval, objectives=OBJS, jobs=2,
                         settings={"poison": 3})
        assert sum(1 for r in pooled.results if not r.ok) == 3

    def test_explicit_chunk_size(self):
        result = explore(_space(4, 3), toy_eval, objectives=OBJS, jobs=2,
                         chunk_size=5)
        assert len(result.results) == 12


class TestCacheAndResume:
    def test_cold_run_populates_cache(self, tmp_path):
        cache = EvalCache(tmp_path)
        result = explore(_space(), toy_eval, objectives=OBJS, cache=cache)
        assert result.cache_hits == 0
        assert result.cache_misses == 6
        assert result.n_evaluated == 6
        assert len(cache) == 6

    def test_resume_same_space_same_seed(self, tmp_path):
        """Same space + same seed => identical frontier, zero re-evals."""
        kwargs = dict(objectives=OBJS, strategy="random",
                      strategy_options={"samples": 5, "seed": 11})
        cold = explore(_space(4, 3), toy_eval,
                       cache=EvalCache(tmp_path), **kwargs)
        warm = explore(_space(4, 3), toy_eval,
                       cache=EvalCache(tmp_path), **kwargs)
        assert warm.n_evaluated == 0
        assert warm.cache_hits == 5 and warm.cache_misses == 0
        assert ([(r.point, r.objectives) for r in warm.frontier]
                == [(r.point, r.objectives) for r in cold.frontier])
        assert all(r.cached for r in warm.results)

    def test_errors_are_cached_too(self, tmp_path):
        settings = {"poison": 2}
        explore(_space(), toy_eval, objectives=OBJS,
                cache=EvalCache(tmp_path), settings=settings)
        warm = explore(_space(), toy_eval, objectives=OBJS,
                       cache=EvalCache(tmp_path), settings=settings)
        assert warm.n_evaluated == 0
        assert sum(1 for r in warm.results if not r.ok) == 2

    def test_different_evaluators_do_not_collide(self, tmp_path):
        """Two evaluators over the same (space, settings) sharing one
        cache directory must key separate namespaces."""
        explore(_space(), toy_eval, objectives=OBJS,
                cache=EvalCache(tmp_path))
        other = explore(_space(), inf_eval, objectives=OBJS,
                        cache=EvalCache(tmp_path))
        assert other.cache_hits == 0
        assert other.n_evaluated == 6
        assert other.results[0].objectives["z"] == float("inf")

    def test_changed_settings_invalidate(self, tmp_path):
        explore(_space(), toy_eval, objectives=OBJS,
                cache=EvalCache(tmp_path), settings={"scale": 1.0})
        rerun = explore(_space(), toy_eval, objectives=OBJS,
                        cache=EvalCache(tmp_path), settings={"scale": 2.0})
        assert rerun.cache_hits == 0
        assert rerun.n_evaluated == 6

    def test_partial_resume_extends_space(self, tmp_path):
        """Growing an axis re-scores only the new points."""
        explore(_space(2, 2), toy_eval, objectives=OBJS,
                cache=EvalCache(tmp_path))
        grown = explore(_space(3, 2), toy_eval, objectives=OBJS,
                        cache=EvalCache(tmp_path))
        assert grown.cache_hits == 4
        assert grown.n_evaluated == 2

    def test_resume_with_different_objective_selection(self, tmp_path):
        """The cache key excludes the objective selection, so a resume
        may score the same cached points along *different* axes — the
        hit path must re-derive objectives from the full metrics."""
        explore(_space(), toy_eval, objectives=(Objective("y", "min"),),
                cache=EvalCache(tmp_path))
        widened = explore(_space(), toy_eval, objectives=OBJS,
                          cache=EvalCache(tmp_path))
        assert widened.n_evaluated == 0
        assert all(set(r.objectives) == {"y", "z"}
                   for r in widened.results)
        fresh = explore(_space(), toy_eval, objectives=OBJS)
        assert ([r.objectives for r in widened.frontier]
                == [r.objectives for r in fresh.frontier])

    def test_non_finite_objectives_survive_the_cache(self, tmp_path):
        """NaN/inf metrics round-trip through the on-disk cache, so a
        warm run is bit-identical to a cold one (as_dict() is where the
        strict-JSON sanitizing happens, not the cache)."""
        cold = explore(_space(2, 1), inf_eval, objectives=OBJS,
                       cache=EvalCache(tmp_path))
        warm = explore(_space(2, 1), inf_eval, objectives=OBJS,
                       cache=EvalCache(tmp_path))
        assert warm.n_evaluated == 0
        assert ([r.objectives for r in warm.results]
                == [r.objectives for r in cold.results])
        assert warm.results[0].objectives["z"] == float("inf")


class TestResultShape:
    def test_as_dict_is_json_safe(self):
        import json

        result = explore(_space(), toy_eval, objectives=OBJS,
                         settings={"poison": 1})
        blob = json.loads(json.dumps(result.as_dict()))
        assert blob["evaluated"] == 6
        assert len(blob["results"]) == 6
        assert {o["name"] for o in blob["objectives"]} == {"y", "z"}

    def test_elapsed_and_counters(self):
        result = explore(_space(), toy_eval, objectives=OBJS)
        assert result.elapsed_s >= 0
        assert result.strategy == "grid"
        assert result.jobs == 1
