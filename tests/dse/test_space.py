"""Unit tests for the declarative search space."""

from random import Random

import pytest

from repro.dse import Axis, SearchSpace, point_id


def _space(constraint=None):
    return SearchSpace((Axis("a", (1, 2, 3)), Axis("b", ("x", "y"))),
                       constraint=constraint)


class TestAxis:
    def test_values_frozen_as_tuple(self):
        axis = Axis("a", [1, 2])
        assert axis.values == (1, 2)
        assert len(axis) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Axis("a", ())
        with pytest.raises(ValueError):
            Axis("", (1,))


class TestSearchSpace:
    def test_size_and_names(self):
        space = _space()
        assert space.size == 6
        assert space.names == ("a", "b")
        assert space.axis("b").values == ("x", "y")
        with pytest.raises(KeyError):
            space.axis("missing")

    def test_grid_is_nested_loop_order(self):
        points = list(_space().grid())
        assert points == [
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
            {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
            {"a": 3, "b": "x"}, {"a": 3, "b": "y"},
        ]

    def test_constraint_prunes_grid(self):
        space = _space(constraint=lambda p: p["a"] != 2)
        assert all(p["a"] != 2 for p in space.grid())
        assert len(list(space.grid())) == 4

    def test_needs_axes_and_unique_names(self):
        with pytest.raises(ValueError):
            SearchSpace(())
        with pytest.raises(ValueError):
            SearchSpace((Axis("a", (1,)), Axis("a", (2,))))

    def test_sample_is_seeded_and_feasible(self):
        space = _space(constraint=lambda p: p["a"] != 1)
        first = [space.sample(Random(7)) for _ in range(5)]
        second = [space.sample(Random(7)) for _ in range(5)]
        assert first == second
        assert all(p["a"] != 1 for p in first)

    def test_sample_unsatisfiable_constraint(self):
        space = _space(constraint=lambda p: False)
        with pytest.raises(ValueError, match="feasible"):
            space.sample(Random(0))

    def test_mutate_changes_exactly_one_axis(self):
        space = _space()
        point = {"a": 1, "b": "x"}
        child = space.mutate(point, Random(3))
        diffs = [k for k in point if child[k] != point[k]]
        assert len(diffs) == 1

    def test_crossover_draws_from_parents(self):
        space = _space()
        a, b = {"a": 1, "b": "x"}, {"a": 3, "b": "y"}
        child = space.crossover(a, b, Random(5))
        assert child["a"] in (1, 3) and child["b"] in ("x", "y")

    def test_validate_point(self):
        space = _space()
        space.validate_point({"a": 1, "b": "x"})
        with pytest.raises(ValueError, match="not one of"):
            space.validate_point({"a": 99, "b": "x"})
        with pytest.raises(ValueError, match="axes"):
            space.validate_point({"a": 1})


class TestPointId:
    def test_order_insensitive(self):
        assert point_id({"a": 1, "b": 2}) == point_id({"b": 2, "a": 1})

    def test_value_sensitive(self):
        assert point_id({"a": 1}) != point_id({"a": 2})
