"""Unit tests for multi-objective domination and Pareto extraction."""

import pytest

from repro.dse import Objective, dominates, non_dominated_sort, pareto_front

LAT = Objective("latency", "min")
TPUT = Objective("throughput", "max")
OBJS = (LAT, TPUT)


class TestObjective:
    def test_direction(self):
        assert LAT.better(1.0, 2.0)
        assert TPUT.better(2.0, 1.0)

    def test_bad_goal_rejected(self):
        with pytest.raises(ValueError):
            Objective("x", "maximize")


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates({"latency": 1, "throughput": 10},
                         {"latency": 2, "throughput": 5}, OBJS)

    def test_equal_does_not_dominate(self):
        a = {"latency": 1, "throughput": 10}
        assert not dominates(a, dict(a), OBJS)

    def test_tradeoff_does_not_dominate(self):
        assert not dominates({"latency": 1, "throughput": 5},
                             {"latency": 2, "throughput": 10}, OBJS)

    def test_needs_objectives(self):
        with pytest.raises(ValueError):
            dominates({}, {}, ())


class TestParetoFront:
    def test_frontier_extraction(self):
        points = [
            {"latency": 1.0, "throughput": 10.0},   # frontier
            {"latency": 2.0, "throughput": 20.0},   # frontier (tradeoff)
            {"latency": 3.0, "throughput": 5.0},    # dominated by both
            {"latency": 1.5, "throughput": 10.0},   # dominated by first
        ]
        front = pareto_front(points, OBJS)
        assert front == points[:2]

    def test_ties_all_survive(self):
        a = {"latency": 1.0, "throughput": 1.0}
        front = pareto_front([a, dict(a)], OBJS)
        assert len(front) == 2

    def test_key_extractor(self):
        items = [("p1", {"latency": 1.0, "throughput": 1.0}),
                 ("p2", {"latency": 2.0, "throughput": 0.5})]
        front = pareto_front(items, OBJS, key=lambda it: it[1])
        assert front == [items[0]]


class TestNonDominatedSort:
    def test_rank_peeling(self):
        points = [
            {"latency": 1.0, "throughput": 10.0},
            {"latency": 2.0, "throughput": 5.0},
            {"latency": 3.0, "throughput": 1.0},
        ]
        fronts = non_dominated_sort(points, OBJS)
        assert [len(f) for f in fronts] == [1, 1, 1]
        assert fronts[0] == [points[0]]

    def test_partition_is_complete(self):
        points = [{"latency": float(i % 3), "throughput": float(i % 2)}
                  for i in range(6)]
        fronts = non_dominated_sort(points, OBJS)
        assert sum(len(f) for f in fronts) == len(points)
