"""DseProfile under the persistent pool: the accounting adds up.

The profile is the instrument that justified this rework (it measured
the old pool's idle overhead); these tests pin that under the
persistent pool its numbers still reconcile: dispatch/idle accounting
closes, per-worker dispatch counts match the batching arithmetic, and
a warm resume shows pure cache traffic.
"""

import math

import pytest

from repro.dse import Axis, EvalCache, Objective, SearchSpace, explore

OBJS = (Objective("y", "min"), Objective("z", "max"))


def _space(n=4, m=3):
    return SearchSpace((Axis("a", tuple(range(1, n + 1))),
                        Axis("b", tuple(range(1, m + 1)))))


def plain_eval(point, settings):
    return {"y": float(point["a"] * point["b"]), "z": float(point["a"])}


class TestPooledAccounting:
    def _profiled(self, **kwargs):
        result = explore(_space(), plain_eval, objectives=OBJS,
                         profile=True, **kwargs)
        assert result.profile is not None
        return result

    def test_busy_plus_idle_covers_the_dispatch_wall(self):
        """Per worker, busy + idle reconstructs the dispatch window:
        idle is defined as the window minus busy, and no worker can be
        busy longer than the window that contained it."""
        profile = self._profiled(jobs=2, batch_size=2).profile
        assert profile.dispatch_wall_s > 0
        for name, w in profile.workers().items():
            assert w["busy_s"] <= profile.dispatch_wall_s, name
            assert (w["busy_s"] + w["idle_s"]
                    == pytest.approx(profile.dispatch_wall_s)), name

    def test_task_counts_sum_to_evaluations(self):
        result = self._profiled(jobs=2, batch_size=3)
        workers = result.profile.workers()
        assert sum(int(w["tasks"]) for w in workers.values()) == 12
        assert result.n_evaluated == 12
        assert all(name.startswith("worker-") for name in workers)

    @pytest.mark.parametrize("batch_size", [1, 2, 5, 50])
    def test_dispatch_counts_match_batching(self, batch_size):
        """The pool receives exactly ceil(points / batch) dispatches
        and every point is in exactly one of them."""
        result = self._profiled(jobs=2, batch_size=batch_size)
        counts = result.profile.dispatch_counts()
        total_batches = sum(c["batches"] for c in counts.values())
        total_points = sum(c["points"] for c in counts.values())
        assert total_batches == math.ceil(12 / batch_size)
        assert total_points == 12
        # Dispatch labels and evaluation labels agree.
        assert set(counts) == set(result.profile.workers())

    def test_per_worker_dispatch_points_match_tasks(self):
        """Each worker evaluated exactly the points dispatched to it."""
        result = self._profiled(jobs=3, batch_size=2)
        counts = result.profile.dispatch_counts()
        workers = result.profile.workers()
        for name, c in counts.items():
            assert c["points"] == int(workers[name]["tasks"]), name

    def test_serial_dispatch_is_one_main_process_batch(self):
        result = self._profiled(jobs=1)
        counts = result.profile.dispatch_counts()
        assert counts == {"MainProcess": {"batches": 1, "points": 12}}

    def test_as_dict_carries_dispatches(self):
        blob = self._profiled(jobs=2, batch_size=4).profile.as_dict()
        assert "dispatches" in blob
        assert sum(c["points"] for c in blob["dispatches"].values()) == 12


class TestWarmResumeProfile:
    def test_warm_resume_is_pure_cache_traffic(self, tmp_path):
        explore(_space(), plain_eval, objectives=OBJS,
                cache=EvalCache(tmp_path), jobs=2)
        warm = explore(_space(), plain_eval, objectives=OBJS,
                       cache=EvalCache(tmp_path), jobs=2, profile=True)
        profile = warm.profile
        assert profile.cache_hits == 12
        assert profile.cache_misses == 0
        assert profile.points == []
        assert profile.dispatches == []
        assert profile.dispatch_wall_s == 0.0

    def test_cold_run_cache_split_matches_result(self, tmp_path):
        result = explore(_space(), plain_eval, objectives=OBJS,
                         cache=EvalCache(tmp_path), jobs=2, profile=True)
        assert result.profile.cache_hits == result.cache_hits == 0
        assert result.profile.cache_misses == result.cache_misses == 12
