"""Tests for the standard ProTEA evaluator and its canonical space."""

import pytest

from repro.dse import (
    DEFAULT_OBJECTIVE_NAMES,
    OBJECTIVES,
    evaluate_point,
    explore,
    get_objectives,
    standard_space,
)

FAST = {"qps": 100.0, "duration_ms": 100.0, "seed": 0}


def _point(**overrides):
    point = {"model": "model2-lhc-trigger", "tiles_mha": 12, "tiles_ffn": 6,
             "format": "fix8", "devices": 1, "fleet": 1,
             "scheduler": "least-loaded"}
    point.update(overrides)
    return point


class TestStandardSpace:
    def test_axes(self):
        space = standard_space()
        assert space.names == ("model", "tiles_mha", "tiles_ffn", "format",
                               "devices", "fleet", "scheduler")

    def test_unknown_model_rejected_eagerly(self):
        with pytest.raises(KeyError):
            standard_space(models=("not-a-model",))


class TestGetObjectives:
    def test_default_has_at_least_three(self):
        names = [o.name for o in get_objectives()]
        assert tuple(names) == DEFAULT_OBJECTIVE_NAMES
        assert len(names) >= 3

    def test_subset_and_order_respected(self):
        objs = get_objectives(("power_w", "latency_ms"))
        assert [o.name for o in objs] == ["power_w", "latency_ms"]

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown objective"):
            get_objectives(("latency_ms", "carbon"))


class TestEvaluatePoint:
    def test_feasible_point_scores_all_objectives(self):
        metrics = evaluate_point(_point(), FAST)
        for obj in OBJECTIVES:
            assert obj.name in metrics, obj.name
            if obj.name in ("alert_minutes", "budget_burn"):
                # A healthy run legitimately scores zero alert time.
                assert metrics[obj.name] >= 0, obj.name
            else:
                assert metrics[obj.name] > 0, obj.name
        assert metrics["util_pct"] <= 100.0
        assert metrics["clock_mhz"] == pytest.approx(200.0)
        assert metrics["n_fpgas"] == 1

    def test_published_tiles_beat_worse_tiles_on_latency(self):
        best = evaluate_point(_point(tiles_mha=12, tiles_ffn=6), FAST)
        worse = evaluate_point(_point(tiles_mha=48, tiles_ffn=6), FAST)
        assert best["latency_ms"] < worse["latency_ms"]

    def test_infeasible_tiles_raise(self):
        with pytest.raises(ValueError, match="does not fit"):
            evaluate_point(_point(tiles_mha=6, tiles_ffn=3), FAST)

    def test_fix16_costs_more_area(self):
        fix8 = evaluate_point(_point(), FAST)
        fix16 = evaluate_point(_point(format="fix16", tiles_mha=48), FAST)
        assert fix16["util_pct"] > 0
        assert fix8["util_pct"] <= 100.0

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError, match="unknown datapath format"):
            evaluate_point(_point(format="int4"), FAST)

    def test_fleet_scales_throughput_and_power(self):
        one = evaluate_point(_point(), FAST)
        two = evaluate_point(_point(fleet=2), FAST)
        assert two["throughput_inf_s"] == pytest.approx(
            2 * one["throughput_inf_s"])
        assert two["power_w"] == pytest.approx(2 * one["power_w"])
        assert two["n_fpgas"] == 2

    def test_partitioned_point_uses_pipeline(self):
        single = evaluate_point(_point(model="bert-variant"), FAST)
        split = evaluate_point(_point(model="bert-variant", devices=2), FAST)
        assert split["n_fpgas"] == 2
        # Steady-state throughput improves; fill latency does not worsen.
        assert split["throughput_inf_s"] > single["throughput_inf_s"]
        assert split["power_w"] > single["power_w"]

    def test_workload_settings_affect_p99(self):
        light = evaluate_point(_point(model="bert-variant"),
                               {"qps": 2.0, "duration_ms": 1000.0})
        heavy = evaluate_point(_point(model="bert-variant"),
                               {"qps": 50.0, "duration_ms": 1000.0})
        assert heavy["p99_ms"] > light["p99_ms"]

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError, match="zero requests"):
            evaluate_point(_point(), {"qps": 0.001, "duration_ms": 1.0})

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            evaluate_point(_point(devices=0), FAST)


class TestEndToEnd:
    def test_standard_space_explore_smoke(self):
        space = standard_space(models=("model2-lhc-trigger",),
                               tiles_mha=(12, 48), tiles_ffn=(6,))
        result = explore(space, evaluate_point,
                         objectives=get_objectives(), settings=FAST)
        assert len(result.results) == 2
        assert all(r.ok for r in result.results)
        assert 1 <= len(result.frontier) <= 2
        # The frontier spans >= 3 objective dimensions.
        assert len(result.frontier[0].objectives) >= 3


class TestGenerationObjectives:
    def test_generation_metrics_present_and_sane(self):
        metrics = evaluate_point(_point(), FAST)
        assert metrics["ttft_p99_ms"] > 0
        assert metrics["tokens_per_s"] > 0

    def test_generation_objectives_selectable(self):
        objs = get_objectives(("ttft_p99_ms", "tokens_per_s"))
        assert [o.name for o in objs] == ["ttft_p99_ms", "tokens_per_s"]
        assert objs[0].goal == "min" and objs[1].goal == "max"

    def test_partitioned_point_scores_generation(self):
        metrics = evaluate_point(_point(model="bert-variant", devices=2),
                                 FAST)
        assert metrics["ttft_p99_ms"] > 0
        assert metrics["tokens_per_s"] > 0

    def test_pipeline_infeasible_decode_degrades_gracefully(self):
        """A 1-layer model on 2 devices has no pure-pipeline decode
        split; the point must still score (single-device decode path),
        not error out."""
        metrics = evaluate_point(_point(devices=2), FAST)
        assert metrics["tokens_per_s"] > 0

    def test_fleet_scales_generation_tokens(self):
        one = evaluate_point(_point(devices=2, model="bert-variant"), FAST)
        two = evaluate_point(_point(devices=2, model="bert-variant",
                                    fleet=2), FAST)
        assert two["tokens_per_s"] == pytest.approx(
            2 * one["tokens_per_s"])

    def test_gen_objectives_gate_skips_simulation(self):
        metrics = evaluate_point(_point(), dict(FAST,
                                                gen_objectives=False))
        assert "ttft_p99_ms" not in metrics
        assert "tokens_per_s" not in metrics
        assert metrics["latency_ms"] > 0  # rest of the point unaffected

    def test_unscoreable_generation_corner_raises(self):
        """devices>1 with no pipeline decode split AND a model too big
        for one device must raise (an error record), never emit NaN
        objectives that would be undominatable on a frontier."""
        from repro.core import ProTEA
        from repro.dse.objectives import _generation_metrics
        from repro.isa import SynthParams
        from repro.nn import TransformerConfig

        accel = ProTEA.synthesize(SynthParams(max_layers=2))
        cfg = TransformerConfig(name="too-deep", d_model=64, num_heads=2,
                                num_layers=3, seq_len=16)
        with pytest.raises(ValueError, match="unscoreable"):
            _generation_metrics(accel, cfg, devices=4, fleet=1,
                                opts=dict(FAST, link="aurora",
                                          gen_prompt=8, gen_output=8,
                                          gen_slots=2, gen_qps=20.0))


class TestWatchObjectives:
    def test_watch_metrics_present_and_nonnegative(self):
        metrics = evaluate_point(_point(), FAST)
        assert metrics["alert_minutes"] >= 0
        assert metrics["budget_burn"] >= 0

    def test_watch_objectives_selectable(self):
        objs = get_objectives(("alert_minutes", "budget_burn"))
        assert [o.goal for o in objs] == ["min", "min"]

    def test_watch_gate_skips_watchdog(self):
        metrics = evaluate_point(_point(), dict(FAST,
                                                watch_objectives=False))
        assert "alert_minutes" not in metrics
        assert "budget_burn" not in metrics
        assert metrics["availability"] > 0  # failure run still scored

    def test_watch_without_fail_objectives_still_scores(self):
        """The watchdog rides the failure-injected rerun, so selecting
        only watch objectives must still trigger that run."""
        metrics = evaluate_point(_point(), dict(FAST,
                                                fail_objectives=False))
        assert "availability" not in metrics
        assert metrics["budget_burn"] >= 0

    def test_tighter_slo_burns_more_budget(self):
        loose = evaluate_point(_point(), dict(FAST, watch_slo_ms=50.0))
        tight = evaluate_point(_point(), dict(FAST, watch_slo_ms=0.01))
        assert tight["budget_burn"] >= loose["budget_burn"]
        assert tight["budget_burn"] > 0

    def test_watch_metrics_deterministic(self):
        a = evaluate_point(_point(), FAST)
        b = evaluate_point(_point(), FAST)
        assert a["alert_minutes"] == b["alert_minutes"]
        assert a["budget_burn"] == b["budget_burn"]
