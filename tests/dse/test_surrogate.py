"""Surrogate prescreen tests: exactness, queueing, frontier safety.

Three layers of assurance that the prescreen cannot cost us a
frontier point:

* unit: the Erlang-C queueing estimate behaves (bounds, monotonicity,
  the known M/M/1 closed form);
* agreement: on the analytic axes the surrogate returns *exactly* the
  full evaluator's numbers — same models, shared helpers — and raises
  for exactly the infeasible corners;
* golden + property: on real and randomized scenarios, a prescreened
  sweep's frontier equals the brute-force frontier (the structural
  guarantee: whole non-dominated fronts survive, and Pareto domination
  is invariant under strictly monotone per-objective transforms).
"""

import math
from random import Random

import pytest

from repro.dse import (
    Axis,
    Objective,
    SearchSpace,
    erlang_c,
    evaluate_point,
    explore,
    get_objectives,
    standard_space,
    surrogate_point,
)
from repro.dse.surrogate import SURROGATE_OBJECTIVE_NAMES

#: Simulations off: the golden sweeps only need the serving sim.
FAST = {"qps": 1000.0, "duration_ms": 500.0, "seed": 0,
        "gen_objectives": False, "fail_objectives": False,
        "watch_objectives": False}


class TestErlangC:
    def test_bounds(self):
        assert erlang_c(4, 0.0) == 0.0
        assert erlang_c(4, 4.0) == 1.0
        assert erlang_c(4, 9.9) == 1.0
        assert 0.0 < erlang_c(4, 2.0) < 1.0

    def test_mm1_closed_form(self):
        """For c=1 the wait probability is exactly rho."""
        for rho in (0.1, 0.5, 0.9):
            assert erlang_c(1, rho) == pytest.approx(rho)

    def test_monotone_in_load(self):
        probs = [erlang_c(8, e / 10) for e in range(1, 80)]
        assert all(a < b for a, b in zip(probs, probs[1:]))

    def test_more_servers_wait_less(self):
        assert erlang_c(8, 4.0) < erlang_c(5, 4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_c(0, 1.0)
        with pytest.raises(ValueError):
            erlang_c(4, -0.1)


class TestAgreementWithFullEvaluator:
    """The surrogate shares the analytic models with evaluate_point —
    on those axes the numbers must be equal, not merely close."""

    POINTS = [
        {"model": "bert-variant", "tiles_mha": 12, "tiles_ffn": 6,
         "format": "fix8", "devices": 1, "fleet": 1},
        {"model": "model2-lhc-trigger", "tiles_mha": 48, "tiles_ffn": 6,
         "format": "fix8", "devices": 1, "fleet": 2},
        {"model": "bert-variant", "tiles_mha": 12, "tiles_ffn": 6,
         "format": "fix8", "devices": 2, "fleet": 1},
    ]

    @pytest.mark.parametrize("point", POINTS,
                             ids=lambda p: f"{p['model']}-d{p['devices']}")
    def test_analytic_axes_exact(self, point):
        full = evaluate_point(point, FAST)
        est = surrogate_point(point, FAST)
        for name in ("latency_ms", "throughput_inf_s", "power_w",
                     "util_pct"):
            assert est[name] == full[name], name

    def test_p99_estimate_is_sane(self):
        """The tail estimate at least covers the service time and stays
        within the saturation penalty."""
        point = self.POINTS[0]
        est = surrogate_point(point, FAST)
        assert est["p99_ms"] >= est["latency_ms"]
        assert est["p99_ms"] <= est["latency_ms"] + FAST["duration_ms"]

    def test_infeasible_corner_raises_like_the_evaluator(self):
        bad = {"model": "bert-variant", "tiles_mha": 8, "tiles_ffn": 3,
               "format": "fix8", "devices": 1, "fleet": 1}
        with pytest.raises(ValueError, match="does not fit"):
            evaluate_point(bad, FAST)
        with pytest.raises(ValueError, match="does not fit"):
            surrogate_point(bad, FAST)

    def test_estimates_only_known_names(self):
        est = surrogate_point(self.POINTS[0], dict(FAST,
                                                   gen_objectives=True))
        assert set(est) <= set(SURROGATE_OBJECTIVE_NAMES)
        assert all(math.isfinite(v) for v in est.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            surrogate_point({"model": "bert-variant", "devices": 0}, FAST)


class TestGoldenFrontierSafety:
    """Prescreened sweeps of real scenarios keep the full evaluator's
    frontier — points, objective values, and error records."""

    def _frontier(self, result):
        return [(r.point, r.objectives) for r in result.frontier]

    def _run(self, space, settings, **kwargs):
        return explore(space, evaluate_point,
                       objectives=get_objectives(), settings=settings,
                       **kwargs)

    def _assert_prescreen_safe(self, space, settings, keep=0.25):
        brute = self._run(space, settings)
        fast = self._run(space, settings, strategy="prescreen",
                         strategy_options={"inner": "grid", "keep": keep})
        assert self._frontier(fast) == self._frontier(brute)
        assert fast.prescreen["screened_out"] > 0  # it actually screened
        return brute, fast

    def test_single_device_grid(self):
        space = standard_space(
            models=("bert-variant", "model2-lhc-trigger"),
            tiles_mha=(8, 12, 48), tiles_ffn=(3, 6))
        brute, fast = self._assert_prescreen_safe(space, FAST)
        assert fast.n_evaluated < brute.n_evaluated

    def test_partitioned_devices_grid(self):
        space = standard_space(models=("bert-variant",),
                               tiles_mha=(12, 48), tiles_ffn=(6,),
                               devices=(1, 2), fleets=(1, 2))
        self._assert_prescreen_safe(space, FAST, keep=0.34)

    def test_infeasible_corners_keep_their_error_records(self):
        """Unscoreable points are forwarded, so the full evaluator's
        authoritative errors appear in the prescreened results too."""
        space = standard_space(models=("bert-variant",),
                               tiles_mha=(8, 12, 48), tiles_ffn=(3, 6))
        brute = self._run(space, FAST)
        fast = self._run(space, FAST, strategy="prescreen",
                         strategy_options={"inner": "grid", "keep": 0.25})
        brute_errors = {(str(r.point), r.error)
                        for r in brute.results if not r.ok}
        fast_errors = {(str(r.point), r.error)
                       for r in fast.results if not r.ok}
        assert brute_errors
        assert brute_errors == fast_errors
        assert self._frontier(fast) == self._frontier(brute)


def monotone_eval(point, settings):
    """Toy ground truth over a 2-axis space."""
    return {"u": float(point["a"] * point["b"] + point["a"]),
            "v": float(point["a"] - 2.0 * point["b"])}


class TestMonotoneSurrogateProperty:
    """Seeded property check of the structural guarantee: any surrogate
    that is a strictly increasing transform of the true objectives
    preserves domination, hence fronts, hence the frontier — for every
    seed, keep fraction, and space shape tried."""

    OBJS = (Objective("u", "min"), Objective("v", "max"))

    @staticmethod
    def _transform(rng):
        scale = rng.uniform(0.1, 5.0)
        shift = rng.uniform(-10.0, 10.0)
        cube = rng.random() < 0.5
        def f(x):
            y = scale * x + shift
            return y ** 3 if cube else y
        return f

    def test_never_drops_a_frontier_point(self):
        rng = Random(2026)
        for trial in range(20):
            n = rng.randint(3, 6)
            m = rng.randint(2, 5)
            space = SearchSpace((Axis("a", tuple(range(1, n + 1))),
                                 Axis("b", tuple(range(1, m + 1)))))
            fu, fv = self._transform(rng), self._transform(rng)

            def warped(point, settings, fu=fu, fv=fv):
                true = monotone_eval(point, settings)
                return {"u": fu(true["u"]), "v": fv(true["v"])}

            keep = rng.choice([0.1, 0.25, 0.5])
            brute = explore(space, monotone_eval, objectives=self.OBJS)
            fast = explore(space, monotone_eval, objectives=self.OBJS,
                           strategy="prescreen",
                           strategy_options={"inner": "grid",
                                             "surrogate": warped,
                                             "keep": keep,
                                             "min_keep": 1})
            assert ([(r.point, r.objectives) for r in fast.frontier]
                    == [(r.point, r.objectives) for r in brute.frontier]), (
                f"trial {trial}: keep={keep}, space {n}x{m}")
