"""Tests for alert rules and the streaming SLO watchdog."""

import pytest

from repro.obs import (
    Alert,
    AnomalyDetector,
    BurnRateRule,
    SustainedRule,
    ThresholdRule,
    TraceRecorder,
    Watchdog,
    compose,
)
from repro.serving import (
    LengthSampler,
    ModelMix,
    PoissonArrivals,
    attach_generation_lengths,
    fixed_size,
    summarize,
    summarize_generation,
)
from repro.serving.cluster import ClusterSimulator
from repro.serving.generation import GenerationClusterSimulator
from repro.sim import FailurePlan

MIX = ModelMix({"model2-lhc-trigger": 2.0, "model1-peng-isqed21": 1.0})


class TestAlert:
    def test_duration_and_dict(self):
        a = Alert("burn_rate", 10.0, 35.0, peak=4.2)
        assert a.duration_ms == 25.0
        d = a.as_dict()
        assert d["rule"] == "burn_rate"
        assert d["duration_ms"] == 25.0
        assert d["open_at_end"] is False


class TestThresholdRule:
    def test_opens_and_closes(self):
        rule = ThresholdRule("queue", threshold=5.0)
        rule.observe(0.0, 3.0)
        assert not rule.firing
        rule.observe(1.0, 8.0)
        assert rule.firing
        rule.observe(2.0, 9.0)  # peak updates while open
        rule.observe(3.0, 2.0)
        assert not rule.firing
        assert rule.alerts == [Alert("queue", 1.0, 3.0, 9.0)]
        assert rule.total_alert_ms() == 2.0
        assert rule.summary() == {"alerts": 1, "alert_ms": 2.0}

    def test_sustain_delays_open(self):
        rule = ThresholdRule("util", threshold=0.9, sustain_ms=10.0)
        rule.observe(0.0, 1.0)
        rule.observe(5.0, 1.0)
        assert not rule.firing  # above for only 5 ms
        rule.observe(12.0, 1.0)
        assert rule.firing
        rule.observe(20.0, 0.5)
        assert rule.alerts[0].t_open_ms == 12.0

    def test_dip_resets_sustain_clock(self):
        rule = ThresholdRule("util", threshold=0.9, sustain_ms=10.0)
        rule.observe(0.0, 1.0)
        rule.observe(8.0, 0.1)  # dip
        rule.observe(9.0, 1.0)
        rule.observe(15.0, 1.0)  # only 6 ms above since the dip
        assert not rule.firing

    def test_negative_sustain_rejected(self):
        with pytest.raises(ValueError, match="sustain_ms"):
            ThresholdRule("x", 1.0, sustain_ms=-1.0)

    def test_finalize_marks_open_at_end(self):
        rule = ThresholdRule("down", threshold=0.0)
        rule.observe(7.0, 1.0)
        rule.finalize(50.0)
        assert rule.alerts == [Alert("down", 7.0, 50.0, 1.0,
                                     open_at_end=True)]
        assert not rule.firing


class TestSustainedRule:
    def test_requires_positive_sustain(self):
        with pytest.raises(ValueError, match="sustain_ms > 0"):
            SustainedRule("q", 5.0, sustain_ms=0.0)

    def test_behaves_like_sustained_threshold(self):
        rule = SustainedRule("q", 5.0, sustain_ms=4.0)
        rule.observe(0.0, 10.0)
        rule.observe(4.0, 10.0)
        assert rule.firing


class TestBurnRateRule:
    @pytest.mark.parametrize("kwargs,match", [
        ({"target": 0.0}, "target"),
        ({"target": 1.0}, "target"),
        ({"fast_ms": 0.0}, "windows"),
        ({"slow_ms": -1.0}, "windows"),
        ({"fast_ms": 200.0, "slow_ms": 100.0}, "slow window"),
        ({"threshold": 0.0}, "threshold"),
    ])
    def test_bad_params_rejected(self, kwargs, match):
        params = {"target": 0.99, "fast_ms": 100.0, "slow_ms": 500.0,
                  "threshold": 2.0}
        params.update(kwargs)
        with pytest.raises(ValueError, match=match):
            BurnRateRule(**params)

    def test_healthy_stream_never_fires(self):
        rule = BurnRateRule(0.99, 100.0, 500.0, threshold=2.0)
        for t in range(200):
            rule.observe(float(t), ok=True)
        assert not rule.firing
        assert rule.alerts == []
        assert rule.max_burn == 0.0

    def test_outage_fires_after_slow_window_confirms(self):
        rule = BurnRateRule(0.9, 50.0, 200.0, threshold=2.0)
        for t in range(100):
            rule.observe(float(t * 2), ok=True)
        assert not rule.firing
        # Total outage: every completion violates from t=200 on.  The
        # fast window saturates quickly; the slow window (still mostly
        # healthy history) gates the alert until enough evidence drains
        # in, then both burn at >= threshold.
        t = 200.0
        while not rule.firing and t < 500.0:
            rule.observe(t, ok=False)
            t += 2.0
        assert rule.firing
        fast, slow = rule.burn_rates()
        assert min(fast, slow) >= 2.0
        assert rule.max_burn >= 2.0

    def test_burn_rates_empty_windows_are_zero(self):
        rule = BurnRateRule(0.99, 10.0, 20.0, threshold=1.0)
        assert rule.burn_rates() == (0.0, 0.0)

    def test_burn_is_violation_fraction_over_budget(self):
        rule = BurnRateRule(0.9, 100.0, 100.0, threshold=100.0)
        outcomes = [False, True, True, False]  # 50% violations
        for i, ok in enumerate(outcomes):
            rule.observe(float(i), ok)
        fast, slow = rule.burn_rates()
        assert fast == pytest.approx(0.5 / 0.1)
        assert slow == pytest.approx(fast)


class TestWatchdogConstruction:
    def test_slo_must_be_positive(self):
        with pytest.raises(ValueError, match="slo_ms"):
            Watchdog(slo_ms=0.0)

    def test_queue_rule_optional(self):
        assert Watchdog(slo_ms=5.0).queue_rule is None
        wd = Watchdog(slo_ms=5.0, queue_threshold=8.0)
        assert wd.queue_rule is not None
        assert [r.name for r in wd.rules()] == [
            "burn_rate", "fleet_down", "queue_depth"]

    def test_extra_rules_fed_outcomes(self):
        extra = ThresholdRule("slow_request", threshold=100.0)
        wd = Watchdog(slo_ms=5.0, rules=(extra,))
        wd._outcome(1.0, 500.0)
        assert extra.firing
        assert "slow_request" in wd.summary()["rules"]

    def test_empty_run_summary(self):
        wd = Watchdog(slo_ms=5.0)
        wd.finish(0.0)
        s = wd.summary()
        assert s["completions"] == 0
        assert s["attainment"] is None
        assert s["budget_burn"] == 0.0
        assert s["time_to_first_alert_ms"] is None


@pytest.fixture(scope="module")
def serve_outage(default_accel):
    """Golden serve MTBF/MTTR scenario: a watched run plus its bare twin."""
    requests = PoissonArrivals(200, MIX, seed=0).generate(800.0)
    sim = ClusterSimulator(
        default_accel, 3, scheduler="model-affinity",
        batching=fixed_size(4), reprogram_latency_ms=5.0,
        failures=FailurePlan(mtbf_ms=300.0, mttr_ms=25.0, seed=7))
    bare = sim.run(requests)
    watchdog = Watchdog(slo_ms=20.0, target=0.99, fast_window_ms=100.0,
                        slow_window_ms=400.0, burn_threshold=2.0,
                        queue_threshold=12.0,
                        detector=AnomalyDetector(min_samples=16, debounce=3))
    watched = sim.run(requests, observer=watchdog)
    return sim, requests, bare, watched, watchdog


class TestWatchdogServe:
    def test_watched_run_byte_identical(self, serve_outage):
        _, _, bare, watched, _ = serve_outage
        assert watched.trace == bare.trace
        assert watched.records == bare.records
        assert watched.instances == bare.instances

    def test_attainment_matches_report(self, serve_outage):
        _, _, _, watched, watchdog = serve_outage
        report = summarize(watched, slo_ms=20.0,
                           watch=watchdog.summary())
        s = watchdog.summary()
        assert s["completions"] == len(watched.records)
        assert s["attainment"] == pytest.approx(report.slo_attainment)
        assert report.watch == s
        assert report.as_dict()["watch"] == s

    def test_fleet_down_alert_tracks_outages(self, serve_outage):
        _, _, bare, _, watchdog = serve_outage
        fails = [e[1] for e in bare.trace if e[0] == "fail"]
        assert fails, "scenario must inject at least one failure"
        down = watchdog.down_rule.alerts
        assert down
        # The first down alert opens exactly at the first fail event.
        assert down[0].t_open_ms == fails[0]

    def test_burn_rate_alert_opens_within_outage_window(self, serve_outage):
        _, _, bare, _, watchdog = serve_outage
        fails = [e[1] for e in bare.trace if e[0] == "fail"]
        recovers = [e[1] for e in bare.trace if e[0] == "recover"]
        burn = watchdog.burn_rule.alerts
        assert burn, "outage must blow the error budget"
        first = min(a.t_open_ms for a in burn)
        # Opens after degradation starts, within the faulted span of
        # the run (first failure .. last recovery + drain of the
        # displaced backlog, bounded by the run horizon).
        horizon = max(r.t_complete_ms for r in bare.records)
        assert fails[0] <= first <= max(max(recovers), horizon)
        assert watchdog.burn_rule.max_burn >= 2.0

    def test_anomaly_onset_is_deterministic(self, serve_outage):
        sim, requests, bare, _, watchdog = serve_outage
        assert watchdog.detector.onset_times, (
            "outage latencies must trip the changepoint detector")
        fails = [e[1] for e in bare.trace if e[0] == "fail"]
        assert watchdog.detector.onset_times[0] >= fails[0]
        # Re-run: byte-identical input -> byte-identical onsets.
        twin = Watchdog(slo_ms=20.0, target=0.99, fast_window_ms=100.0,
                        slow_window_ms=400.0, burn_threshold=2.0,
                        queue_threshold=12.0,
                        detector=AnomalyDetector(min_samples=16, debounce=3))
        sim.run(requests, observer=twin)
        assert twin.detector.onset_times == watchdog.detector.onset_times
        assert twin.summary() == watchdog.summary()

    def test_summary_shape(self, serve_outage):
        _, _, _, _, watchdog = serve_outage
        s = watchdog.summary()
        assert s["slo_ms"] == 20.0 and s["target"] == 0.99
        assert 0.0 < s["attainment"] < 1.0
        assert s["budget_burn"] > 0.0
        assert s["alerts"] == len(watchdog.alerts())
        assert s["alert_minutes"] > 0.0
        assert s["time_to_first_alert_ms"] == min(
            a.t_open_ms for a in watchdog.alerts())
        assert set(s["rules"]) == {"burn_rate", "fleet_down", "queue_depth"}

    def test_alerts_sorted_by_open_time(self, serve_outage):
        _, _, _, _, watchdog = serve_outage
        opens = [a.t_open_ms for a in watchdog.alerts()]
        assert opens == sorted(opens)

    def test_annotate_emits_alert_row(self, serve_outage):
        sim, requests, _, _, watchdog = serve_outage
        tracer = TraceRecorder()
        wd = Watchdog(slo_ms=20.0, target=0.99)
        sim.run(requests, observer=compose(tracer, wd))
        wd.annotate(tracer)
        doc = tracer.to_chrome()
        alert_tids = {e["tid"] for e in doc["traceEvents"]
                      if str(e.get("name", "")).startswith("alert:")}
        assert alert_tids == {10_000}
        onsets = [e for e in doc["traceEvents"]
                  if e.get("name") == "anomaly_onset"]
        assert len(onsets) == len(wd.detector.onsets)


@pytest.fixture(scope="module")
def generate_outage(default_accel):
    """Golden generate MTBF/MTTR scenario with preemption pressure."""
    arrivals = PoissonArrivals(200, MIX, seed=3).generate(400.0)
    requests = attach_generation_lengths(
        arrivals, LengthSampler("uniform", 8, 24),
        LengthSampler("geometric", 4, mean_extra=12.0), seed=5,
        max_total=default_accel.synth.max_seq_len)
    sim = GenerationClusterSimulator(
        default_accel, 2, slots=4, scheduler="least-loaded",
        failures=FailurePlan(mtbf_ms=250.0, mttr_ms=30.0, seed=11))
    bare = sim.run(requests)
    watchdog = Watchdog(slo_ms=30.0, target=0.9, fast_window_ms=50.0,
                        slow_window_ms=200.0, burn_threshold=1.5,
                        detector=AnomalyDetector(min_samples=16, debounce=2))
    watched = sim.run(requests, observer=watchdog)
    return sim, requests, bare, watched, watchdog


class TestWatchdogGenerate:
    def test_watched_run_byte_identical(self, generate_outage):
        _, _, bare, watched, _ = generate_outage
        assert watched.trace == bare.trace
        assert watched.records == bare.records

    def test_ttft_attainment_tracks_report(self, generate_outage):
        _, _, _, watched, watchdog = generate_outage
        report = summarize_generation(watched, ttft_slo_ms=30.0,
                                      watch=watchdog.summary())
        s = watchdog.summary()
        assert s["completions"] == len(watched.records)
        # The online TTFT bound is step-granular, so the watchdog's
        # attainment is a close, never-optimistic view of the report's.
        assert s["attainment"] <= report.slo_attainment + 1e-12
        assert s["attainment"] == pytest.approx(report.slo_attainment,
                                                abs=0.05)
        assert report.watch == s

    def test_ttft_bound_is_conservative(self, generate_outage):
        _, _, _, watched, watchdog = generate_outage
        violations = sum(
            1 for r in watched.records
            if r.t_first_token_ms - r.t_arrival_ms > 30.0)
        # First tokens land within the admitting step; the watchdog
        # pends them at step end, so it can only over-count violations.
        assert watchdog.violations >= violations
        assert watchdog.violations <= len(watched.records)

    def test_down_alert_and_deterministic_onsets(self, generate_outage):
        sim, requests, bare, _, watchdog = generate_outage
        fails = [e[1] for e in bare.trace if e[0] == "fail"]
        assert fails
        assert watchdog.down_rule.alerts
        assert watchdog.down_rule.alerts[0].t_open_ms == fails[0]
        twin = Watchdog(slo_ms=30.0, target=0.9, fast_window_ms=50.0,
                        slow_window_ms=200.0, burn_threshold=1.5,
                        detector=AnomalyDetector(min_samples=16, debounce=2))
        sim.run(requests, observer=twin)
        assert twin.summary() == watchdog.summary()
