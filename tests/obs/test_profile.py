"""Profilers: kernel hotspot attribution and DSE sweep instrumentation."""

from repro.obs import (
    DseProfile,
    KernelProfiler,
    render_dse_profile,
    render_kernel_profile,
)


class TestKernelProfiler:
    def test_record_accumulates_per_kind(self):
        p = KernelProfiler()
        p.record("arrival", 0.25)
        p.record("arrival", 0.25)
        p.record("free", 0.5)
        assert p.counts == {"arrival": 2, "free": 1}
        assert p.total_events == 3
        assert p.total_wall_s == 1.0

    def test_as_dict_shares_sum_to_one(self):
        p = KernelProfiler()
        p.record("a", 0.75)
        p.record("b", 0.25)
        d = p.as_dict()
        assert d["events"] == 2 and d["wall_s"] == 1.0
        assert d["by_kind"]["a"]["share"] == 0.75
        assert sum(v["share"] for v in d["by_kind"].values()) == 1.0

    def test_empty_profile_renders_without_division(self):
        p = KernelProfiler()
        assert p.as_dict()["by_kind"] == {}
        assert "0 event(s)" in render_kernel_profile(p)

    def test_render_orders_heaviest_first(self):
        p = KernelProfiler()
        p.record("light", 0.001)
        p.record("heavy", 0.9)
        out = render_kernel_profile(p)
        assert out.index("heavy") < out.index("light")
        assert "us/event" in out


class TestDseProfile:
    def _profile(self):
        p = DseProfile()
        p.cache_hits, p.cache_misses = 3, 2
        p.add_batch(2.0)
        p.add_point({"a": 1}, "w1", 0.5)
        p.add_point({"a": 2}, "w1", 0.3)
        p.add_point({"a": 3}, "w2", 1.2, error="boom")
        return p

    def test_worker_breakdown_idle_is_window_minus_busy(self):
        workers = self._profile().workers()
        assert workers["w1"] == {"tasks": 2, "busy_s": 0.8, "idle_s": 1.2}
        assert workers["w2"]["tasks"] == 1
        assert workers["w2"]["idle_s"] == 0.8

    def test_idle_clamped_non_negative(self):
        p = DseProfile()
        p.add_batch(0.1)
        p.add_point({"a": 1}, "w", 5.0)  # busy > window (clock skew)
        assert p.workers()["w"]["idle_s"] == 0.0

    def test_slowest_sorted_descending(self):
        slowest = self._profile().slowest(2)
        assert [p["wall_s"] for p in slowest] == [1.2, 0.5]

    def test_as_dict_shape(self):
        d = self._profile().as_dict()
        assert d["cache"] == {"hits": 3, "misses": 2}
        assert d["evaluations"] == 3
        assert d["eval_wall_s"] == 2.0 and d["dispatch_wall_s"] == 2.0
        assert set(d["workers"]) == {"w1", "w2"}
        assert d["slowest"][0]["error"] == "boom"

    def test_render_reports_cache_split_and_workers(self):
        out = render_dse_profile(self._profile())
        assert "3 cache hit(s), 2 miss(es)" in out
        assert "w1" in out and "w2" in out
        assert "Slowest evaluations" in out

    def test_render_empty_profile(self):
        out = render_dse_profile(DseProfile())
        assert "0 cache hit(s)" in out
