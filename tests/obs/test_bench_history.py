"""Tests for benchmark trend analytics (repro.obs.bench_history)."""

import json
from pathlib import Path

import pytest

from repro.obs import (
    bench_trend,
    check_gates,
    parse_gate,
    render_bench_trend,
)
from repro.obs.bench_history import _direction, load_history


def record(suite, metric, value, units="ms"):
    return {"suite": suite, "metric": metric, "value": value,
            "units": units}


class TestDirection:
    def test_name_beats_units(self):
        # "speedup" is higher-is-better by name even with a cost unit.
        assert _direction("kernel_speedup", "ms") == "max"

    def test_units_fallback(self):
        assert _direction("figure7", "ms") == "min"
        assert _direction("figure7", "inf/s") == "max"
        assert _direction("figure7", "x") is None


class TestBenchTrend:
    def test_single_record_is_new(self):
        rows = bench_trend([record("s", "latency_run", 4.0)])
        assert len(rows) == 1
        assert rows[0].flag == "new"
        assert rows[0].median is None and rows[0].rel_change is None

    def test_steady_metric_not_flagged(self):
        history = [record("s", "latency_run", v) for v in
                   (10.0, 10.2, 9.9, 10.1)]
        (row,) = bench_trend(history, rtol=0.10)
        assert row.flag == ""
        assert row.median == pytest.approx(10.0, rel=0.05)
        assert row.n == 4

    def test_latency_jump_flags_regression(self):
        history = [record("s", "latency_run", v) for v in
                   (10.0, 10.0, 10.0, 15.0)]
        (row,) = bench_trend(history, rtol=0.10)
        assert row.flag == "regression"
        assert row.rel_change == pytest.approx(0.5)

    def test_throughput_jump_flags_improvement(self):
        history = [record("s", "throughput_rps", v, units="req/s")
                   for v in (100.0, 100.0, 150.0)]
        (row,) = bench_trend(history)
        assert row.flag == "improvement"

    def test_unclassifiable_metric_never_flagged(self):
        history = [record("s", "mystery", v, units="x")
                   for v in (1.0, 100.0)]
        (row,) = bench_trend(history)
        assert row.direction is None and row.flag == ""

    def test_rolling_median_bounds_baseline(self):
        # Old slow values age out of a window-2 baseline.
        history = [record("s", "latency_run", v) for v in
                   (100.0, 10.0, 10.0, 10.0)]
        (row,) = bench_trend(history, window=2)
        assert row.median == 10.0
        assert row.flag == ""

    def test_single_fast_run_does_not_poison_baseline(self):
        history = [record("s", "latency_run", v) for v in
                   (10.0, 10.0, 5.0, 10.0)]  # one lucky run
        (row,) = bench_trend(history, rtol=0.10)
        assert row.flag == ""  # median baseline absorbs the outlier

    def test_malformed_records_skipped(self):
        history = [{"weird": 1}, record("s", "latency_run", 3.0),
                   {"suite": "s", "metric": "latency_run",
                    "value": "not-a-number"}]
        rows = bench_trend(history)
        assert len(rows) == 1 and rows[0].n == 1

    def test_groups_by_suite_and_metric(self):
        history = [record("a", "m", 1.0), record("b", "m", 2.0)]
        assert len(bench_trend(history)) == 2

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError, match="window"):
            bench_trend([], window=0)
        with pytest.raises(ValueError, match="rtol"):
            bench_trend([], rtol=-1.0)


class TestLoadHistory:
    def test_reads_array(self, tmp_path):
        path = tmp_path / "BENCH_results.json"
        path.write_text(json.dumps([record("s", "m", 1.0)]))
        assert load_history(path)[0]["metric"] == "m"

    def test_non_array_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"not": "a list"}')
        with pytest.raises(ValueError, match="JSON array"):
            load_history(path)

    def test_committed_history_parses_and_trends(self):
        path = Path(__file__).parents[2] / "benchmarks" / "output" / \
            "BENCH_results.json"
        rows = bench_trend(load_history(path))
        assert rows, "committed BENCH history must yield trend rows"
        assert any(r.metric == "dse_parallel_speedup_x" for r in rows)


class TestRenderBenchTrend:
    def test_table_and_tail(self):
        history = [record("s", "latency_run", v) for v in
                   (10.0, 10.0, 20.0)]
        text = render_bench_trend(bench_trend(history))
        assert "BENCH trend" in text
        assert "latency_run" in text
        assert "1 metric(s) tracked — 1 regression flag(s)" in text

    def test_no_flags_tail(self):
        text = render_bench_trend(bench_trend([record("s", "m", 1.0)]))
        assert "no regression flags" in text


class TestGates:
    def test_parse_gate(self):
        assert parse_gate("watch_overhead_x<=1.05") == (
            "watch_overhead_x", "<=", 1.05)
        assert parse_gate(" dse_parallel_speedup_x >= 1.0 ") == (
            "dse_parallel_speedup_x", ">=", 1.0)

    @pytest.mark.parametrize("text", ["m<1.0", "m==2", "<=1.0", "m<=",
                                      "m<=one"])
    def test_bad_gates_rejected(self, text):
        with pytest.raises(ValueError, match="invalid gate"):
            parse_gate(text)

    def test_gate_holds(self):
        rows = bench_trend([record("s", "watch_overhead_x", 1.02,
                                   units="x")])
        assert check_gates(rows, [("watch_overhead_x", "<=", 1.05)]) == []

    def test_gate_violation_message(self):
        rows = bench_trend([record("s", "watch_overhead_x", 1.5,
                                   units="x")])
        (msg,) = check_gates(rows, [("watch_overhead_x", "<=", 1.05)])
        assert "watch_overhead_x<=1.05" in msg
        assert "violates the bound" in msg

    def test_missing_metric_is_a_violation(self):
        (msg,) = check_gates([], [("ghost", ">=", 1.0)])
        assert "not found in history" in msg

    def test_ge_gate(self):
        rows = bench_trend([record("s", "speedup_x", 0.8, units="x")])
        assert check_gates(rows, [("speedup_x", ">=", 1.0)])
        rows = bench_trend([record("s", "speedup_x", 1.8, units="x")])
        assert check_gates(rows, [("speedup_x", ">=", 1.0)]) == []
