"""Metrics: instruments, registry export, and grid-sampling discipline."""

import json
import math

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, MetricsSampler


class TestInstruments:
    def test_counter_accumulates_and_rejects_decrease(self):
        c = Counter("n")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_gauge_set_and_add(self):
        g = Gauge("depth")
        g.set(4.0)
        g.add(-1.5)
        assert g.value == 2.5

    def test_histogram_summary(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4 and s["mean"] == 2.5 and s["max"] == 4.0

    def test_histogram_empty_percentile_raises(self):
        h = Histogram("lat")
        with pytest.raises(ValueError, match="no samples"):
            h.percentile(99)
        with pytest.raises(ValueError, match="no samples"):
            h.mean()

    def test_histogram_empty_summary_is_nan_not_crash(self):
        s = Histogram("lat").summary()
        assert s["count"] == 0
        assert all(math.isnan(s[k]) for k in ("mean", "p50", "p95",
                                              "p99", "max"))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_cross_kind_name_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("x")

    def test_sample_snapshots_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(3)
        reg.gauge("d").set(2.0)
        reg.histogram("h").observe(1.0)  # histograms never join the series
        row = reg.sample(10.0)
        assert row == {"t_ms": 10.0, "n": 3.0, "d": 2.0}
        assert reg.series == [row]

    def test_csv_union_of_columns_blank_for_unsampled(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.sample(0.0)
        reg.gauge("late").set(7.0)  # appears only from the second row on
        reg.sample(1.0)
        lines = reg.to_csv().splitlines()
        assert lines[0] == "t_ms,a,late"
        assert lines[1].endswith(",")  # 'late' blank in the first row
        assert lines[2] == "1.0,1.0,7.0"

    def test_dump_csv_vs_json_by_suffix(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.sample(0.0)
        csv_path, json_path = tmp_path / "m.csv", tmp_path / "m.json"
        reg.dump(csv_path)
        reg.dump(json_path, run_config={"seed": 1})
        assert csv_path.read_text().startswith("t_ms,")
        loaded = json.loads(json_path.read_text())
        assert loaded["run_config"] == {"seed": 1}
        assert set(loaded) == {"run_config", "counters", "gauges",
                               "histograms", "series"}


class TestSampler:
    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError, match="grid_ms"):
            MetricsSampler(grid_ms=0.0)
        with pytest.raises(ValueError, match="grid_ms"):
            MetricsSampler(grid_ms=-5.0)

    def test_grid_rows_precede_the_event_at_the_tick(self):
        s = MetricsSampler(grid_ms=10.0)
        s(("arrive", 0.0, 0, "m", 0))   # tick at 0 sampled *before* this
        s(("arrive", 25.0, 1, "m", 0))  # ticks at 10 and 20 flushed first
        rows = s.registry.series
        assert [r["t_ms"] for r in rows] == [0.0, 10.0, 20.0]
        assert rows[0]["arrivals"] == 0.0  # world as of t=0, pre-event
        assert rows[1]["arrivals"] == 1.0

    def test_grid_coarser_than_horizon_still_exports_final_sample(self):
        s = MetricsSampler(grid_ms=10_000.0)
        s(("arrive", 1.0, 0, "m", 0))
        s(("arrive", 2.0, 1, "m", 0))
        s.finish(3.0)
        rows = s.registry.series
        # One tick at t=0 plus the end-state flush; interior is empty.
        assert [r["t_ms"] for r in rows] == [0.0, 3.0]
        assert rows[-1]["arrivals"] == 2.0

    def test_finish_is_idempotent(self):
        s = MetricsSampler(grid_ms=5.0)
        s(("arrive", 1.0, 0, "m", 0))
        s.finish(2.0)
        n = len(s.registry.series)
        s.finish(50.0)
        assert len(s.registry.series) == n

    def test_serve_lifecycle_conserves_gauges(self):
        s = MetricsSampler(grid_ms=100.0)
        s(("arrive", 0.0, 0, "m", 1))
        s(("arrive", 0.5, 1, "m", 1))
        s(("dispatch", 1.0, 1, "m", 2, 0.0))
        s(("free", 4.0, 1))
        s.finish(5.0)
        reg = s.registry
        assert reg.counters["arrivals"].value == 2
        assert reg.counters["dispatches"].value == 1
        assert reg.counters["completions"].value == 2  # batch of 2
        assert reg.gauges["queued"].value == 0.0
        assert reg.gauges["in_flight"].value == 0.0
        assert reg.gauges["queued_i1"].value == 0.0

    def test_generate_lifecycle_tokens_and_steps(self):
        s = MetricsSampler(grid_ms=100.0)
        s(("arrive", 0.0, 0, "m", 0))
        s(("admit", 1.0, 0, 0, 16, 8))
        s(("step", 2.0, 0, "m", 1, 2, 0.75))
        s(("finish", 9.0, 0, 0))
        reg = s.registry
        assert reg.counters["steps"].value == 1
        assert reg.counters["tokens"].value == 3  # admitted + decoding
        assert reg.histograms["step_ms"].samples == [0.75]
        assert reg.gauges["in_flight"].value == 0.0

    def test_failure_folds_levels_and_requeue_restores(self):
        s = MetricsSampler(grid_ms=100.0)
        s(("arrive", 0.0, 0, "m", 0))
        s(("arrive", 0.1, 1, "m", 0))
        s(("dispatch", 1.0, 0, "m", 1, 0.0))
        s(("fail", 2.0, 0))           # 1 in flight + 1 queued, both folded
        reg = s.registry
        assert reg.gauges["down"].value == 1.0
        assert reg.gauges["in_flight"].value == 0.0
        assert reg.gauges["queued"].value == 0.0
        s(("requeue", 2.0, 0, -1))    # parked: nothing capable is up
        s(("requeue", 2.0, 1, -1))
        assert reg.gauges["parked"].value == 2.0
        s(("recover", 8.0, 0))
        assert reg.gauges["down"].value == 0.0
        assert reg.gauges["parked"].value == 0.0  # engine re-routes all
        s(("requeue", 8.0, 0, 0))
        s(("requeue", 8.0, 1, 0))
        assert reg.gauges["queued"].value == 2.0
        assert reg.counters["requeues"].value == 4
