"""Observer/profiler hooks end to end: kernel, engines, DSE, composition.

The headline property — instrumented runs are byte-identical to bare
ones on the six golden scenarios — is pinned in
``tests/sim/test_trace_identity.py``; these tests cover the hook
mechanics (attach rules, composition, finish flushing) and the failure
paths the goldens don't reach.
"""

import pytest

from repro.dse import Axis, EvalCache, Objective, SearchSpace, explore
from repro.obs import KernelProfiler, MetricsSampler, TraceRecorder, compose
from repro.serving import (
    LengthSampler,
    ModelMix,
    PoissonArrivals,
    attach_generation_lengths,
    fixed_size,
)
from repro.serving.cluster import ClusterSimulator
from repro.serving.generation import GenerationClusterSimulator
from repro.sim import FailurePlan
from repro.sim.kernel import Simulation

MIX = ModelMix({"model2-lhc-trigger": 2.0, "model1-peng-isqed21": 1.0})


class TestKernelHooks:
    def test_attach_observer_mid_run_raises(self):
        sim = Simulation()
        caught = []

        def handler(payload, now):
            with pytest.raises(RuntimeError, match="mid-run"):
                sim.attach_observer(lambda e: None)
            caught.append(True)

        sim.on("tick", handler)
        sim.schedule(1.0, 0, ("tick",))
        sim.run_events()
        assert caught

    def test_attach_profiler_mid_run_raises(self):
        sim = Simulation()
        caught = []

        def handler(payload, now):
            with pytest.raises(RuntimeError, match="mid-run"):
                sim.attach_profiler(KernelProfiler())
            caught.append(True)

        sim.on("tick", handler)
        sim.schedule(1.0, 0, ("tick",))
        sim.run_events()
        assert caught

    def test_double_attach_composes_and_finish_fans_out(self):
        sim = Simulation()
        seen_a, seen_b, finished = [], [], []
        sim.attach_observer(seen_a.append)

        class B:
            def __call__(self, event):
                seen_b.append(event)

            def finish(self, t_ms):
                finished.append(t_ms)

        sim.attach_observer(B())
        sim.observer(("x", 1.0))
        assert seen_a == seen_b == [("x", 1.0)]
        sim.clock.now_ms = 7.0
        sim._finish_observer()
        assert finished == [7.0]

    def test_profiler_sees_every_dispatched_event(self):
        sim = Simulation()
        sim.on("tick", lambda payload, now: None)
        sim.on("tock", lambda payload, now: None)
        profiler = KernelProfiler()
        sim.attach_profiler(profiler)
        for t in range(5):
            sim.schedule(float(t), 0, ("tick",))
        sim.schedule(9.0, 0, ("tock",))
        sim.run_events()
        assert profiler.counts == {"tick": 5, "tock": 1}
        assert all(v >= 0.0 for v in profiler.wall_s.values())


class TestComposeHelper:
    def test_compose_drops_nones_and_unwraps_singles(self):
        assert compose(None, None) is None
        tracer = TraceRecorder()
        assert compose(None, tracer, None) is tracer

    def test_composite_forwards_events_and_finish(self):
        tracer, sampler = TraceRecorder(), MetricsSampler(grid_ms=50.0)
        both = compose(tracer, sampler)
        both(("arrive", 1.0, 0, "m", 0))
        assert len(tracer.events) == 2  # thread-name meta + instant
        assert sampler.registry.counters["arrivals"].value == 1
        both.finish(2.0)
        assert sampler.registry.series[-1]["t_ms"] == 2.0


class TestServeWithFailures:
    def test_observed_run_identical_and_gauges_conserved(self, default_accel):
        requests = PoissonArrivals(300, MIX, seed=5).generate(400.0)
        sim = ClusterSimulator(
            default_accel, 3, scheduler="model-affinity",
            batching=fixed_size(4), reprogram_latency_ms=5.0,
            failures=FailurePlan(mtbf_ms=120.0, mttr_ms=25.0, seed=9))
        bare = sim.run(requests)
        tracer, sampler = TraceRecorder(), MetricsSampler(grid_ms=20.0)
        observed = sim.run(requests, observer=compose(tracer, sampler),
                           profiler=KernelProfiler())
        assert observed.trace == bare.trace
        assert observed.records == bare.records
        assert observed.availability == bare.availability
        reg = sampler.registry
        # Displaced work re-enters through observer-only requeues, so
        # the drained run's level gauges return exactly to zero.
        assert reg.counters["failures"].value > 0
        assert reg.counters["requeues"].value > 0
        for name, gauge in reg.gauges.items():
            if name != "down":
                assert gauge.value == 0.0, f"{name} not conserved"
        assert reg.counters["arrivals"].value == len(requests)
        # Failed dispatches requeue and retry, so every request
        # eventually completes exactly once.
        assert reg.counters["completions"].value == len(bare.records)


class TestGenerateWithFailures:
    def test_observed_run_identical_and_trace_spans_close(self, default_accel):
        arrivals = PoissonArrivals(25, MIX, seed=6).generate(400.0)
        requests = attach_generation_lengths(
            arrivals, LengthSampler("uniform", 8, 16),
            LengthSampler("fixed", 12), seed=3,
            max_total=default_accel.synth.max_seq_len)
        sim = GenerationClusterSimulator(
            default_accel, 2, slots=3, scheduler="least-loaded",
            failures=FailurePlan(mtbf_ms=150.0, mttr_ms=30.0, seed=11))
        bare = sim.run(requests)
        tracer, sampler = TraceRecorder(), MetricsSampler(grid_ms=20.0)
        observed = sim.run(requests, observer=compose(tracer, sampler))
        assert observed.trace == bare.trace
        assert observed.records == bare.records
        # finish() ran (engines flush observers when the queue drains):
        # every opened span is closed, so the recorder holds no state.
        assert not tracer._open_seqs and not tracer._open_batches
        assert sampler.registry.counters["steps"].value > 0
        assert sampler.registry.histograms["step_ms"].count > 0


def _toy_eval(point, settings):
    return {"y": float(point["a"] * point["b"]), "z": float(point["a"])}


class TestDseProfileIntegration:
    OBJS = (Objective("y", "min"), Objective("z", "max"))

    def _space(self):
        return SearchSpace((Axis("a", (1, 2, 3)), Axis("b", (1, 2))))

    def test_profiled_sweep_scores_identically(self):
        bare = explore(self._space(), _toy_eval, objectives=self.OBJS)
        prof = explore(self._space(), _toy_eval, objectives=self.OBJS,
                       profile=True)
        assert ([r.objectives for r in bare.results]
                == [r.objectives for r in prof.results])
        assert bare.profile is None
        assert prof.profile is not None
        assert len(prof.profile.points) == 6
        assert prof.profile.cache_misses == 0  # no cache configured
        assert "MainProcess" in prof.profile.workers()

    def test_warm_cache_profile_shows_all_hits(self, tmp_path):
        cache = EvalCache(tmp_path / "cache")
        explore(self._space(), _toy_eval, objectives=self.OBJS, cache=cache)
        warm = explore(self._space(), _toy_eval, objectives=self.OBJS,
                       cache=cache, profile=True)
        assert warm.profile.cache_hits == 6
        assert warm.profile.cache_misses == 0
        assert warm.profile.points == []  # nothing evaluated fresh

    def test_as_dict_includes_profile_only_when_enabled(self):
        bare = explore(self._space(), _toy_eval, objectives=self.OBJS)
        prof = explore(self._space(), _toy_eval, objectives=self.OBJS,
                       profile=True)
        assert "profile" not in bare.as_dict()
        assert prof.as_dict()["profile"]["evaluations"] == 6
