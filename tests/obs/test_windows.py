"""Tests for the windowed time-series engine (repro.obs.windows)."""

import pytest

from repro.obs import GaugeWindow, MetricsSampler, SlidingWindow, TumblingWindow
from repro.obs.windows import AGGREGATORS, windowed_series
from repro.serving import ModelMix, PoissonArrivals
from repro.serving.cluster import ClusterSimulator


class TestSlidingWindow:
    def test_width_must_be_positive(self):
        for bad in (0.0, -5.0):
            with pytest.raises(ValueError, match="must be > 0"):
                SlidingWindow(bad)

    def test_eviction_keeps_half_open_interval(self):
        w = SlidingWindow(100.0)
        w.push(0.0, 1.0)
        w.push(50.0, 2.0)
        w.push(100.0, 3.0)
        # (t - width, t] = (0, 100]: the t=0 sample is evicted.
        assert w.values() == [2.0, 3.0]
        assert len(w) == 2

    def test_advance_without_push_evicts(self):
        w = SlidingWindow(10.0)
        w.push(0.0, 1.0)
        w.push(5.0, 2.0)
        w.advance(20.0)
        assert len(w) == 0

    def test_aggregates(self):
        w = SlidingWindow(1000.0)
        for t, v in enumerate([4.0, 1.0, 3.0, 2.0]):
            w.push(float(t), v)
        assert w.count == 4
        assert w.sum == pytest.approx(10.0)
        assert w.mean() == pytest.approx(2.5)
        assert w.min() == 1.0
        assert w.max() == 4.0
        assert w.percentile(50) in (2.0, 3.0)

    def test_empty_aggregates_raise(self):
        w = SlidingWindow(10.0)
        for op in (w.mean, w.min, w.max):
            with pytest.raises(ValueError):
                op()
        with pytest.raises(ValueError):
            w.percentile(99)

    def test_rate_per_s(self):
        w = SlidingWindow(500.0)
        for t in range(10):
            w.push(float(t * 10), 1.0)
        # 10 events in a 500 ms window -> 20 events/s.
        assert w.rate_per_s() == pytest.approx(20.0)


class TestTumblingWindow:
    def test_width_must_be_positive(self):
        with pytest.raises(ValueError, match="must be > 0"):
            TumblingWindow(-1.0)

    def test_mean_per_bucket(self):
        w = TumblingWindow(10.0, agg="mean")
        w.push(1.0, 2.0)
        w.push(9.0, 4.0)
        w.push(15.0, 10.0)  # closes bucket [0, 10)
        w.flush(15.0)
        assert w.rows == [(0.0, 3.0), (10.0, 10.0)]

    def test_count_and_rate_emit_zero_for_gaps(self):
        w = TumblingWindow(10.0, agg="count")
        w.push(5.0, 1.0)
        w.push(35.0, 1.0)  # skips buckets [10,20) and [20,30)
        w.flush(35.0)
        assert w.rows == [(0.0, 1.0), (10.0, 0.0), (20.0, 0.0), (30.0, 1.0)]

    def test_value_aggs_skip_empty_buckets(self):
        w = TumblingWindow(10.0, agg="max")
        w.push(5.0, 7.0)
        w.push(25.0, 9.0)
        w.flush(25.0)
        assert w.rows == [(0.0, 7.0), (20.0, 9.0)]

    def test_backwards_time_rejected(self):
        w = TumblingWindow(10.0)
        w.push(25.0, 1.0)
        with pytest.raises(ValueError, match="closed bucket"):
            w.push(5.0, 1.0)

    def test_unknown_agg_rejected(self):
        with pytest.raises(ValueError, match="unknown aggregator"):
            TumblingWindow(10.0, agg="median-of-medians")

    def test_callable_agg(self):
        w = TumblingWindow(10.0, agg=lambda vs: max(vs) - min(vs))
        w.push(1.0, 3.0)
        w.push(2.0, 8.0)
        w.flush(2.0)
        assert w.rows == [(0.0, 5.0)]

    @pytest.mark.parametrize("agg", AGGREGATORS)
    def test_every_documented_agg_accepted(self, agg):
        w = TumblingWindow(10.0, agg=agg)
        w.push(1.0, 2.0)
        w.push(3.0, 4.0)
        w.flush(3.0)
        assert len(w.rows) == 1

    def test_percentile_agg(self):
        w = TumblingWindow(100.0, agg="p99")
        for i in range(100):
            w.push(float(i), float(i + 1))
        w.flush(99.0)
        assert w.rows == [(0.0, 99.0)]


class TestGaugeWindow:
    def test_width_must_be_positive(self):
        with pytest.raises(ValueError, match="must be > 0"):
            GaugeWindow(0.0)

    def test_time_weighted_mean(self):
        g = GaugeWindow(10.0, initial=0.0)
        g.set(5.0, 2.0)  # 0 for 5 ms, then 2 for 5 ms -> mean 1.0
        g.flush(10.0)
        assert g.rows[0] == (0.0, pytest.approx(1.0))

    def test_add_deltas(self):
        g = GaugeWindow(10.0)
        g.add(0.0, 3.0)
        g.add(5.0, -1.0)
        assert g.level == pytest.approx(2.0)
        g.flush(10.0)
        assert g.rows[0] == (0.0, pytest.approx(2.5))

    def test_partial_final_bucket_weighted_by_elapsed(self):
        g = GaugeWindow(10.0, initial=4.0)
        g.flush(5.0)  # half a bucket at level 4
        assert g.rows == [(0.0, pytest.approx(4.0))]

    def test_backwards_time_rejected(self):
        g = GaugeWindow(10.0)
        g.set(8.0, 1.0)
        with pytest.raises(ValueError, match="backwards"):
            g.set(3.0, 2.0)


class TestWindowedSeries:
    @pytest.fixture(scope="class")
    def series(self, default_accel):
        requests = PoissonArrivals(
            300, ModelMix({"model2-lhc-trigger": 1.0}), seed=5,
        ).generate(400.0)
        sampler = MetricsSampler(grid_ms=20.0)
        sim = ClusterSimulator(default_accel, 2)
        sim.run(requests, observer=sampler)
        return sampler.registry.series

    def test_tumbles_a_metrics_series(self, series):
        rows = windowed_series(series, "arrivals", 100.0, agg="sum")
        assert rows
        assert sum(v for _, v in rows) == sum(r["arrivals"] for r in series)
        starts = [t for t, _ in rows]
        assert starts == sorted(starts)

    def test_count_rows_cover_run(self, series):
        rows = windowed_series(series, "completions", 50.0, agg="count")
        assert sum(v for _, v in rows) == len(series)

    def test_missing_key_rows_skipped(self, series):
        rows = windowed_series(series, "no_such_column", 100.0, agg="count")
        assert all(v == 0.0 for _, v in rows)
