"""TraceRecorder: event interpretation, span pairing, Chrome export."""

import json

import pytest

from repro.obs import TraceRecorder


def _by_name(tracer, name):
    return [e for e in tracer.events if e["name"] == name]


class TestPrimitives:
    def test_instant_complete_counter_shapes(self):
        tr = TraceRecorder()
        tr.instant("tick", 1.0, rid=7)
        tr.complete("work", 2.0, 3.5, tid=4, model="m")
        tr.counter("depth", 5.0, 9.0)
        inst, comp, ctr = tr.events
        assert inst["ph"] == "i" and inst["ts"] == 1.0
        assert inst["args"] == {"rid": 7}
        assert comp["ph"] == "X" and comp["dur"] == 3.5 and comp["tid"] == 4
        assert ctr["ph"] == "C" and ctr["args"] == {"depth": 9.0}
        assert len(tr) == 3

    def test_unknown_event_kinds_ignored(self):
        tr = TraceRecorder()
        tr(("requeue", 1.0, 3, -1))
        tr(("brand-new-kind", 2.0, "whatever"))
        assert tr.events == []


class TestServeVocabulary:
    def test_dispatch_free_becomes_batch_span(self):
        tr = TraceRecorder()
        tr(("arrive", 0.0, 0, "m", 1))
        tr(("dispatch", 1.0, 1, "m", 4, 0.0))
        tr(("free", 6.0, 1))
        (span,) = _by_name(tr, "batch")
        assert span["ts"] == 1.0 and span["dur"] == 5.0
        assert span["args"] == {"model": "m", "size": 4}
        assert span["tid"] == 2  # instance 1 -> row 1 + 1
        (arrival,) = _by_name(tr, "arrive")
        assert arrival["tid"] == 0  # requests lane

    def test_reprogram_span_emitted_on_switch(self):
        tr = TraceRecorder()
        tr(("dispatch", 2.0, 0, "m", 1, 5.0))
        (rep,) = _by_name(tr, "reprogram")
        assert rep["ts"] == 2.0 and rep["dur"] == 5.0

    def test_fail_aborts_open_batch_and_recover_closes_down(self):
        tr = TraceRecorder()
        tr(("dispatch", 1.0, 0, "m", 2, 0.0))
        tr(("fail", 3.0, 0))
        tr(("recover", 10.0, 0))
        (span,) = _by_name(tr, "batch")
        assert span["args"]["aborted"] is True and span["dur"] == 2.0
        (down,) = _by_name(tr, "down")
        assert down["ts"] == 3.0 and down["dur"] == 7.0

    def test_thread_name_metadata_emitted_once(self):
        tr = TraceRecorder()
        tr(("dispatch", 1.0, 0, "m", 1, 0.0))
        tr(("free", 2.0, 0))
        tr(("dispatch", 3.0, 0, "m", 1, 0.0))
        metas = _by_name(tr, "thread_name")
        assert len(metas) == 1
        assert metas[0]["args"] == {"name": "instance 0"}


class TestGenerateVocabulary:
    def test_admit_finish_becomes_sequence_span(self):
        tr = TraceRecorder()
        tr(("admit", 1.0, 0, 9, 16, 32))
        tr(("finish", 21.0, 0, 9))
        (seq,) = _by_name(tr, "sequence")
        assert seq["ts"] == 1.0 and seq["dur"] == 20.0
        assert seq["args"]["prompt_tokens"] == 16

    def test_step_is_complete_span_with_known_duration(self):
        tr = TraceRecorder()
        tr(("step", 4.0, 1, "m", 2, 3, 1.25))
        (step,) = _by_name(tr, "step")
        assert step["dur"] == 1.25
        assert step["args"] == {"model": "m", "admitted": 2, "decoding": 3}

    def test_preempt_closes_span_and_marks_instant(self):
        tr = TraceRecorder()
        tr(("admit", 1.0, 0, 5, 8, 8))
        tr(("preempt", 3.0, 0, 5))
        assert _by_name(tr, "preempt")
        (seq,) = _by_name(tr, "sequence (preempted)")
        assert seq["dur"] == 2.0

    def test_fail_displaces_open_sequences_on_that_instance_only(self):
        tr = TraceRecorder()
        tr(("admit", 1.0, 0, 5, 8, 8))
        tr(("resume", 1.5, 1, 6, 4, 12))
        tr(("fail", 2.0, 0))
        failed = _by_name(tr, "sequence (failed over)")
        assert [s["args"]["rid"] for s in failed] == [5]
        tr(("finish", 9.0, 1, 6))
        (seq,) = _by_name(tr, "sequence")
        assert seq["args"]["resumed"] is True


class TestFinish:
    def test_finish_closes_open_spans(self):
        tr = TraceRecorder()
        tr(("dispatch", 1.0, 0, "m", 2, 0.0))
        tr(("admit", 2.0, 1, 7, 8, 8))
        tr(("fail", 3.0, 2))
        tr.finish(10.0)
        (batch,) = _by_name(tr, "batch")
        assert batch["args"]["unfinished"] is True and batch["dur"] == 9.0
        assert _by_name(tr, "sequence (unfinished)")
        (down,) = _by_name(tr, "down")
        assert down["dur"] == 7.0

    def test_finish_is_idempotent(self):
        tr = TraceRecorder()
        tr(("dispatch", 1.0, 0, "m", 2, 0.0))
        tr.finish(5.0)
        n = len(tr.events)
        tr.finish(9.0)
        assert len(tr.events) == n


class TestExport:
    def test_to_chrome_structure(self):
        tr = TraceRecorder()
        tr(("arrive", 0.0, 0, "m", 0))
        doc = tr.to_chrome(run_config={"seed": 3})
        assert set(doc) == {"traceEvents", "displayTimeUnit", "metadata"}
        assert doc["displayTimeUnit"] == "ms"
        assert doc["metadata"]["run_config"] == {"seed": 3}
        assert "timebase" in doc["metadata"]
        for event in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(event)
        json.dumps(doc)  # must be JSON-serializable as-is

    def test_dump_roundtrips(self, tmp_path):
        tr = TraceRecorder()
        tr(("dispatch", 1.0, 0, "m", 1, 0.0))
        tr(("free", 2.0, 0))
        path = tmp_path / "run.trace.json"
        tr.dump(path, run_config={"qps": 10})
        loaded = json.loads(path.read_text())
        assert loaded == tr.to_chrome(run_config={"qps": 10})

    def test_dump_unwritable_path_raises_oserror(self, tmp_path):
        tr = TraceRecorder()
        with pytest.raises(OSError):
            tr.dump(tmp_path / "no-such-dir" / "run.json")


class TestHeterogeneousFleetFailures:
    """Satellite coverage: down spans overlapping preemption/requeue
    on a mixed-speed fleet under failure injection."""

    @pytest.fixture(scope="class")
    def traced_run(self, default_accel):
        from repro.obs import MetricsSampler, compose
        from repro.serving import (
            LengthSampler,
            ModelMix,
            PoissonArrivals,
            attach_generation_lengths,
            attach_priorities,
        )
        from repro.serving.generation import GenerationClusterSimulator
        from repro.sim import FailurePlan, FleetSpec

        mix = ModelMix({"model2-lhc-trigger": 2.0,
                        "model1-peng-isqed21": 1.0})
        arrivals = PoissonArrivals(300, mix, seed=21).generate(500.0)
        requests = attach_generation_lengths(
            arrivals, LengthSampler("uniform", 8, 24),
            LengthSampler("geometric", 4, mean_extra=16.0), seed=9,
            max_total=default_accel.synth.max_seq_len)
        requests = attach_priorities(requests, 0.3, seed=4)
        fleet = FleetSpec.parse("1.0/4,0.5/4,1.5/2")  # mixed speeds+slots
        sim = GenerationClusterSimulator(
            default_accel, scheduler="least-loaded", fleet=fleet,
            failures=FailurePlan(mtbf_ms=120.0, mttr_ms=40.0, seed=3))
        bare = sim.run(requests)
        tracer, sampler = TraceRecorder(), MetricsSampler(grid_ms=25.0)
        observed = sim.run(requests, observer=compose(tracer, sampler))
        return bare, observed, tracer, sampler

    def test_observed_run_identical(self, traced_run):
        bare, observed, _, _ = traced_run
        assert observed.trace == bare.trace
        assert observed.records == bare.records
        assert observed.instances == bare.instances

    def test_scenario_exercises_all_disruptions(self, traced_run):
        bare, _, _, sampler = traced_run
        kinds = {e[0] for e in bare.trace}
        assert {"fail", "recover", "preempt"} <= kinds
        assert sampler.registry.counters["requeues"].value > 0

    def test_down_spans_match_fail_recover_pairs(self, traced_run):
        bare, _, tracer, _ = traced_run
        downs = [e for e in tracer.events if e["name"] == "down"]
        fails = [e for e in bare.trace if e[0] == "fail"]
        assert len(downs) == len(fails)
        # Every down span starts at a fail and ends at the matching
        # recover (or the horizon, flagged unfinished by finish()).
        fail_times = sorted(e[1] for e in fails)
        assert sorted(d["ts"] for d in downs) == pytest.approx(fail_times)
        for d in downs:
            assert d["dur"] > 0

    def test_disruptions_overlap_down_spans(self, traced_run):
        bare, _, tracer, _ = traced_run
        downs = [(d["tid"], d["ts"], d["ts"] + d["dur"])
                 for d in tracer.events if d["name"] == "down"]
        # While at least one instance is down, displaced and preempted
        # work churns: some preempt/requeue activity must land inside
        # a down interval (the point of the satellite scenario).
        preempts = [e[1] for e in bare.trace if e[0] == "preempt"]
        overlapping = [
            t for t in preempts
            if any(t0 - 1e-9 <= t <= t1 + 1e-9 for _, t0, t1 in downs)]
        assert downs, "failure plan must take instances down"
        assert overlapping, (
            "scenario must preempt while an instance is down")

    def test_displaced_sequences_flagged_and_recorder_drains(
            self, traced_run):
        _, _, tracer, _ = traced_run
        failed_over = [e for e in tracer.events
                       if e["name"] == "sequence (failed over)"]
        preempted = [e for e in tracer.events
                     if e["name"] == "sequence (preempted)"]
        assert failed_over, "failures must displace in-flight sequences"
        assert preempted, "priority mix must evict sequences"
        assert not tracer._open_seqs and not tracer._open_batches
        assert not tracer._down_since

    def test_chrome_export_has_instance_rows(self, traced_run):
        _, _, tracer, _ = traced_run
        doc = tracer.to_chrome()
        tids = {e["tid"] for e in doc["traceEvents"]
                if e["name"] == "down"}
        assert len(tids) >= 2  # failures hit more than one instance row
