"""Tests for the rolling-median + MAD changepoint detector."""

import pytest

from repro.obs import AnomalyDetector


def warmed(**kwargs):
    """Detector with a flat healthy baseline already established."""
    det = AnomalyDetector(**kwargs)
    for i in range(det.min_samples):
        det.observe(float(i), 10.0 + 0.1 * (i % 3))
    return det


class TestValidation:
    @pytest.mark.parametrize("kwargs,match", [
        ({"window": 0}, "window"),
        ({"min_samples": 0}, "min_samples"),
        ({"window": 8, "min_samples": 9}, "min_samples"),
        ({"threshold": 0.0}, "threshold"),
        ({"debounce": 0}, "debounce"),
        ({"rel_floor": -0.1}, "floors"),
        ({"abs_floor": 0.0}, "floors"),
    ])
    def test_bad_params_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            AnomalyDetector(**kwargs)


class TestScoring:
    def test_zero_score_while_warming_up(self):
        det = AnomalyDetector(min_samples=12)
        for i in range(11):
            assert det.score(1000.0) == 0.0
            det.observe(float(i), 5.0)

    def test_one_sided(self):
        det = warmed()
        assert det.score(100.0) > 0
        # Latency improving is never an anomaly.
        assert det.score(0.001) <= 0
        assert not det.observe(99.0, 0.001)

    def test_scale_floor_prevents_infinite_scores(self):
        det = AnomalyDetector(min_samples=4, rel_floor=0.05)
        for i in range(8):
            det.observe(float(i), 10.0)  # MAD is exactly zero
        # Score is finite and floored at rel_floor * median.
        assert det.score(10.5) == pytest.approx(1.0)


class TestOnsets:
    def test_debounce_requires_consecutive_anomalies(self):
        det = warmed(debounce=3)
        det.observe(100.0, 500.0)
        det.observe(101.0, 500.0)
        assert det.onsets == []  # only 2 in a row
        det.observe(102.0, 10.0)  # streak broken
        det.observe(103.0, 500.0)
        det.observe(104.0, 500.0)
        det.observe(105.0, 500.0)
        assert len(det.onsets) == 1
        # Onset is stamped at the *start* of the winning streak.
        assert det.onsets[0]["t_ms"] == 103.0
        assert det.onsets[0]["value"] == 500.0
        assert det.onset_times == [103.0]

    def test_recovery_and_second_episode(self):
        det = warmed(debounce=2)
        for t in (50.0, 51.0):
            det.observe(t, 800.0)
        assert det.triggered
        det.observe(60.0, 10.0)
        assert not det.triggered
        assert det.recoveries == [60.0]
        for t in (70.0, 71.0):
            det.observe(t, 900.0)
        assert det.onset_times == [50.0, 70.0]

    def test_anomalous_samples_excluded_from_baseline(self):
        det = warmed(debounce=1)
        baseline_before = list(det._baseline)
        for t in range(100, 150):
            det.observe(float(t), 10_000.0)
        # A sustained outage must not drag the median up and mask itself.
        assert list(det._baseline) == baseline_before
        assert len(det.onsets) == 1

    def test_determinism(self):
        runs = []
        for _ in range(2):
            det = AnomalyDetector(min_samples=6, debounce=2)
            for t in range(40):
                value = 5.0 if t < 25 else 400.0
                det.observe(float(t), value)
            runs.append(det.onset_times)
        assert runs[0] == runs[1] == [25.0]

    def test_summary(self):
        det = warmed(debounce=1)
        det.observe(200.0, 5000.0)
        s = det.summary()
        assert s["triggered"] is True
        assert s["onsets"][0]["t_ms"] == 200.0
        assert s["recoveries"] == []
        # summary copies, it does not alias internal state
        s["onsets"][0]["t_ms"] = -1
        assert det.onsets[0]["t_ms"] == 200.0
