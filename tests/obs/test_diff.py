"""Tests for run-to-run regression detection (repro.obs.diff)."""

import json

import pytest

from repro.obs import DiffReport, diff_runs, render_diff
from repro.obs.diff import DiffEntry, classify, flatten, load_run


class TestClassify:
    @pytest.mark.parametrize("key,expected", [
        ("latency_ms.p99", "min"),
        ("watch.violations", "min"),
        ("watch.alert_minutes", "min"),
        ("watch.budget_burn", "min"),
        ("throughput_rps", "max"),
        ("slo_attainment", "max"),
        ("availability", "max"),
        ("horizon_ms.seed", None),       # neither family
        ("latency_speedup", None),       # both families -> unclassified
    ])
    def test_direction(self, key, expected):
        assert classify(key) == expected


class TestFlatten:
    def test_nested_dotted_keys(self):
        doc = {"a": {"b": 1, "c": [2.5, {"d": 3}]},
               "skip_str": "x", "skip_bool": True, "skip_null": None,
               "skip_inf": float("inf")}
        assert flatten(doc) == {"a.b": 1.0, "a.c.0": 2.5, "a.c.1.d": 3.0}

    def test_empty(self):
        assert flatten({}) == {}


class TestDiffRuns:
    def test_identical_runs_report_nothing(self):
        doc = {"latency_ms": {"p50": 3.0, "p99": 9.0},
               "throughput_rps": 120.0}
        report = diff_runs(doc, json.loads(json.dumps(doc)))
        assert report.ok
        assert report.compared == 3
        assert not (report.regressions or report.improvements
                    or report.changed)

    def test_float_noise_within_band_ignored(self):
        a = {"latency_ms": {"p99": 10.0}}
        b = {"latency_ms": {"p99": 10.0 + 1e-12}}
        assert diff_runs(a, b).ok

    def test_regression_and_improvement_directions(self):
        a = {"latency_ms": {"p99": 10.0}, "throughput_rps": 100.0}
        b = {"latency_ms": {"p99": 20.0}, "throughput_rps": 50.0}
        report = diff_runs(a, b)
        assert not report.ok
        assert {e.key for e in report.regressions} == {
            "latency_ms.p99", "throughput_rps"}
        swapped = diff_runs(b, a)
        assert swapped.ok
        assert {e.key for e in swapped.improvements} == {
            "latency_ms.p99", "throughput_rps"}

    def test_unclassified_moves_are_changed_not_regressions(self):
        report = diff_runs({"seed": 1.0}, {"seed": 2.0})
        assert report.ok
        assert [e.key for e in report.changed] == ["seed"]
        assert report.changed[0].kind == "changed"

    def test_regressions_sorted_by_severity(self):
        a = {"p99_ms": 10.0, "wait_ms": 10.0}
        b = {"p99_ms": 12.0, "wait_ms": 40.0}
        report = diff_runs(a, b)
        assert [e.key for e in report.regressions] == ["wait_ms", "p99_ms"]
        assert report.regressions[0].rel == pytest.approx(3.0)

    def test_only_in_one_run_surfaces(self):
        report = diff_runs({"x": 1.0, "shared": 2.0}, {"y": 1.0,
                                                       "shared": 2.0})
        assert report.only_a == ["x"]
        assert report.only_b == ["y"]
        assert report.compared == 1

    def test_zero_baseline_has_no_rel(self):
        report = diff_runs({"violations": 0.0}, {"violations": 5.0})
        entry = report.regressions[0]
        assert entry.rel is None
        assert entry.as_dict()["rel"] is None

    def test_negative_tolerances_rejected(self):
        with pytest.raises(ValueError, match="tolerances"):
            diff_runs({}, {}, rtol=-0.1)

    def test_as_dict_round_trips_through_json(self):
        report = diff_runs({"p99_ms": 1.0}, {"p99_ms": 2.0})
        doc = json.loads(json.dumps(report.as_dict()))
        assert doc["ok"] is False
        assert doc["regressions"][0]["key"] == "p99_ms"


class TestLoadRun:
    def test_reads_json_object(self, tmp_path):
        path = tmp_path / "run.json"
        path.write_text('{"latency_ms": 4.0}')
        assert load_run(path) == {"latency_ms": 4.0}

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            load_run(path)

    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_run(tmp_path / "nope.json")


class TestRenderDiff:
    def test_ok_verdict(self):
        text = render_diff(diff_runs({"p99_ms": 1.0}, {"p99_ms": 1.0}))
        assert "OK: no significant regressions" in text

    def test_regression_table_and_names(self):
        report = diff_runs({"p99_ms": 10.0, "extra": 1.0},
                           {"p99_ms": 20.0})
        text = render_diff(report, name_a="base.json", name_b="new.json")
        assert "1 significant regression(s)" in text
        assert "Regressions" in text
        assert "base.json" in text and "new.json" in text
        assert "only in base.json: extra" in text

    def test_empty_report_renders(self):
        text = render_diff(DiffReport(rtol=0.05, atol=1e-9, compared=0))
        assert "compared 0 metric(s)" in text

    def test_changed_section_rendered(self):
        report = diff_runs({"seed": 1.0}, {"seed": 2.0})
        assert "Changed (no known direction)" in render_diff(report)


class TestDiffEntry:
    def test_as_dict(self):
        e = DiffEntry("k", 1.0, 2.0, 1.0, 1.0, "min", "regression")
        assert e.as_dict() == {"key": "k", "a": 1.0, "b": 2.0,
                               "delta": 1.0, "rel": 1.0,
                               "direction": "min", "kind": "regression"}
