"""Analytic-vs-simulation bracket tests on the golden scenarios.

The closed-form estimate carries a ``[lo, hi]`` bracket for every
reported statistic; the event simulation's answer must sit inside it.
The grid below crosses the six golden arrival scenarios (the same
seeds as ``tests/sim/test_trace_identity.py``) with a fleet sweep, and
a Poisson QPS sweep crosses offered load with fleet size.
"""

import pytest

from repro.analytic import estimate_serving
from repro.serving import (
    BurstyArrivals,
    DiurnalArrivals,
    ModelMix,
    PoissonArrivals,
    simulate,
    summarize,
    timeout,
)

MIX = ModelMix({
    "model2-lhc-trigger": 3.0,
    "model1-peng-isqed21": 2.0,
    "model3-efa-trans": 1.0,
})

#: The golden arrival processes (same seeds as the trace-identity
#: goldens); the generation-side seeds are served here as plain serve
#: workloads, giving six distinct seeded scenarios.
SCENARIOS = {
    "poisson": lambda: PoissonArrivals(500, MIX, seed=101).generate(600.0),
    "bursty": lambda: BurstyArrivals(
        400, MIX, seed=202, burst_factor=5.0, dwell_ms=80.0).generate(600.0),
    "diurnal": lambda: DiurnalArrivals(
        600, MIX, seed=303, period_ms=600.0).generate(600.0),
    "g-poisson": lambda: PoissonArrivals(30, MIX, seed=404).generate(500.0),
    "g-bursty": lambda: BurstyArrivals(
        25, MIX, seed=505, dwell_ms=120.0).generate(500.0),
    "g-diurnal": lambda: DiurnalArrivals(
        40, MIX, seed=606, period_ms=500.0).generate(500.0),
}

FLEETS = (1, 2, 3, 4, 6, 8)

#: The golden serve configuration (tests/sim/test_trace_identity.py).
SERVE_KW = dict(scheduler="model-affinity", batching=timeout(4, 2.0),
                reprogram_latency_ms=5.0)
EST_KW = dict(batching=timeout(4, 2.0), reprogram_latency_ms=5.0)


def _assert_bracketed(est, rep, label):
    checks = [
        ("p50", est.p50_lo_ms, rep.p50_ms, est.p50_hi_ms),
        ("p95", est.p95_lo_ms, rep.p95_ms, est.p95_hi_ms),
        ("p99", est.p99_lo_ms, rep.p99_ms, est.p99_hi_ms),
        ("throughput", est.throughput_lo_rps, rep.throughput_rps,
         est.throughput_hi_rps),
        ("utilization", est.utilization_lo, rep.utilization,
         est.utilization_hi),
    ]
    for name, lo, sim_value, hi in checks:
        assert lo <= sim_value <= hi, (
            f"{label}: simulated {name} {sim_value:.6g} escaped the "
            f"analytic bracket [{lo:.6g}, {hi:.6g}]")


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_brackets_contain_simulation(default_accel, scenario):
    requests = SCENARIOS[scenario]()
    assert requests, "scenario generated an empty workload"
    for fleet in FLEETS:
        est = estimate_serving(default_accel, requests, fleet, **EST_KW)
        rep = summarize(simulate(default_accel, requests, fleet,
                                 **SERVE_KW))
        _assert_bracketed(est, rep, f"{scenario}@fleet={fleet}")


@pytest.mark.parametrize("n_requests", (120, 500, 1200))
def test_brackets_hold_across_qps_grid(default_accel, n_requests):
    """Seeded QPS x fleet grid: the offered load sweeps with
    ``n_requests`` over a fixed horizon."""
    requests = PoissonArrivals(n_requests, MIX, seed=101).generate(600.0)
    for fleet in (1, 3, 8):
        est = estimate_serving(default_accel, requests, fleet, **EST_KW)
        rep = summarize(simulate(default_accel, requests, fleet,
                                 **SERVE_KW))
        _assert_bracketed(est, rep, f"n={n_requests}@fleet={fleet}")


def test_point_estimates_sit_inside_their_own_bracket(default_accel):
    requests = SCENARIOS["poisson"]()
    for fleet in FLEETS:
        est = estimate_serving(default_accel, requests, fleet, **EST_KW)
        assert est.p50_lo_ms <= est.p50_ms <= est.p50_hi_ms
        assert est.p95_lo_ms <= est.p95_ms <= est.p95_hi_ms
        assert est.p99_lo_ms <= est.p99_ms <= est.p99_hi_ms
        assert (est.throughput_lo_rps <= est.throughput_rps
                <= est.throughput_hi_rps)
        assert est.utilization_lo <= est.utilization <= est.utilization_hi


def test_estimate_rejects_empty_workload(default_accel):
    with pytest.raises(ValueError):
        estimate_serving(default_accel, [], 2)
