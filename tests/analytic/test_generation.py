"""Closed-form generation estimates: surrogate equivalence + loading."""

import pytest

from repro.analytic import estimate_generation
from repro.nn.model_zoo import MODEL_ZOO


@pytest.fixture(scope="module")
def cfg():
    return MODEL_ZOO["model2-lhc-trigger"]


class TestUnloaded:
    def test_matches_the_analytic_latency_report(self, default_accel, cfg):
        """With no offered qps every field is the unloaded
        prefill/decode value — exactly what the DSE surrogate has
        always reported."""
        report = default_accel.generation_report(cfg, 64, 32)
        est = estimate_generation(default_accel, cfg, 64, 32)
        assert est.ttft_ms == report.ttft_ms
        assert est.tpot_ms == report.tpot_ms
        assert est.latency_ms == report.total_ms
        assert est.tokens_per_s == report.tokens_per_s
        assert est.ttft_p99_ms == report.ttft_ms
        assert est.erlangs == 0.0

    def test_fleet_scales_token_throughput(self, default_accel, cfg):
        one = estimate_generation(default_accel, cfg, 64, 32, fleet=1)
        four = estimate_generation(default_accel, cfg, 64, 32, fleet=4)
        assert four.tokens_per_s == pytest.approx(4 * one.tokens_per_s)
        assert four.ttft_ms == one.ttft_ms

    def test_rejects_empty_fleet(self, default_accel, cfg):
        with pytest.raises(ValueError):
            estimate_generation(default_accel, cfg, 64, 32, fleet=0)
        with pytest.raises(ValueError):
            estimate_generation(default_accel, cfg, 64, 32, slots=0)


class TestLoaded:
    def test_offered_load_pushes_the_ttft_tail_out(self, default_accel,
                                                   cfg):
        unloaded = estimate_generation(default_accel, cfg, 64, 32,
                                       fleet=2, slots=4)
        total_ms = unloaded.latency_ms
        # 80% occupancy of the 8 decode slots.
        qps = 0.8 * 8 / (total_ms / 1e3)
        loaded = estimate_generation(default_accel, cfg, 64, 32,
                                     fleet=2, slots=4, qps=qps)
        assert loaded.ttft_p99_ms > unloaded.ttft_p99_ms
        assert loaded.erlangs == pytest.approx(6.4)

    def test_more_slots_shrink_the_tail(self, default_accel, cfg):
        base = estimate_generation(default_accel, cfg, 64, 32,
                                   fleet=1, slots=1)
        qps = 0.7 / (base.latency_ms / 1e3)
        tails = [
            estimate_generation(default_accel, cfg, 64, 32,
                                fleet=1, slots=s, qps=qps).ttft_p99_ms
            for s in (1, 2, 4)
        ]
        assert tails[0] >= tails[1] >= tails[2]

    def test_saturation_needs_a_horizon(self, default_accel, cfg):
        base = estimate_generation(default_accel, cfg, 64, 32)
        qps = 3.0 / (base.latency_ms / 1e3)  # 3 erlangs on 1 slot
        with pytest.raises(ValueError, match="duration_ms"):
            estimate_generation(default_accel, cfg, 64, 32, qps=qps)
        est = estimate_generation(default_accel, cfg, 64, 32, qps=qps,
                                  duration_ms=250.0)
        assert est.ttft_p99_ms == pytest.approx(base.ttft_ms + 250.0)
