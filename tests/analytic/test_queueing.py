"""Unit + property tests for the closed-form queueing core.

The two monotonicity properties asserted here are what make binary
search over fleet size valid in :func:`repro.analytic.propose_fleet`:
the analytic p99 is monotone non-increasing in fleet size and monotone
non-decreasing in offered QPS.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic import (
    erlang_c,
    latency_quantile_ms,
    min_stable_fleet,
    p99_estimate_ms,
    wait_quantile_ms,
)

SERVICE_MS = 2.0    # tail anchor: batched service latency
UNIT_INF_S = 500.0  # per-server completions/s (2 ms of work each)
DURATION_MS = 1_000.0


class TestErlangC:
    def test_zero_load_never_waits(self):
        assert erlang_c(4, 0.0) == 0.0

    def test_saturation_always_waits(self):
        assert erlang_c(2, 2.0) == 1.0
        assert erlang_c(2, 5.0) == 1.0

    def test_known_value(self):
        # Classic M/M/c result: c=2, a=1 erlang -> Pw = 1/3.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_single_server_wait_probability_is_rho(self):
        assert erlang_c(1, 0.3) == pytest.approx(0.3)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            erlang_c(0, 1.0)
        with pytest.raises(ValueError):
            erlang_c(2, -0.1)

    def test_surrogate_reexport_is_the_same_object(self):
        from repro.dse.surrogate import erlang_c as legacy
        assert legacy is erlang_c

    @settings(deadline=None)
    @given(st.integers(1, 64), st.floats(0.0, 60.0))
    def test_probability_monotone_in_servers(self, servers, erlangs):
        pw = erlang_c(servers, erlangs)
        assert 0.0 <= pw <= 1.0
        assert erlang_c(servers + 1, erlangs) <= pw + 1e-12


class TestMinStableFleet:
    def test_integer_loads_need_one_spare(self):
        assert min_stable_fleet(0.0) == 1
        assert min_stable_fleet(2.0) == 3

    def test_fractional_loads_round_up(self):
        assert min_stable_fleet(0.2) == 1
        assert min_stable_fleet(2.5) == 3


class TestWaitQuantileLowLoadRegression:
    """The probe-path bugfix: ``_p99_estimate_ms`` used to return the
    bare service time whenever the Erlang-C wait probability dropped
    to <= 0.01, collapsing the whole low-utilization regime to a
    constant.  The point estimate must keep the Pw-weighted
    conditional tail instead."""

    def test_point_keeps_conditional_floor(self):
        servers, erlangs = 8, 0.5
        drain = servers * 1.0 - erlangs
        pw = erlang_c(servers, erlangs)
        assert 0.0 < pw <= 0.01, "not the low-load regime"
        wait = wait_quantile_ms(servers, erlangs, drain, 99.0)
        conditional = -math.log(0.01) / drain
        assert wait == pytest.approx(pw * conditional)
        assert wait > 0.0

    def test_p99_exceeds_bare_service_at_low_load(self):
        # fleet 8 at 250 qps of 2 ms work -> 0.5 erlangs, Pw ~ 1e-6.
        est = p99_estimate_ms(SERVICE_MS, UNIT_INF_S, 8, 250.0,
                              DURATION_MS)
        assert est > SERVICE_MS

    def test_bracket_mode_is_documented_upper_tail(self):
        servers, erlangs = 8, 0.5
        drain = servers * 1.0 - erlangs
        hi = wait_quantile_ms(servers, erlangs, drain, 99.0, bracket=True)
        assert hi == pytest.approx(-math.log(0.01) / drain)

    def test_bracket_dominates_point(self):
        for servers, erlangs in ((1, 0.5), (4, 3.2), (8, 0.5), (16, 14.0)):
            drain = servers * 1.0 - erlangs
            point = wait_quantile_ms(servers, erlangs, drain, 99.0)
            hi = wait_quantile_ms(servers, erlangs, drain, 99.0,
                                  bracket=True)
            assert point <= hi + 1e-12


class TestWaitQuantileValidation:
    def test_rejects_nonpositive_drain(self):
        with pytest.raises(ValueError):
            wait_quantile_ms(2, 1.0, 0.0)

    def test_rejects_quantile_outside_range(self):
        with pytest.raises(ValueError):
            wait_quantile_ms(2, 1.0, 1.0, q=101.0)

    def test_q100_is_unbounded(self):
        assert wait_quantile_ms(2, 1.0, 1.0, q=100.0) == math.inf


class TestLatencyQuantileProperties:
    @settings(deadline=None)
    @given(st.integers(1, 32), st.floats(1.0, 4000.0))
    def test_p99_monotone_non_increasing_in_fleet(self, fleet, qps):
        a = p99_estimate_ms(SERVICE_MS, UNIT_INF_S, fleet, qps,
                            DURATION_MS)
        b = p99_estimate_ms(SERVICE_MS, UNIT_INF_S, fleet + 1, qps,
                            DURATION_MS)
        assert b <= a + 1e-9

    @settings(deadline=None)
    @given(st.integers(1, 32),
           st.floats(1.0, 4000.0), st.floats(1.0, 4000.0))
    def test_p99_monotone_non_decreasing_in_qps(self, fleet, q1, q2):
        lo_qps, hi_qps = sorted((q1, q2))
        a = p99_estimate_ms(SERVICE_MS, UNIT_INF_S, fleet, lo_qps,
                            DURATION_MS)
        b = p99_estimate_ms(SERVICE_MS, UNIT_INF_S, fleet, hi_qps,
                            DURATION_MS)
        assert a <= b + 1e-9

    @settings(deadline=None)
    @given(st.integers(1, 32), st.floats(1.0, 4000.0))
    def test_bracket_dominates_point(self, fleet, qps):
        point = p99_estimate_ms(SERVICE_MS, UNIT_INF_S, fleet, qps,
                                DURATION_MS)
        hi = p99_estimate_ms(SERVICE_MS, UNIT_INF_S, fleet, qps,
                             DURATION_MS, bracket=True)
        assert point <= hi + 1e-9

    @settings(deadline=None)
    @given(st.integers(1, 32), st.floats(1.0, 4000.0))
    def test_point_bounded_by_service_plus_horizon(self, fleet, qps):
        # The surrogate's sanity bound: est <= latency + duration.
        est = p99_estimate_ms(SERVICE_MS, UNIT_INF_S, fleet, qps,
                              DURATION_MS)
        assert SERVICE_MS <= est <= SERVICE_MS + DURATION_MS + 1e-9

    def test_saturated_point_is_service_plus_horizon(self):
        # 10 erlangs offered to 4 servers: unstable, so the point
        # estimate pins to the horizon penalty.
        est = latency_quantile_ms(SERVICE_MS, UNIT_INF_S, 4, 5000.0,
                                  DURATION_MS)
        assert est == pytest.approx(SERVICE_MS + DURATION_MS)

    def test_quantiles_are_ordered(self):
        p50 = latency_quantile_ms(SERVICE_MS, UNIT_INF_S, 4, 1800.0,
                                  DURATION_MS, q=50.0)
        p95 = latency_quantile_ms(SERVICE_MS, UNIT_INF_S, 4, 1800.0,
                                  DURATION_MS, q=95.0)
        p99 = latency_quantile_ms(SERVICE_MS, UNIT_INF_S, 4, 1800.0,
                                  DURATION_MS, q=99.0)
        assert p50 <= p95 <= p99
