"""Analytic-first ``plan_capacity``: identity with the seed search.

Three contracts pin the tentpole rewiring:

* the analytic-first search returns the *same* confirmed plan as the
  seed probe-from-1 search (``mode="probe"``) on the golden scenarios,
  feasible and infeasible alike;
* ``probe_detail="summary"`` probes are an identity with the seed's
  full-detail probes (exact percentiles, ulp-level means);
* :func:`propose_fleet`'s binary search equals a linear scan of its
  own predicate.
"""

import pytest

from repro.analytic import estimate_serving, propose_fleet
from repro.serving import (
    BurstyArrivals,
    DiurnalArrivals,
    ModelMix,
    PoissonArrivals,
    plan_capacity,
    render_capacity_plan,
    timeout,
)

MIX = ModelMix({
    "model2-lhc-trigger": 3.0,
    "model1-peng-isqed21": 2.0,
    "model3-efa-trans": 1.0,
})

SCENARIOS = {
    "poisson": lambda: PoissonArrivals(500, MIX, seed=101).generate(600.0),
    "bursty": lambda: BurstyArrivals(
        400, MIX, seed=202, burst_factor=5.0, dwell_ms=80.0).generate(600.0),
    "diurnal": lambda: DiurnalArrivals(
        600, MIX, seed=303, period_ms=600.0).generate(600.0),
    "g-poisson": lambda: PoissonArrivals(30, MIX, seed=404).generate(500.0),
    "g-bursty": lambda: BurstyArrivals(
        25, MIX, seed=505, dwell_ms=120.0).generate(500.0),
    "g-diurnal": lambda: DiurnalArrivals(
        40, MIX, seed=606, period_ms=500.0).generate(500.0),
}

PLAN_KW = dict(scheduler="model-affinity", batching=timeout(4, 2.0),
               reprogram_latency_ms=5.0)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("target", (75.0, 300.0))
def test_analytic_first_matches_probe_search(default_accel, scenario,
                                             target):
    requests = SCENARIOS[scenario]()
    analytic = plan_capacity(default_accel, requests,
                             target_p99_ms=target, **PLAN_KW)
    probe = plan_capacity(default_accel, requests, target_p99_ms=target,
                          mode="probe", **PLAN_KW)
    assert analytic.instances == probe.instances
    assert analytic.report.p99_ms == probe.report.p99_ms
    assert analytic.meets_slo and probe.meets_slo
    assert analytic.analytic is not None
    assert probe.analytic is None


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_summary_probes_are_an_identity(default_accel, scenario):
    """The probe-path bugfix: ``detail="summary"`` probes must leave
    the planned fleet size and every report field the seed search
    read unchanged."""
    requests = SCENARIOS[scenario]()
    summary = plan_capacity(default_accel, requests, target_p99_ms=75.0,
                            mode="probe", probe_detail="summary",
                            **PLAN_KW)
    full = plan_capacity(default_accel, requests, target_p99_ms=75.0,
                         mode="probe", probe_detail="full", **PLAN_KW)
    assert summary.instances == full.instances
    assert summary.probes == full.probes
    s_rep, f_rep = summary.report, full.report
    # Percentiles are nearest-rank order statistics: bit-identical.
    assert (s_rep.p50_ms, s_rep.p95_ms, s_rep.p99_ms) == \
        (f_rep.p50_ms, f_rep.p95_ms, f_rep.p99_ms)
    assert s_rep.total_requests == f_rep.total_requests
    # Means re-associate across shard-ready accumulators: ulp-level.
    assert s_rep.mean_latency_ms == pytest.approx(f_rep.mean_latency_ms,
                                                  rel=1e-12)
    assert s_rep.throughput_rps == pytest.approx(f_rep.throughput_rps,
                                                 rel=1e-12)
    assert s_rep.utilization == pytest.approx(f_rep.utilization,
                                              rel=1e-12)


def test_infeasible_raises_in_both_modes(default_accel):
    requests = SCENARIOS["bursty"]()
    for mode in ("analytic", "probe"):
        with pytest.raises(RuntimeError, match="no fleet"):
            plan_capacity(default_accel, requests, target_p99_ms=1e-6,
                          mode=mode, max_instances=4, **PLAN_KW)


def test_analytic_only_plan_shape(default_accel):
    requests = SCENARIOS["poisson"]()
    plan = plan_capacity(default_accel, requests, target_p99_ms=75.0,
                         confirm=False, **PLAN_KW)
    assert plan.report is None
    assert plan.probes == {}
    assert plan.analytic.feasible
    assert plan.instances == plan.analytic.instances
    assert plan.meets_slo
    assert "[analytic, unconfirmed]" in render_capacity_plan(plan)


def test_plan_mode_validation(default_accel):
    requests = SCENARIOS["poisson"]()
    with pytest.raises(ValueError, match="unknown plan mode"):
        plan_capacity(default_accel, requests, target_p99_ms=75.0,
                      mode="guess", **PLAN_KW)
    with pytest.raises(ValueError, match="confirm=False requires"):
        plan_capacity(default_accel, requests, target_p99_ms=75.0,
                      mode="probe", confirm=False, **PLAN_KW)
    with pytest.raises(ValueError, match="sharded probes"):
        plan_capacity(default_accel, requests, target_p99_ms=75.0,
                      probe_detail="full", shards=2, **PLAN_KW)


@pytest.mark.parametrize("scenario", ("poisson", "bursty", "diurnal"))
def test_propose_fleet_matches_linear_scan(default_accel, scenario):
    """The binary search must land exactly where a linear scan of the
    same analytic predicate lands — the monotonicity premise, checked
    end to end."""
    requests = SCENARIOS[scenario]()
    target = 75.0
    proposal = propose_fleet(default_accel, requests, target,
                             batching=timeout(4, 2.0),
                             reprogram_latency_ms=5.0, max_instances=16)
    assert proposal.feasible
    scan = next(
        n for n in range(1, 17)
        if estimate_serving(default_accel, requests, n,
                            batching=timeout(4, 2.0),
                            reprogram_latency_ms=5.0).p99_ms <= target)
    assert proposal.instances == scan
    assert proposal.estimate.p99_ms <= target


def test_propose_fleet_infeasible_flags_instead_of_raising(default_accel):
    requests = SCENARIOS["poisson"]()
    proposal = propose_fleet(default_accel, requests, 1e-6,
                             batching=timeout(4, 2.0),
                             reprogram_latency_ms=5.0, max_instances=4)
    assert not proposal.feasible
    assert proposal.instances == 4
