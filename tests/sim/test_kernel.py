"""Unit tests for the kernel primitives: queue, clock, RNG streams."""

import random

import pytest

from repro.sim import EventQueue, RngStreams, SimClock, Simulation


class TestEventQueue:
    def test_orders_by_time_then_priority_then_insertion(self):
        q = EventQueue()
        q.push(2.0, 0, ("late",))
        q.push(1.0, 1, ("low-prio",))
        q.push(1.0, 0, ("first",))
        q.push(1.0, 0, ("second",))
        kinds = [q.pop()[3][0] for _ in range(len(q))]
        assert kinds == ["first", "second", "low-prio", "late"]

    def test_insertion_counter_is_shared_with_direct_heap_pushes(self):
        """The hot-path contract: heappush with next(counter) and
        push() interleave into one deterministic order."""
        import heapq

        q = EventQueue()
        q.push(1.0, 0, ("a",))
        heapq.heappush(q.heap, (1.0, 0, next(q.counter), ("b",)))
        q.push(1.0, 0, ("c",))
        kinds = [q.pop()[3][0] for _ in range(3)]
        assert kinds == ["a", "b", "c"]

    def test_peek_and_len(self):
        q = EventQueue()
        assert q.peek_ms() is None and not q
        q.push(3.5, 1, ("x",))
        assert q.peek_ms() == 3.5 and len(q) == 1 and bool(q)


class TestSimClock:
    def test_advances_monotonically(self):
        clock = SimClock()
        assert clock.now_ms == 0.0
        clock.advance(4.0)
        assert clock.now_ms == 4.0
        with pytest.raises(ValueError, match="rewind"):
            clock.advance(3.0)


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = RngStreams(7).stream("failure/0")
        b = RngStreams(7).stream("failure/0")
        assert [a.random() for _ in range(8)] == \
               [b.random() for _ in range(8)]

    def test_streams_are_independent(self):
        """Consuming one stream never perturbs another."""
        plain = RngStreams(7)
        noisy = RngStreams(7)
        _ = [noisy.stream("failure/1").random() for _ in range(100)]
        assert plain.stream("failure/0").random() == \
               noisy.stream("failure/0").random()

    def test_different_seeds_and_names_diverge(self):
        assert RngStreams(1).stream("a").random() != \
               RngStreams(2).stream("a").random()
        s = RngStreams(1)
        assert s.stream("a").random() != s.stream("b").random()

    def test_stream_is_cached_not_reset(self):
        s = RngStreams(0)
        first = s.stream("x").random()
        assert s.stream("x").random() != first  # continues, not restarts

    def test_platform_stable_derivation(self):
        """String seeding goes through SHA-512: pin one draw so a
        platform/Python change that broke stability is caught."""
        assert RngStreams(0).stream("probe").random() == \
               random.Random("0/probe").random()


class TestSimulation:
    def test_handler_dispatch_in_deterministic_order(self):
        sim = Simulation(seed=3)
        seen = []
        sim.on("tick", lambda payload, now: seen.append(("tick", now)))
        sim.on("tock", lambda payload, now: seen.append(("tock", now)))
        sim.schedule(2.0, 1, ("tock",))
        sim.schedule(1.0, 1, ("tick",))
        sim.schedule(2.0, 0, ("tick",))
        sim.run_events()
        assert seen == [("tick", 1.0), ("tick", 2.0), ("tock", 2.0)]
        assert sim.clock.now_ms == 2.0

    def test_handlers_may_schedule_followups(self):
        sim = Simulation()
        seen = []

        def chain(payload, now):
            seen.append(now)
            if now < 3.0:
                sim.schedule(now + 1.0, 0, ("chain",))

        sim.on("chain", chain)
        sim.schedule(1.0, 0, ("chain",))
        sim.run_events()
        assert seen == [1.0, 2.0, 3.0]
