"""CalendarQueue vs the reference heap: pop-order identity.

The calendar queue may only ever be a *speed* change — the six
trace-identity goldens pin engine output byte-for-byte, so any
divergence from ``EventQueue``'s pop order is a correctness bug.  The
property tests here drive randomized event streams through both queues
and assert identical pop sequences, deliberately covering the cases
where a bucketed design could drift from a heap:

* equal timestamps with equal priorities (must pop in push order);
* pushes landing at or behind the cursor's live bucket (insort path);
* far-future pushes beyond the calendar window (overflow heap) and the
  year-rollover rebase that scatters them back into buckets;
* interleaved push/pop (drain-to-empty then refill re-anchors the
  year).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import CalendarQueue, EventQueue


def _drain_both(ops, bucket_ms=1.0, n_buckets=8):
    """Feed identical push/pop op streams to both queues; compare pops."""
    ref = EventQueue()
    cal = CalendarQueue(bucket_ms=bucket_ms, n_buckets=n_buckets)
    ref_pops = []
    cal_pops = []
    pending = 0
    for op in ops:
        if op[0] == "push":
            _, t, prio = op
            payload = ("ev", t, prio)
            ref.push(t, prio, payload)
            cal.push(t, prio, payload)
            pending += 1
        elif pending:
            ref_pops.append(ref.pop())
            cal_pops.append(cal.pop())
            pending -= 1
    while pending:
        ref_pops.append(ref.pop())
        cal_pops.append(cal.pop())
        pending -= 1
    assert cal_pops == ref_pops
    assert len(cal) == len(ref) == 0
    assert not cal and not ref


# Timestamps from a small grid force same-t collisions; priorities from
# {0..3} mirror the engines' priority bands.  A tiny calendar (8 × 1ms
# buckets) makes overflow and year rollover routine, not rare.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"),
                  st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0, 7.5, 8.0,
                                   15.5, 16.0, 64.0, 1000.0]),
                  st.integers(min_value=0, max_value=3)),
        st.tuples(st.just("pop")),
    ),
    max_size=200,
)


class TestPopOrderIdentity:
    @given(ops=_ops)
    @settings(max_examples=200, deadline=None)
    def test_property_identity(self, ops):
        _drain_both(ops)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_random_streams(self, seed):
        rng = random.Random(seed)
        ops = []
        for _ in range(300):
            if rng.random() < 0.6:
                # Mix near-future (in-bucket), same-tick, and far-future
                # (overflow) timestamps.
                t = rng.choice([
                    rng.randrange(8) * 1.0,
                    rng.randrange(32) * 0.5,
                    rng.randrange(100) * 37.0,
                ])
                ops.append(("push", t, rng.randrange(4)))
            else:
                ops.append(("pop",))
        _drain_both(ops)

    def test_same_timestamp_same_priority_pops_in_push_order(self):
        cal = CalendarQueue()
        for tag in ("a", "b", "c"):
            cal.push(5.0, 1, ("ev", tag))
        assert [cal.pop()[3][1] for _ in range(3)] == ["a", "b", "c"]

    def test_priority_breaks_timestamp_ties(self):
        cal = CalendarQueue()
        cal.push(5.0, 2, ("low",))
        cal.push(5.0, 0, ("high",))
        cal.push(5.0, 1, ("mid",))
        assert [cal.pop()[3][0] for _ in range(3)] == [
            "high", "mid", "low"]

    def test_overflow_boundary_exact_limit(self):
        # First push anchors the year at t=0; the window is [0, 8).
        # Events at exactly t=8.0 and beyond must take the overflow
        # path and still pop in global order after the rollover.
        cal = CalendarQueue(bucket_ms=1.0, n_buckets=8)
        cal.push(0.0, 0, ("now",))
        cal.push(8.0, 0, ("edge",))
        cal.push(7.999, 0, ("in-window",))
        cal.push(800.0, 0, ("far",))
        got = [cal.pop()[3][0] for _ in range(4)]
        assert got == ["now", "in-window", "edge", "far"]

    def test_drain_then_refill_rebases(self):
        cal = CalendarQueue(bucket_ms=1.0, n_buckets=8)
        cal.push(3.0, 0, ("first",))
        assert cal.pop()[3][0] == "first"
        assert cal.head is None
        # Far from the original anchor: the empty-queue push re-anchors
        # the year, so this lands in a bucket, not the overflow.
        cal.push(1e6, 0, ("second",))
        assert cal.peek_ms() == 1e6
        assert cal.pop()[3][0] == "second"

    def test_push_behind_cursor_joins_live_bucket(self):
        cal = CalendarQueue(bucket_ms=1.0, n_buckets=8)
        cal.push(0.0, 0, ("a",))
        cal.push(5.0, 0, ("c",))
        assert cal.pop()[3][0] == "a"
        # The cursor has moved to t=5; a "now" push at t=5 with a lower
        # priority number must still pop first (insort into the live
        # bucket ahead of the current head).
        cal.push(5.0, 1, ("d",))
        cal.push(5.0, 0, ("b2",))  # same priority as head, later seq
        assert [cal.pop()[3][0] for _ in range(3)] == ["c", "b2", "d"]


class TestQueueSurface:
    def test_head_tracks_min_and_pop_returns_head(self):
        cal = CalendarQueue()
        assert cal.head is None
        assert cal.peek_ms() is None
        cal.push(2.0, 0, ("b",))
        cal.push(1.0, 0, ("a",))
        head = cal.head
        assert head[0] == 1.0
        assert cal.peek_ms() == 1.0
        assert cal.pop() is head
        assert cal.peek_ms() == 2.0

    def test_len_and_bool(self):
        cal = CalendarQueue()
        assert len(cal) == 0
        cal.push(1.0, 0, ("a",))
        cal.push(2.0, 0, ("b",))
        assert len(cal) == 2 and bool(cal)
        cal.pop()
        cal.pop()
        assert len(cal) == 0 and not cal

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            CalendarQueue().pop()

    def test_validation(self):
        with pytest.raises(ValueError):
            CalendarQueue(bucket_ms=0.0)
        with pytest.raises(ValueError):
            CalendarQueue(bucket_ms=-1.0)
        with pytest.raises(ValueError):
            CalendarQueue(n_buckets=0)

    def test_counter_is_shared_sequence(self):
        # Engines build tuples with next(queue.counter) themselves; the
        # attribute must exist and be the tie-break sequence.
        cal = CalendarQueue()
        assert next(cal.counter) == 0
        cal.push(1.0, 0, ("a",))
        assert cal.pop()[2] == 1
