"""Seed-determinism property tests over randomized configurations.

Stdlib-``random``-driven (no extra deps): each trial draws a workload
shape, scheduler, batching policy, and fleet layout from a seeded
meta-RNG, then checks the kernel's determinism contract —

* same seed → byte-identical traces, records, and reports;
* different workload seeds → distinct event streams;
* arrival times are sorted and non-negative for every generator;
* sampled lengths always respect the sampler's ``[lo, hi]`` bounds.
"""

import random

import pytest

from repro.serving import (
    BurstyArrivals,
    DiurnalArrivals,
    LengthSampler,
    ModelMix,
    PoissonArrivals,
    attach_generation_lengths,
    attach_priorities,
    fixed_size,
    no_batching,
    summarize,
    timeout,
)
from repro.serving.cluster import ClusterSimulator
from repro.serving.generation import GenerationClusterSimulator
from repro.sim import FailurePlan, FleetSpec, InstanceSpec

MODELS = ["model2-lhc-trigger", "model1-peng-isqed21", "model3-efa-trans"]


def _random_mix(rng: random.Random) -> ModelMix:
    names = rng.sample(MODELS, rng.randint(1, len(MODELS)))
    return ModelMix({n: rng.uniform(0.5, 4.0) for n in names})


def _random_arrivals(rng: random.Random, seed: int):
    mix = _random_mix(rng)
    kind = rng.choice(["poisson", "bursty", "diurnal"])
    if kind == "poisson":
        return PoissonArrivals(rng.uniform(100, 800), mix, seed=seed)
    if kind == "bursty":
        return BurstyArrivals(rng.uniform(100, 600), mix, seed=seed,
                              burst_factor=rng.uniform(1.0, 6.0),
                              burst_fraction=rng.uniform(0.05, 0.5),
                              dwell_ms=rng.uniform(20.0, 300.0))
    return DiurnalArrivals(rng.uniform(200, 900), mix, seed=seed,
                           period_ms=rng.uniform(200.0, 1200.0),
                           floor=rng.uniform(0.0, 1.0))


def _random_batching(rng: random.Random):
    return rng.choice([
        no_batching(),
        fixed_size(rng.randint(2, 8)),
        timeout(rng.randint(2, 8), rng.uniform(0.5, 4.0)),
    ])


def _random_fleet(rng: random.Random, generation: bool = False
                  ) -> FleetSpec:
    specs = []
    for _ in range(rng.randint(1, 4)):
        models = (tuple(rng.sample(MODELS, rng.randint(1, len(MODELS))))
                  if rng.random() < 0.3 else None)
        specs.append(InstanceSpec(
            speed=rng.choice([0.5, 1.0, 1.0, 2.0]),
            models=models,
            # Per-instance slots are a generation-mode knob only.
            slots=(rng.choice([None, rng.randint(1, 6)])
                   if generation else None)))
    # Every model must stay servable somewhere.
    if all(s.models is not None for s in specs):
        specs.append(InstanceSpec())
    return FleetSpec(tuple(specs))


@pytest.mark.parametrize("trial", range(8))
def test_serve_same_seed_identical_different_seed_distinct(
        default_accel, trial):
    meta = random.Random(1000 + trial)
    seed = meta.randint(0, 10_000)
    shape_seed = meta.randint(0, 1 << 30)
    duration = meta.uniform(200.0, 600.0)
    scheduler = meta.choice(["round-robin", "least-loaded",
                             "model-affinity"])
    batching = _random_batching(meta)
    fleet = _random_fleet(meta)
    failures = (FailurePlan(meta.uniform(100, 400), meta.uniform(5, 50),
                            seed=seed)
                if meta.random() < 0.5 else None)

    def run(wseed):
        # Same generator *shape* every call (shape_seed replays the
        # construction draws); only the workload seed varies.
        requests = _random_arrivals(
            random.Random(shape_seed), wseed).generate(duration)
        sim = ClusterSimulator(
            default_accel, fleet=fleet, scheduler=scheduler,
            batching=batching, reprogram_latency_ms=2.0,
            failures=failures)
        return requests, sim.run(requests)

    reqs_a, a = run(seed)
    reqs_b, b = run(seed)
    assert reqs_a == reqs_b
    assert a.trace == b.trace
    assert a.records == b.records
    assert summarize(a) == summarize(b)

    # A different workload seed must change the event stream (the
    # arrival draws differ; requiring identical traces would only hold
    # by coincidence on an empty workload).
    _, c = run(seed + 17)
    if reqs_a:
        assert c.trace != a.trace


@pytest.mark.parametrize("trial", range(6))
def test_generate_same_seed_identical(default_accel, trial):
    meta = random.Random(2000 + trial)
    seed = meta.randint(0, 10_000)
    mix = _random_mix(meta)
    qps = meta.uniform(10, 50)
    duration = meta.uniform(150.0, 450.0)
    slots = meta.randint(1, 6)
    prompt = LengthSampler("uniform", meta.randint(1, 8),
                           meta.randint(8, 32))
    output = LengthSampler("geometric", meta.randint(1, 4),
                           meta.randint(16, 64),
                           mean_extra=meta.uniform(0.0, 12.0))
    priority_frac = meta.choice([0.0, 0.2, 0.5])
    failures = (FailurePlan(meta.uniform(80, 300), meta.uniform(5, 40),
                            seed=seed)
                if meta.random() < 0.5 else None)
    n_instances = meta.randint(1, 3)

    def run():
        arrivals = PoissonArrivals(qps, mix, seed=seed).generate(duration)
        requests = attach_generation_lengths(
            arrivals, prompt, output, seed=seed,
            max_total=default_accel.synth.max_seq_len)
        requests = attach_priorities(requests, priority_frac, seed=seed)
        sim = GenerationClusterSimulator(
            default_accel, n_instances, slots=slots,
            scheduler="least-loaded", failures=failures)
        return sim.run(requests)

    a, b = run(), run()
    assert a.trace == b.trace
    assert a.records == b.records
    assert a.instances == b.instances


@pytest.mark.parametrize("trial", range(10))
def test_arrival_times_monotone_and_nonnegative(trial):
    meta = random.Random(3000 + trial)
    requests = _random_arrivals(meta, meta.randint(0, 99)).generate(
        meta.uniform(100.0, 2000.0))
    times = [r.t_ms for r in requests]
    assert times == sorted(times)
    assert all(t >= 0 for t in times)
    assert [r.rid for r in requests] == list(range(len(requests)))


@pytest.mark.parametrize("trial", range(10))
def test_sampled_lengths_within_bounds(trial):
    meta = random.Random(4000 + trial)
    lo = meta.randint(1, 16)
    hi = lo + meta.randint(0, 48)  # zero-width ranges included
    kind = meta.choice(["fixed", "uniform", "geometric"])
    sampler = LengthSampler(kind, lo, hi,
                            mean_extra=meta.uniform(0.0, 20.0))
    rng = random.Random(meta.randint(0, 99))
    draws = [sampler.sample(rng) for _ in range(300)]
    assert all(lo <= d <= max(lo, hi) for d in draws), (kind, lo, hi)
    # Replaying the same draw seed reproduces the sequence exactly.
    replay = random.Random(7), random.Random(7)
    a = [sampler.sample(replay[0]) for _ in range(20)]
    b = [sampler.sample(replay[1]) for _ in range(20)]
    assert a == b
