"""Heterogeneous fleets: specs, the CLI grammar, capability dispatch,
speed scaling, and the PipelineGroup mixed-fleet adapter."""

import pytest

from repro.nn import get_model
from repro.parallel import PipelineGroup
from repro.serving import ModelMix, PoissonArrivals, summarize
from repro.serving.cluster import ClusterSimulator
from repro.serving.generation import GenerationClusterSimulator
from repro.serving.workload import (GenerationRequest, LengthSampler,
                                    attach_generation_lengths)
from repro.sim import FleetSpec, InstanceSpec

MIX = ModelMix("model2-lhc-trigger")
MIX2 = ModelMix({"model2-lhc-trigger": 2.0, "model1-peng-isqed21": 1.0})


def _reqs(qps=400, seed=3, duration=800, mix=MIX):
    return PoissonArrivals(qps, mix, seed=seed).generate(duration)


class TestSpecs:
    def test_defaults_are_homogeneous(self):
        fleet = FleetSpec.uniform(3)
        assert fleet.n == 3 and fleet.homogeneous

    def test_any_override_breaks_homogeneity(self):
        fleet = FleetSpec((InstanceSpec(), InstanceSpec(speed=0.5)))
        assert not fleet.homogeneous

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one instance"):
            FleetSpec(())
        with pytest.raises(ValueError, match="speed must be positive"):
            InstanceSpec(speed=0.0)
        with pytest.raises(ValueError, match="at least one model"):
            InstanceSpec(models=())
        with pytest.raises(ValueError, match="slots must be >= 1"):
            InstanceSpec(slots=0)

    def test_parse_grammar(self):
        fleet = FleetSpec.parse("1.0x2,0.5/16@model2-lhc-trigger+bert-variant")
        assert fleet.n == 3
        assert fleet.specs[0] == fleet.specs[1] == InstanceSpec()
        third = fleet.specs[2]
        assert third.speed == 0.5 and third.slots == 16
        assert third.models == ("model2-lhc-trigger", "bert-variant")
        assert FleetSpec.parse(fleet.describe()) == fleet  # round-trips

    @pytest.mark.parametrize("bad", ["", "fast", "1.0x0", "1.0/x2"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            FleetSpec.parse(bad)


class TestHeterogeneousServe:
    def test_slow_instance_takes_longer_per_batch(self, default_accel):
        """speed=0.5 doubles a batch's service time exactly."""
        reqs = [r for r in _reqs(qps=100, duration=400)]
        fast = ClusterSimulator(default_accel, 1).run(reqs)
        slow = ClusterSimulator(
            default_accel,
            fleet=FleetSpec((InstanceSpec(speed=0.5),))).run(reqs)
        for a, b in zip(fast.records, slow.records):
            assert b.service_ms == pytest.approx(2 * a.service_ms)

    def test_capability_pinning_respected(self, default_accel):
        """A pinned instance only ever serves its capability set."""
        fleet = FleetSpec.parse("1.0x2,1.0@model1-peng-isqed21")
        res = ClusterSimulator(
            default_accel, fleet=fleet).run(_reqs(mix=MIX2))
        assert all(r.model == "model1-peng-isqed21"
                   for r in res.records if r.instance == 2)
        # Unpinned instances still serve everything that remains.
        assert {r.model for r in res.records} == \
               {"model2-lhc-trigger", "model1-peng-isqed21"}

    def test_unservable_model_raises(self, default_accel):
        """Every instance pinned away from the request's model."""
        fleet = FleetSpec((InstanceSpec(models=("bert-variant",)),))
        sim = ClusterSimulator(default_accel, fleet=fleet)
        with pytest.raises(ValueError, match="no instance in the fleet"):
            sim.run(_reqs(qps=50, duration=100))

    def test_per_instance_reprogram_override(self, default_accel):
        """One instance with free switches, one with expensive ones."""
        fleet = FleetSpec((
            InstanceSpec(reprogram_latency_ms=0.0),
            InstanceSpec(reprogram_latency_ms=7.0),
        ))
        res = ClusterSimulator(
            default_accel, fleet=fleet, scheduler="round-robin",
            reprogram_latency_ms=99.0).run(_reqs(mix=MIX2, qps=200,
                                                 duration=400))
        inst0, inst1 = res.instances
        assert inst0.reprogram_time_ms == 0.0
        assert inst1.reprogram_time_ms == 7.0 * inst1.switch_count

    def test_serve_rejects_slot_specs(self, default_accel):
        """/SLOTS is a generation knob; serve mode must say so rather
        than silently dropping it."""
        fleet = FleetSpec((InstanceSpec(slots=4),))
        sim = ClusterSimulator(default_accel, fleet=fleet)
        with pytest.raises(ValueError, match="generate-mode only"):
            sim.run(_reqs(qps=50, duration=100))

    def test_n_instances_fleet_mismatch_rejected(self, default_accel):
        with pytest.raises(ValueError, match="contradicts"):
            ClusterSimulator(default_accel, 3,
                             fleet=FleetSpec.uniform(2))
        with pytest.raises(ValueError, match="n_instances or a FleetSpec"):
            ClusterSimulator(default_accel)


class TestPipelineGroupAdapter:
    def test_mixed_fleet_prices_through_the_group(self, default_accel):
        """A fleet mixing a PipelineGroup with a plain replica: the
        group instance's service time is the pipeline fill latency."""
        group = PipelineGroup(default_accel, n_devices=2)
        fleet = FleetSpec((
            InstanceSpec(),
            group.as_instance_spec(),
        ))
        cfg = get_model("model2-lhc-trigger")
        reqs = _reqs(qps=300, duration=500)
        res = ClusterSimulator(default_accel, fleet=fleet).run(reqs)
        single_ms = default_accel.latency_report(cfg).latency_ms
        group_ms = group.latency_report(cfg).latency_ms
        for rec in res.records:
            if rec.batch_size != 1:
                continue
            expected = single_ms if rec.instance == 0 else group_ms
            assert rec.service_ms == pytest.approx(expected)
        assert {r.instance for r in res.records} == {0, 1}

    def test_adapter_carries_capabilities_and_speed(self, default_accel):
        spec = PipelineGroup(default_accel, 2).as_instance_spec(
            speed=2.0, models=("bert-variant",))
        assert spec.speed == 2.0 and spec.models == ("bert-variant",)
        assert isinstance(spec.target, PipelineGroup)

    def test_generation_rejects_targets(self, default_accel):
        group = PipelineGroup(default_accel, 2)
        fleet = FleetSpec((group.as_instance_spec(),))
        sim = GenerationClusterSimulator(default_accel, fleet=fleet)
        with pytest.raises(ValueError, match="serve-mode only"):
            sim.run([GenerationRequest(rid=0, t_ms=0.0,
                                       model="model2-lhc-trigger",
                                       prompt_tokens=4,
                                       output_tokens=2)])


class TestHeterogeneousGeneration:
    def test_per_instance_slots(self, default_accel):
        """A /SLOTS override caps in-flight sequences per instance."""
        fleet = FleetSpec((InstanceSpec(slots=1),))
        arrivals = PoissonArrivals(40, MIX, seed=9).generate(300)
        reqs = attach_generation_lengths(
            arrivals, LengthSampler("fixed", 8), LengthSampler("fixed", 8),
            max_total=default_accel.synth.max_seq_len)
        res = GenerationClusterSimulator(
            default_accel, fleet=fleet, slots=8).run(reqs)
        # With one slot, every step carries at most one sequence:
        # admitted + decoding <= 1 for every step trace entry.
        steps = [ev for ev in res.trace if ev[0] == "step"]
        assert steps
        assert all(ev[4] + ev[5] <= 1 for ev in steps)

    def test_speed_scales_step_duration(self, default_accel):
        req = [GenerationRequest(rid=0, t_ms=0.0,
                                 model="model2-lhc-trigger",
                                 prompt_tokens=8, output_tokens=4)]
        fast = GenerationClusterSimulator(default_accel, 1).run(req)
        slow = GenerationClusterSimulator(
            default_accel,
            fleet=FleetSpec((InstanceSpec(speed=0.5),))).run(req)
        assert slow.records[0].latency_ms == pytest.approx(
            2 * fast.records[0].latency_ms)
