"""Priority admission and step-boundary preemption for generation."""

import pytest

from repro.serving import (
    ModelMix,
    PoissonArrivals,
    attach_generation_lengths,
    attach_priorities,
    render_generation_report,
    summarize_generation,
)
from repro.serving.generation import GenerationClusterSimulator
from repro.serving.workload import GenerationRequest, LengthSampler

MODEL = "model2-lhc-trigger"
MIX = ModelMix(MODEL)


def _req(rid, t_ms, prompt=8, out=4, priority=0, model=MODEL):
    return GenerationRequest(rid=rid, t_ms=t_ms, model=model,
                             prompt_tokens=prompt, output_tokens=out,
                             priority=priority)


class TestAttachPriorities:
    def test_deterministic_and_bounded(self):
        arrivals = PoissonArrivals(50, MIX, seed=1).generate(500)
        reqs = attach_generation_lengths(
            arrivals, LengthSampler("fixed", 8), LengthSampler("fixed", 8))
        a = attach_priorities(reqs, 0.3, seed=5)
        b = attach_priorities(reqs, 0.3, seed=5)
        assert a == b
        assert 0 < sum(1 for r in a if r.priority) < len(a)
        assert attach_priorities(reqs, 0.0) == reqs
        with pytest.raises(ValueError, match="high_fraction"):
            attach_priorities(reqs, 1.5)
        with pytest.raises(ValueError, match="high priority"):
            attach_priorities(reqs, 0.5, high=0)

    def test_priority_validates_on_request(self):
        assert _req(0, 0.0, priority=3).priority == 3

    def test_marking_independent_of_length_draws(self):
        """Regression: with one shared seed, priority marking used to
        consume the same PRNG sequence as the geometric length
        sampler, so the marked class was exactly the long-output
        requests.  The streams must be independent."""
        arrivals = PoissonArrivals(200, MIX, seed=0).generate(1000)
        reqs = attach_generation_lengths(
            arrivals, LengthSampler("fixed", 8),
            LengthSampler("geometric", 1, 256, mean_extra=32.0), seed=0)
        marked = attach_priorities(reqs, 0.5, seed=0)
        hi = [r.output_tokens for r in marked if r.priority]
        lo = [r.output_tokens for r in marked if not r.priority]
        assert hi and lo
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        # Both classes sample the same distribution; their means must
        # be in the same ballpark, not an extreme-order split.
        assert 0.5 < mean(hi) / mean(lo) < 2.0


class TestPreemption:
    def test_preempts_the_last_active_slot(self, default_accel):
        """slots=1: the single in-flight low-priority sequence is the
        'last active slot' — a high-priority arrival must evict it at
        the next boundary, run to completion, then let it resume."""
        reqs = [
            _req(0, 0.0, out=64, priority=0),
            _req(1, 1.0, out=2, priority=5),
        ]
        res = GenerationClusterSimulator(
            default_accel, 1, slots=1).run(reqs)
        assert res.total_preemptions == 1
        rec0 = next(r for r in res.records if r.rid == 0)
        rec1 = next(r for r in res.records if r.rid == 1)
        assert rec0.preemptions == 1
        assert rec1.preemptions == 0
        # The high-priority request finishes before the evicted one.
        assert rec1.t_complete_ms < rec0.t_complete_ms
        assert rec0.output_tokens == 64  # resume lost no tokens
        kinds = [ev[0] for ev in res.trace]
        assert "preempt" in kinds and "resume" in kinds

    def test_no_preemption_without_priorities(self, default_accel):
        reqs = [_req(0, 0.0, out=64), _req(1, 1.0, out=2)]
        res = GenerationClusterSimulator(
            default_accel, 1, slots=1).run(reqs)
        assert res.total_preemptions == 0
        rec0, rec1 = sorted(res.records, key=lambda r: r.rid)
        assert rec1.t_complete_ms > rec0.t_complete_ms  # plain FIFO

    def test_equal_priority_never_preempts(self, default_accel):
        reqs = [_req(0, 0.0, out=64, priority=2),
                _req(1, 1.0, out=2, priority=2)]
        res = GenerationClusterSimulator(
            default_accel, 1, slots=1, preemption=True).run(reqs)
        assert res.total_preemptions == 0

    def test_cross_model_waiter_cannot_preempt(self, default_accel):
        """Preemption cannot admit a different model (its weights are
        not resident), so a foreign high-priority waiter must wait for
        the active set to drain, not evict it."""
        reqs = [_req(0, 0.0, out=32, priority=0),
                _req(1, 1.0, out=2, priority=9,
                     model="model1-peng-isqed21")]
        res = GenerationClusterSimulator(
            default_accel, 1, slots=1).run(reqs)
        assert res.total_preemptions == 0
        rec0, rec1 = sorted(res.records, key=lambda r: r.rid)
        assert rec1.t_admit_ms >= rec0.t_complete_ms

    def test_priority_cuts_high_class_wait_under_load(self, default_accel):
        # Overloaded single slot: queueing is deep, so priority class
        # separation (and preemption) must show up unmistakably.
        arrivals = PoissonArrivals(400, MIX, seed=8).generate(300)
        base = attach_generation_lengths(
            arrivals, LengthSampler("fixed", 12),
            LengthSampler("fixed", 48),
            max_total=default_accel.synth.max_seq_len)
        prioritized = attach_priorities(base, 0.15, seed=4)
        sim = GenerationClusterSimulator(default_accel, 1, slots=1)
        fifo = sim.run(base)
        prio = sim.run(prioritized)
        marked = {r.rid for r in prioritized if r.priority}
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        hi_fifo = mean([r.wait_ms for r in fifo.records
                        if r.rid in marked])
        hi_prio = mean([r.wait_ms for r in prio.records
                        if r.rid in marked])
        assert hi_prio < hi_fifo
        assert prio.total_preemptions > 0
        # Conservation: everything still completes exactly once.
        assert sorted(r.rid for r in prio.records) == \
               [r.rid for r in base]

    def test_preemptions_surface_in_report(self, default_accel):
        reqs = [_req(0, 0.0, out=64, priority=0),
                _req(1, 1.0, out=2, priority=5)]
        rep = summarize_generation(GenerationClusterSimulator(
            default_accel, 1, slots=1).run(reqs))
        assert rep.total_preemptions == 1
        assert "preemptions" in render_generation_report(rep)
        assert rep.as_dict()["preemptions"] == 1
