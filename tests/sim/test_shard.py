"""Sharded simulation: partitioning, RNG derivation, and merge exactness.

Three contracts under test:

* **Partition/stripe determinism** — :class:`repro.sim.shard.ShardPlan`
  is a pure function of ``(fleet, shards)`` and the request stripe a
  pure function of input order.
* **RNG stability** (the per-shard derivation satellite) — cell
  namespaces key by the cell's first *global* instance index and
  failure streams by global instance index, so re-partitioning a fleet
  renumbers nothing and no cell can draw from a sibling's stream.
* **Merge exactness** — a merged summary's percentile multisets,
  sums, and depth integral equal the cells' combined truth, and the
  process-pool path is byte-identical to the serial in-process path.

``shards=1`` never enters the shard module at all: the façade runs the
ordinary engine, which is what keeps the trace-identity goldens
byte-identical with the flag present.
"""

import pytest

from repro.obs import KernelProfiler, TraceRecorder
from repro.serving import (
    ClusterSimulator,
    GenerationClusterSimulator,
    LengthSampler,
    ModelMix,
    PoissonArrivals,
    attach_generation_lengths,
    fixed_size,
    summarize,
    summarize_generation,
)
from repro.sim.failures import FailureInjector, FailurePlan
from repro.sim.fleet import FleetSpec, InstanceSpec
from repro.sim.rng import RngStreams
from repro.sim.shard import (
    ShardPlan,
    merge_generation_summaries,
    merge_serve_summaries,
    run_sharded,
)

MIX = ModelMix({"model2-lhc-trigger": 3.0, "model1-peng-isqed21": 2.0,
                "model3-efa-trans": 1.0})


def _requests(qps=350, seed=11, duration=800):
    return PoissonArrivals(qps, MIX, seed=seed).generate(duration)


def _gen_requests(accel, qps=30, seed=404, duration=600.0):
    arrivals = PoissonArrivals(qps, MIX, seed=seed).generate(duration)
    return attach_generation_lengths(
        arrivals,
        LengthSampler("uniform", 8, 24),
        LengthSampler("geometric", 4, 48, mean_extra=10.0),
        seed=77, max_total=accel.synth.max_seq_len)


# ----------------------------------------------------------------------
# ShardPlan
# ----------------------------------------------------------------------

class TestShardPlan:
    def test_even_partition(self):
        plan = ShardPlan.partition(FleetSpec.uniform(8), 4)
        assert plan.bounds == ((0, 2), (2, 4), (4, 6), (6, 8))

    def test_uneven_partition_covers_everything(self):
        plan = ShardPlan.partition(FleetSpec.uniform(7), 3)
        assert plan.bounds[0][0] == 0 and plan.bounds[-1][1] == 7
        sizes = [hi - lo for lo, hi in plan.bounds]
        assert sum(sizes) == 7
        assert max(sizes) - min(sizes) <= 1
        # Contiguous: each cell starts where the previous ended.
        for (_, hi), (lo, _) in zip(plan.bounds, plan.bounds[1:]):
            assert hi == lo

    def test_cell_fleets_slice_the_specs(self):
        specs = tuple(InstanceSpec(speed=float(i + 1)) for i in range(5))
        fleet = FleetSpec(specs)
        plan = ShardPlan.partition(fleet, 2)
        fleets = plan.cell_fleets(fleet)
        assert [f.n for f in fleets] == [2, 3]
        assert fleets[1].specs == specs[2:]

    def test_request_striping_is_positional(self):
        plan = ShardPlan.partition(FleetSpec.uniform(4), 2)
        cells = plan.split_requests(list(range(9)))
        assert cells == [[0, 2, 4, 6, 8], [1, 3, 5, 7]]

    def test_too_many_shards_rejected(self):
        with pytest.raises(ValueError, match="every cell needs"):
            ShardPlan.partition(FleetSpec.uniform(2), 3)

    def test_nonpositive_shards_rejected(self):
        with pytest.raises(ValueError, match="shards must be >= 1"):
            ShardPlan.partition(FleetSpec.uniform(2), 0)

    def test_merge_refuses_empty(self):
        with pytest.raises(ValueError, match="no cell summaries"):
            merge_serve_summaries([])
        with pytest.raises(ValueError, match="no cell summaries"):
            merge_generation_summaries([])

    def test_unknown_mode_rejected(self, default_accel):
        sim = ClusterSimulator(default_accel, 4)
        with pytest.raises(ValueError, match="unknown shard mode"):
            run_sharded(sim, [], mode="dse", shards=2)


# ----------------------------------------------------------------------
# RNG derivation (satellite: stability under renumbering, isolation)
# ----------------------------------------------------------------------

class TestRngDerivation:
    def test_derive_is_deterministic(self):
        a = RngStreams(7).derive("cell/4").stream("x").random()
        b = RngStreams(7).derive("cell/4").stream("x").random()
        assert a == b

    def test_derive_namespaces_are_independent(self):
        root = RngStreams(7)
        a = root.derive("cell/0").stream("x").random()
        b = root.derive("cell/4").stream("x").random()
        assert a != b
        # A child namespace never collides with a root-level stream of
        # the same name.
        assert a != RngStreams(7).stream("x").random()

    def test_cell_streams_stable_under_renumbering(self):
        """A cell's namespace depends on which instances it holds, not
        on how many sibling cells exist."""
        fleet = FleetSpec.uniform(8)
        two = ShardPlan.partition(fleet, 2).cell_streams(seed=3)
        four = ShardPlan.partition(fleet, 4).cell_streams(seed=3)
        # 2-shard cell 1 starts at instance 4; 4-shard cell 2 does too.
        assert two[1].seed == four[2].seed
        assert (two[1].stream("x").random()
                == RngStreams(3).derive("cell/4").stream("x").random())

    def test_failure_streams_key_by_global_index(self, default_accel):
        """Instance 2's fault history is identical whether it's local
        index 2 of an unsharded engine or local index 0 of a cell with
        ``instance_base=2`` — the stream name is ``failure/2`` both
        ways (shard-renumbering stability)."""
        plan = FailurePlan(mtbf_ms=500.0, mttr_ms=60.0, seed=9)
        whole = FailureInjector(plan, horizon_ms=10_000.0)
        cell = FailureInjector(plan, horizon_ms=10_000.0)
        # Whole-fleet draw order: instances 0..3 interleaved.
        seq_whole = [whole.next_failure_ms(i, 0.0) for i in range(4)]
        # Sibling cell [0, 2) draws first and heavily — it must not
        # perturb cell [2, 4)'s streams.
        for _ in range(50):
            cell.next_failure_ms(0, 0.0)
            cell.repair_duration_ms(1)
        assert cell.next_failure_ms(2, 0.0) == seq_whole[2]
        assert cell.next_failure_ms(3, 0.0) == seq_whole[3]

    def test_per_instance_failure_counts_survive_sharding(
            self, default_accel):
        """End-to-end renumbering stability: every instance's injected-
        fault count matches between shards=1 and shards=2 (global
        stream keys + the global failure horizon)."""
        reqs = _requests(qps=250, seed=13, duration=2000)
        plan = FailurePlan(mtbf_ms=600.0, mttr_ms=80.0, seed=5)
        sim = ClusterSimulator(default_accel, 4, scheduler="least-loaded",
                               batching=fixed_size(4), failures=plan)
        whole = sim.run(reqs, detail="summary")
        sharded = sim.run(reqs, detail="summary", shards=2)
        assert ([i.failures for i in sharded.instances]
                == [i.failures for i in whole.instances])
        assert sharded.availability is not None
        assert sharded.degraded_count is not None


# ----------------------------------------------------------------------
# Merged runs
# ----------------------------------------------------------------------

class TestShardedServe:
    def test_shards_one_is_the_ordinary_run(self, default_accel):
        """The flag's identity case: byte-identical full results."""
        reqs = _requests(duration=300)
        sim = ClusterSimulator(default_accel, 3, scheduler="round-robin",
                               batching=fixed_size(4))
        plain = sim.run(reqs)
        flagged = sim.run(reqs, shards=1)
        assert flagged.records == plain.records
        assert flagged.trace == plain.trace

    def test_merge_preserves_multisets_and_sums(self, default_accel):
        reqs = _requests()
        sim = ClusterSimulator(default_accel, 4, scheduler="round-robin",
                               batching=fixed_size(4))
        plan = ShardPlan.partition(sim.fleet, 2)
        merged = sim.run(reqs, detail="summary", shards=2)
        cells = [
            sim._shard_cell(
                fleet=f, instance_base=lo, requests=cell_reqs,
                failure_horizon_ms=max(r.t_ms for r in reqs),
                rng_seed=stream.seed)
            for f, (lo, _), cell_reqs, stream in zip(
                plan.cell_fleets(sim.fleet), plan.bounds,
                plan.split_requests(reqs), plan.cell_streams())
        ]
        assert merged.total_requests == sum(c.total_requests for c in cells)
        assert merged.total_requests == len(reqs)
        for model in merged.model_lats:
            want = sorted(lat for c in cells
                          for lat in c.model_lats.get(model, []))
            assert sorted(merged.model_lats[model]) == want
        assert merged.makespan_ms == max(c.makespan_ms for c in cells)
        assert [i.index for i in merged.instances] == [0, 1, 2, 3]
        # Depth integrals add: close every cell at the same horizon.
        horizon = merged.makespan_ms
        want_area = sum(c.mean_queue_depth(horizon) for c in cells)
        assert merged.mean_queue_depth(horizon) == pytest.approx(
            want_area, rel=1e-12)

    def test_pool_path_matches_serial(self, default_accel):
        reqs = _requests(duration=600)
        sim = ClusterSimulator(default_accel, 4, scheduler="round-robin",
                               batching=fixed_size(4))
        serial = sim.run(reqs, detail="summary", shards=2)
        pooled = sim.run(reqs, detail="summary", shards=2, shard_jobs=2)
        assert summarize(pooled) == summarize(serial)

    def test_observer_sees_globally_indexed_rows(self, default_accel):
        reqs = _requests(duration=300)
        sim = ClusterSimulator(default_accel, 4, scheduler="round-robin",
                               batching=fixed_size(4))
        recorder = TraceRecorder()
        sim.run(reqs, detail="summary", shards=2, observer=recorder)
        named = {ev["args"]["name"] for ev in recorder.events
                 if ev["name"] == "thread_name"}
        # Rows from both cells, carrying global instance indices.
        assert {"instance 0", "instance 1"} & named
        assert {"instance 2", "instance 3"} & named

    def test_full_detail_rejected(self, default_accel):
        sim = ClusterSimulator(default_accel, 2)
        with pytest.raises(ValueError, match="summary-detail only"):
            sim.run(_requests(duration=50), shards=2)

    def test_profiler_rejected(self, default_accel):
        sim = ClusterSimulator(default_accel, 2)
        with pytest.raises(ValueError, match="cannot span shard cells"):
            sim.run(_requests(duration=50), detail="summary", shards=2,
                    profiler=KernelProfiler())

    def test_observer_rejected_on_pool_path(self, default_accel):
        sim = ClusterSimulator(default_accel, 2)
        with pytest.raises(ValueError, match="cannot cross shard"):
            sim.run(_requests(duration=50), detail="summary", shards=2,
                    shard_jobs=2, observer=TraceRecorder())


class TestShardedGeneration:
    def test_merge_preserves_multisets(self, default_accel):
        reqs = _gen_requests(default_accel)
        sim = GenerationClusterSimulator(default_accel, 4, slots=4,
                                         scheduler="least-loaded")
        whole = sim.run(reqs, detail="summary")
        merged = sim.run(reqs, detail="summary", shards=2)
        assert merged.total_requests == whole.total_requests
        assert merged.total_tokens == whole.total_tokens
        assert len(merged.ttfts) == len(merged.lats) == len(merged.req_tpots)
        assert [i.index for i in merged.instances] == [0, 1, 2, 3]
        report = summarize_generation(merged)
        assert report.total_requests == len(reqs)

    def test_pool_path_matches_serial(self, default_accel):
        reqs = _gen_requests(default_accel)
        sim = GenerationClusterSimulator(default_accel, 4, slots=4,
                                         scheduler="least-loaded")
        serial = sim.run(reqs, detail="summary", shards=2)
        pooled = sim.run(reqs, detail="summary", shards=2, shard_jobs=2)
        assert summarize_generation(pooled) == summarize_generation(serial)

    def test_failure_run_merges_availability(self, default_accel):
        reqs = _gen_requests(default_accel, qps=35, seed=909,
                             duration=1500.0)
        plan = FailurePlan(mtbf_ms=900.0, mttr_ms=120.0, seed=5)
        sim = GenerationClusterSimulator(default_accel, 4, slots=4,
                                         scheduler="least-loaded",
                                         failures=plan)
        merged = sim.run(reqs, detail="summary", shards=2)
        assert merged.availability is not None
        assert 0.0 < merged.availability <= 1.0
        assert merged.total_failures == sum(
            i.failures for i in merged.instances)

    def test_full_detail_rejected(self, default_accel):
        sim = GenerationClusterSimulator(default_accel, 2, slots=4)
        with pytest.raises(ValueError, match="summary-detail only"):
            sim.run(_gen_requests(default_accel, duration=50.0), shards=2)
