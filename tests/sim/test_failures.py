"""Failure/recovery injection: conservation, retries, availability,
mid-prefill aborts, and the all-down parking path."""

import pytest

from repro.serving import (
    ModelMix,
    PoissonArrivals,
    fixed_size,
    render_generation_report,
    render_serving_report,
    summarize,
    summarize_generation,
)
from repro.serving.cluster import ClusterSimulator
from repro.serving.generation import GenerationClusterSimulator
from repro.serving.slo import plan_capacity
from repro.serving.workload import (GenerationRequest, LengthSampler,
                                    attach_generation_lengths)
from repro.sim import FailureInjector, FailurePlan, FleetSpec, InstanceSpec

MIX = ModelMix("model2-lhc-trigger")


def _reqs(qps=500, seed=3, duration=1000):
    return PoissonArrivals(qps, MIX, seed=seed).generate(duration)


class TestFailurePlan:
    def test_validation(self):
        with pytest.raises(ValueError, match="mtbf_ms must be positive"):
            FailurePlan(0.0, 10.0)
        with pytest.raises(ValueError, match="mttr_ms must be >= 0"):
            FailurePlan(100.0, -1.0)

    def test_parse(self):
        plan = FailurePlan.parse("200:25.5", seed=4)
        assert plan.mtbf_ms == 200.0
        assert plan.mttr_ms == 25.5
        assert plan.seed == 4
        for bad in ("200", "a:b", ""):
            with pytest.raises(ValueError):
                FailurePlan.parse(bad)

    def test_injector_horizon_and_streams(self):
        inj = FailureInjector(FailurePlan(50.0, 5.0, seed=1),
                              horizon_ms=300.0)
        t = inj.next_failure_ms(0, 0.0)
        assert t is not None and t > 0.0
        # Draws advance per instance stream, independent across idx.
        other_first = FailureInjector(
            FailurePlan(50.0, 5.0, seed=1), 300.0).next_failure_ms(1, 0.0)
        assert other_first != t
        # Beyond the horizon, injection stops.
        assert inj.next_failure_ms(0, 10_000.0) is None

    def test_zero_mttr_recovers_instantly(self):
        inj = FailureInjector(FailurePlan(50.0, 0.0), horizon_ms=100.0)
        assert inj.repair_duration_ms(0) == 0.0


class TestServeFailures:
    def test_every_request_still_served_exactly_once(self, default_accel):
        reqs = _reqs()
        res = ClusterSimulator(
            default_accel, 3, batching=fixed_size(4),
            reprogram_latency_ms=2.0,
            failures=FailurePlan(250.0, 30.0, seed=7)).run(reqs)
        assert sorted(r.rid for r in res.records) == \
               [r.rid for r in reqs]
        assert res.total_failures > 0

    def test_availability_and_downtime_consistent(self, default_accel):
        res = ClusterSimulator(
            default_accel, 3,
            failures=FailurePlan(200.0, 40.0, seed=5)).run(_reqs())
        assert res.availability is not None
        assert 0.0 < res.availability < 1.0
        downtime = sum(i.downtime_ms for i in res.instances)
        assert downtime > 0.0
        assert sum(i.failures for i in res.instances) == res.total_failures

    def test_aborted_batches_count_retries(self, default_accel):
        res = ClusterSimulator(
            default_accel, 2, batching=fixed_size(8),
            failures=FailurePlan(100.0, 20.0, seed=11)).run(_reqs())
        retried = [r for r in res.records if r.retries]
        assert res.total_retries == sum(r.retries for r in res.records)
        assert retried, "no batch was ever in flight during a fault"
        # A retried request's latency includes the wasted attempt.
        assert all(r.latency_ms > 0 for r in retried)

    def test_reports_gain_failure_rows_only_for_failure_runs(
            self, default_accel):
        reqs = _reqs(qps=200, duration=400)
        clean = summarize(ClusterSimulator(default_accel, 2).run(reqs))
        faulty = summarize(ClusterSimulator(
            default_accel, 2,
            failures=FailurePlan(150.0, 25.0, seed=3)).run(reqs))
        assert clean.availability is None
        assert "availability" not in render_serving_report(clean)
        assert faulty.availability is not None
        rendered = render_serving_report(faulty)
        assert "availability" in rendered
        assert "p99 degraded" in rendered
        assert faulty.p99_degraded_ms is not None
        assert "failures" in faulty.as_dict()
        assert "failures" not in clean.as_dict()

    def test_single_instance_fleet_parks_and_drains(self, default_accel):
        """With one instance, every fault parks the backlog until
        recovery — nothing may be lost or double-served."""
        reqs = _reqs(qps=300, duration=800)
        res = ClusterSimulator(
            default_accel, 1,
            failures=FailurePlan(120.0, 60.0, seed=13)).run(reqs)
        assert sorted(r.rid for r in res.records) == \
               [r.rid for r in reqs]
        assert res.total_failures > 0

    def test_plan_capacity_under_failures(self, default_accel):
        reqs = _reqs(qps=300, duration=500)
        plan = plan_capacity(
            default_accel, reqs, target_p99_ms=50.0,
            failures=FailurePlan(200.0, 30.0, seed=2))
        assert plan.meets_slo
        assert plan.report.availability is not None


class TestGenerationFailures:
    def _gen_reqs(self, accel, qps=30, duration=600, out=24, seed=9):
        arrivals = PoissonArrivals(qps, MIX, seed=seed).generate(duration)
        return attach_generation_lengths(
            arrivals, LengthSampler("fixed", 12),
            LengthSampler("fixed", out),
            max_total=accel.synth.max_seq_len)

    def test_every_sequence_completes_with_full_output(self, default_accel):
        # Load high enough that faults land on busy instances (retries).
        reqs = self._gen_reqs(default_accel, qps=150, duration=600, out=48)
        res = GenerationClusterSimulator(
            default_accel, 2, slots=4,
            failures=FailurePlan(60.0, 25.0, seed=21)).run(reqs)
        assert sorted(r.rid for r in res.records) == \
               [r.rid for r in reqs]
        assert all(r.output_tokens == 48 for r in res.records)
        assert res.total_failures > 0 and res.total_retries > 0

    def test_failure_mid_prefill_restarts_request(self, default_accel):
        """A fault during the very first step (prefill in flight, no
        token emitted yet) restarts the request from scratch — it must
        still complete and count a retry."""
        plan = FailurePlan(1e9, 5.0, seed=0)
        sim = GenerationClusterSimulator(default_accel, 2, slots=4,
                                         failures=plan)
        reqs = [GenerationRequest(rid=0, t_ms=0.0,
                                  model="model2-lhc-trigger",
                                  prompt_tokens=32, output_tokens=8)]
        # Force the fault inside the prefill window by injecting it
        # through the engine directly: pick a fail time below the
        # prefill duration.
        prefill_ms = sim.service.prefill_ms("model2-lhc-trigger", 32)
        plan = FailurePlan(prefill_ms / 4, 1.0, seed=3,
                           horizon_ms=prefill_ms / 2)
        sim = GenerationClusterSimulator(default_accel, 1, slots=4,
                                         failures=plan)
        res = sim.run(reqs)
        assert [r.rid for r in res.records] == [0]
        rec = res.records[0]
        if res.total_failures:  # fault landed inside the run
            assert rec.retries >= 1
            # The restart pushes TTFT past a clean prefill.
            assert rec.ttft_ms > prefill_ms
        assert rec.output_tokens == 8

    def test_resume_keeps_emitted_tokens(self, default_accel):
        """A fault after the first token resumes decoding instead of
        re-emitting: total token accounting must stay exact."""
        reqs = self._gen_reqs(default_accel, qps=20, duration=500, out=40)
        res = GenerationClusterSimulator(
            default_accel, 2, slots=2,
            failures=FailurePlan(100.0, 20.0, seed=31)).run(reqs)
        assert res.total_tokens == sum(r.output_tokens for r in reqs)
        # Instance-level token accounting must balance too: aborted
        # sweeps refund their counted-but-unemitted tokens, so the
        # per-instance totals sum to exactly the delivered tokens.
        assert sum(i.tokens for i in res.instances) == res.total_tokens
        resumed = [ev for ev in res.trace if ev[0] == "resume"]
        if res.total_retries:
            assert resumed or any(r.retries for r in res.records)

    def test_generation_report_failure_rows(self, default_accel):
        reqs = self._gen_reqs(default_accel, qps=25, duration=400)
        rep = summarize_generation(GenerationClusterSimulator(
            default_accel, 2, slots=4,
            failures=FailurePlan(120.0, 20.0, seed=41)).run(reqs))
        assert rep.availability is not None
        rendered = render_generation_report(rep)
        assert "availability" in rendered
        assert "failures" in rep.as_dict()
