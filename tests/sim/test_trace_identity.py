"""Trace-identity goldens: kernel engines == legacy loops, byte for byte.

Six seeded scenarios (Poisson/bursty/diurnal x serve/generate) run
through both the preserved legacy closure loops (``run_legacy``) and
the unified-kernel engines (``run``).  Each scenario's rendered report
must be byte-identical between the two engines *and* equal to the
committed golden under ``tests/goldens/`` — so neither engine can
drift, and a diff in either shows up as a readable report diff.

Each scenario also runs a third time with the full observability stack
attached (trace recorder + metrics sampler + SLO watchdog + kernel
profiler): the observed run must be byte-identical to the bare kernel
run, pinning the ``repro.obs`` contract that observation never
perturbs.

Regenerate after an intentional behavior change with::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest tests/sim/test_trace_identity.py
"""

import os
from pathlib import Path

import pytest

from repro.obs import (
    KernelProfiler,
    MetricsSampler,
    TraceRecorder,
    Watchdog,
    compose,
)
from repro.serving import (
    BurstyArrivals,
    DiurnalArrivals,
    LengthSampler,
    ModelMix,
    PoissonArrivals,
    attach_generation_lengths,
    render_generation_report,
    render_serving_report,
    summarize,
    summarize_generation,
    timeout,
)
from repro.serving.cluster import ClusterSimulator
from repro.serving.generation import GenerationClusterSimulator

GOLDENS = Path(__file__).parent.parent / "goldens"

MIX = ModelMix({
    "model2-lhc-trigger": 3.0,
    "model1-peng-isqed21": 2.0,
    "model3-efa-trans": 1.0,
})

#: scenario name -> arrival-process factory (fixed seeds: these define
#: the goldens).
SCENARIOS = {
    "poisson": lambda: PoissonArrivals(500, MIX, seed=101),
    "bursty": lambda: BurstyArrivals(400, MIX, seed=202,
                                     burst_factor=5.0, dwell_ms=80.0),
    "diurnal": lambda: DiurnalArrivals(600, MIX, seed=303,
                                       period_ms=600.0),
}
GEN_SCENARIOS = {
    "poisson": lambda: PoissonArrivals(30, MIX, seed=404),
    "bursty": lambda: BurstyArrivals(25, MIX, seed=505, dwell_ms=120.0),
    "diurnal": lambda: DiurnalArrivals(40, MIX, seed=606,
                                       period_ms=500.0),
}


def _check_golden(name: str, rendered: str) -> None:
    path = GOLDENS / name
    if os.environ.get("REPRO_REGEN_GOLDENS"):
        path.parent.mkdir(exist_ok=True)
        path.write_text(rendered)
    assert path.exists(), (
        f"golden {name} missing — run with REPRO_REGEN_GOLDENS=1 to "
        "create it, then commit the file")
    assert rendered == path.read_text(), (
        f"rendered report diverged from golden {name}; if the change "
        "is intentional, regenerate with REPRO_REGEN_GOLDENS=1")


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_serve_trace_identity(default_accel, scenario):
    """serve: legacy and kernel reports are byte-identical + golden."""
    requests = SCENARIOS[scenario]().generate(600.0)
    assert requests, "scenario generated an empty workload"
    sim = ClusterSimulator(
        default_accel, 3, scheduler="model-affinity",
        batching=timeout(4, 2.0), reprogram_latency_ms=5.0)
    legacy = sim.run_legacy(requests)
    kernel = sim.run(requests)
    assert legacy.trace == kernel.trace
    assert legacy.records == kernel.records
    assert legacy.queue_samples == kernel.queue_samples
    assert legacy.instances == kernel.instances
    tracer, sampler = TraceRecorder(), MetricsSampler(grid_ms=25.0)
    watchdog = Watchdog(slo_ms=50.0)
    observed = sim.run(requests, observer=compose(tracer, sampler, watchdog),
                       profiler=KernelProfiler())
    assert observed.trace == kernel.trace
    assert observed.records == kernel.records
    assert observed.queue_samples == kernel.queue_samples
    assert observed.instances == kernel.instances
    assert tracer.events and sampler.registry.series
    assert watchdog.completions == len(observed.records)
    title = f"Golden: serve/{scenario}"
    rep_legacy = render_serving_report(summarize(legacy, slo_ms=50.0),
                                       title=title)
    rep_kernel = render_serving_report(summarize(kernel, slo_ms=50.0),
                                       title=title)
    rep_observed = render_serving_report(summarize(observed, slo_ms=50.0),
                                         title=title)
    assert rep_legacy == rep_kernel
    assert rep_observed == rep_kernel
    _check_golden(f"serve_{scenario}.txt", rep_kernel + "\n")


@pytest.mark.parametrize("scenario", sorted(GEN_SCENARIOS))
def test_generate_trace_identity(default_accel, scenario):
    """generate: legacy and kernel reports byte-identical + golden."""
    arrivals = GEN_SCENARIOS[scenario]().generate(500.0)
    assert arrivals, "scenario generated an empty workload"
    requests = attach_generation_lengths(
        arrivals,
        LengthSampler("uniform", 8, 24),
        LengthSampler("geometric", 4, 48, mean_extra=10.0),
        seed=77, max_total=default_accel.synth.max_seq_len)
    sim = GenerationClusterSimulator(
        default_accel, 2, slots=4, scheduler="least-loaded",
        reprogram_latency_ms=3.0)
    legacy = sim.run_legacy(requests)
    kernel = sim.run(requests)
    assert legacy.trace == kernel.trace
    assert legacy.records == kernel.records
    assert legacy.queue_samples == kernel.queue_samples
    assert legacy.instances == kernel.instances
    tracer, sampler = TraceRecorder(), MetricsSampler(grid_ms=25.0)
    watchdog = Watchdog(slo_ms=40.0)
    observed = sim.run(requests, observer=compose(tracer, sampler, watchdog),
                       profiler=KernelProfiler())
    assert observed.trace == kernel.trace
    assert observed.records == kernel.records
    assert observed.queue_samples == kernel.queue_samples
    assert observed.instances == kernel.instances
    assert tracer.events and sampler.registry.series
    assert watchdog.completions == len(observed.records)
    title = f"Golden: generate/{scenario}"
    rep_legacy = render_generation_report(
        summarize_generation(legacy, ttft_slo_ms=40.0, tpot_slo_ms=2.0),
        title=title)
    rep_kernel = render_generation_report(
        summarize_generation(kernel, ttft_slo_ms=40.0, tpot_slo_ms=2.0),
        title=title)
    rep_observed = render_generation_report(
        summarize_generation(observed, ttft_slo_ms=40.0, tpot_slo_ms=2.0),
        title=title)
    assert rep_legacy == rep_kernel
    assert rep_observed == rep_kernel
    _check_golden(f"generate_{scenario}.txt", rep_kernel + "\n")


def test_goldens_directory_complete():
    """Exactly the six scenario goldens are committed (no strays)."""
    expected = {f"serve_{s}.txt" for s in SCENARIOS}
    expected |= {f"generate_{s}.txt" for s in GEN_SCENARIOS}
    present = {p.name for p in GOLDENS.glob("*.txt")}
    assert present == expected, (
        f"goldens drifted: missing {sorted(expected - present)}, "
        f"stray {sorted(present - expected)}")
