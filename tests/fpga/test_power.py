"""Unit tests for the power/energy model."""

import pytest

from repro.fpga import GPU_CPU_TDP_W, PowerModel, PowerReport
from repro.hls import ResourceEstimate


@pytest.fixture()
def resources():
    return ResourceEstimate(dsps=3612, luts=994412, ffs=704380, bram18k=176)


class TestPowerModel:
    def test_dynamic_scales_with_clock(self, resources):
        m = PowerModel()
        assert m.dynamic_w(resources, 200.0) == pytest.approx(
            2 * m.dynamic_w(resources, 100.0))

    def test_dynamic_scales_with_resources(self, resources):
        m = PowerModel()
        half = ResourceEstimate(dsps=1806, luts=497206, ffs=352190,
                                bram18k=88)
        assert m.dynamic_w(resources, 200.0) == pytest.approx(
            2 * m.dynamic_w(half, 200.0), rel=1e-6)

    def test_total_includes_static_and_hbm(self, resources):
        m = PowerModel()
        base = m.total_w(resources, 200.0, achieved_gbps=0.0)
        with_mem = m.total_w(resources, 200.0, achieved_gbps=100.0)
        assert base >= m.static_w
        assert with_mem == pytest.approx(base + 100.0 * m.hbm_w_per_gbps)

    def test_published_design_plausible_wattage(self, resources):
        """A 40%-DSP U55C design should land in the 10-40 W band."""
        w = PowerModel().total_w(resources, 200.0, achieved_gbps=0.5)
        assert 8.0 < w < 40.0

    def test_validation(self, resources):
        m = PowerModel()
        with pytest.raises(ValueError):
            m.dynamic_w(resources, 0.0)
        with pytest.raises(ValueError):
            m.total_w(resources, 200.0, achieved_gbps=-1.0)


class TestPowerReport:
    def test_evaluate(self, resources):
        rep = PowerReport.evaluate(PowerModel(), resources, 200.0,
                                   latency_s=0.2, gops=55.0)
        assert rep.total_w == pytest.approx(rep.static_w + rep.dynamic_w)
        assert rep.energy_per_inference_j == pytest.approx(rep.total_w * 0.2)
        assert rep.gops_per_w == pytest.approx(55.0 / rep.total_w)

    def test_fpga_beats_gpu_tdp_on_efficiency(self, resources):
        """ProTEA's GOPS/W must exceed the Titan XP's GOPS/TDP on the
        model #2 workload — the energy story behind Table III."""
        rep = PowerReport.evaluate(PowerModel(), resources, 200.0,
                                   latency_s=0.653e-3, gops=3.17)
        titan_gops_per_w = 1.95 / GPU_CPU_TDP_W["NVIDIA Titan XP GPU"]
        assert rep.gops_per_w > titan_gops_per_w

    def test_validation(self, resources):
        with pytest.raises(ValueError):
            PowerReport.evaluate(PowerModel(), resources, 200.0, 0.0, 1.0)


def test_tdp_table_complete():
    for name in ("NVIDIA Titan XP GPU", "Jetson TX2 GPU",
                 "NVIDIA RTX 3060 GPU", "Intel i5-5257U CPU",
                 "Intel i5-4460 CPU"):
        assert GPU_CPU_TDP_W[name] > 0
