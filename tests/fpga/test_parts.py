"""Unit tests for the part catalog."""

import pytest

from repro.fpga import ALVEO_U55C, PART_CATALOG, ZCU102, get_part


class TestCatalog:
    def test_all_paper_parts_present(self):
        for name in ("Alveo U55C", "Alveo U200", "Alveo U250",
                     "ZCU102", "VCU118"):
            assert name in PART_CATALOG

    def test_get_part(self):
        assert get_part("Alveo U55C") is ALVEO_U55C

    def test_get_part_unknown(self):
        with pytest.raises(KeyError, match="Alveo U55C"):
            get_part("Virtex-II Pro")

    def test_u55c_datasheet_numbers(self):
        """The utilization percentages of Table I depend on these."""
        assert ALVEO_U55C.dsp == 9024
        assert ALVEO_U55C.lut == 1303680
        assert ALVEO_U55C.ff == 2607360
        assert ALVEO_U55C.hbm_channels == 32

    def test_table1_percentages_consistent(self):
        """3612/9024 DSP = 40%, 993107 LUT = 76%, 704115 FF = 27%."""
        assert round(100 * 3612 / ALVEO_U55C.dsp) == 40
        assert round(100 * 993107 / ALVEO_U55C.lut) == 76
        assert round(100 * 704115 / ALVEO_U55C.ff) == 27

    def test_embedded_part_smaller_than_datacenter(self):
        assert ZCU102.dsp < ALVEO_U55C.dsp
        assert ZCU102.hbm_bandwidth_gbps < ALVEO_U55C.hbm_bandwidth_gbps
