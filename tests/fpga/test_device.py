"""Unit tests for FPGA device models."""

import pytest

from repro.fpga import ALVEO_U55C, FPGADevice, OverUtilizationError


class TestCapacity:
    def test_lookup(self):
        assert ALVEO_U55C.capacity("dsp") == 9024

    def test_unknown_resource(self):
        with pytest.raises(KeyError):
            ALVEO_U55C.capacity("qubits")


class TestUtilization:
    def test_percentages(self):
        u = ALVEO_U55C.utilization({"dsp": 4512, "lut": 0})
        assert u.percent["dsp"] == pytest.approx(50.0)

    def test_check_fit_passes(self):
        ALVEO_U55C.check_fit({"dsp": 9024})  # exactly full is OK

    def test_check_fit_raises_with_detail(self):
        with pytest.raises(OverUtilizationError, match="dsp"):
            ALVEO_U55C.check_fit({"dsp": 9025})

    def test_check_fit_custom_limit(self):
        with pytest.raises(OverUtilizationError):
            ALVEO_U55C.check_fit({"dsp": 8000}, limit_pct=80.0)

    def test_str_is_informative(self):
        u = ALVEO_U55C.utilization({"dsp": 3612})
        assert "dsp" in str(u) and "40" in str(u)


def test_custom_device():
    dev = FPGADevice("toy", dsp=10, lut=100, ff=200, bram18k=4, uram=0,
                     hbm_bandwidth_gbps=1.0, hbm_channels=1)
    dev.check_fit({"dsp": 10})
    with pytest.raises(OverUtilizationError):
        dev.check_fit({"lut": 101})
