"""The docs layer must not drift from the code it documents.

``docs/cli.md`` promises a reference row for every CLI subcommand;
these tests hold both directions of that promise (documented =>
exists, exists => documented), and keep the architecture page and the
examples index in sync with the package and file layout.
"""

import argparse
import re
from pathlib import Path

from repro.cli import build_parser

REPO = Path(__file__).parent.parent
DOCS = REPO / "docs"


def _cli_subcommands() -> set:
    parser = build_parser()
    action = next(a for a in parser._actions
                  if isinstance(a, argparse._SubParsersAction))
    return set(action.choices)


def _documented_subcommands() -> set:
    """Names from the 'Subcommands' table rows of docs/cli.md."""
    text = (DOCS / "cli.md").read_text()
    table = text.split("## Subcommands", 1)[1]
    # Stop at the next section so flag tables don't leak in.
    table = table.split("\n## ", 1)[0]
    names = re.findall(r"^\| `([a-z0-9]+)` \|", table, flags=re.M)
    return set(names)


class TestCliReference:
    def test_every_documented_subcommand_exists(self):
        documented = _documented_subcommands()
        assert documented, "docs/cli.md Subcommands table parsed empty"
        missing = documented - _cli_subcommands()
        assert not missing, (
            f"docs/cli.md documents {sorted(missing)} but the parser "
            "does not provide them")

    def test_every_subcommand_is_documented(self):
        undocumented = _cli_subcommands() - _documented_subcommands()
        assert not undocumented, (
            f"CLI provides {sorted(undocumented)} but docs/cli.md has no "
            "Subcommands row for them")

    def test_dse_flags_documented(self):
        """The headline dse flags appear in the reference."""
        text = (DOCS / "cli.md").read_text()
        for flag in ("--jobs", "--pareto", "--resume", "--strategy",
                     "--objectives", "--cache-dir"):
            assert flag in text, f"docs/cli.md missing {flag}"

    def test_every_serving_flag_documented(self):
        """Every serve/generate parser flag has a cli.md mention —
        the scenario flags (--heterogeneous/--failures/--priority)
        must not drift out of the reference."""
        text = (DOCS / "cli.md").read_text()
        parser = build_parser()
        action = next(a for a in parser._actions
                      if isinstance(a, argparse._SubParsersAction))
        for sub in ("serve", "generate"):
            for act in action.choices[sub]._actions:
                for opt in act.option_strings:
                    if opt.startswith("--"):
                        assert opt in text, (
                            f"docs/cli.md missing {sub} flag {opt}")

    def test_failure_objectives_documented(self):
        text = (DOCS / "cli.md").read_text()
        for name in ("availability", "p99_degraded_ms"):
            assert name in text, f"docs/cli.md missing objective {name}"


class TestArchitecture:
    def test_every_package_described(self):
        text = (DOCS / "architecture.md").read_text()
        packages = sorted(
            p.parent.name
            for p in (REPO / "src" / "repro").glob("*/__init__.py"))
        assert packages, "no packages found under src/repro"
        for package in packages:
            assert f"repro.{package}" in text, (
                f"docs/architecture.md does not mention repro.{package}")

    def test_readme_links_docs(self):
        readme = (REPO / "README.md").read_text()
        assert "docs/architecture.md" in readme
        assert "docs/cli.md" in readme


class TestExamplesIndex:
    def test_every_example_indexed(self):
        index = (REPO / "examples" / "README.md").read_text()
        examples = sorted(p.name for p in (REPO / "examples").glob("*.py"))
        assert examples
        for example in examples:
            assert f"`{example}`" in index, (
                f"examples/README.md does not index {example}")

    def test_no_stale_index_entries(self):
        index = (REPO / "examples" / "README.md").read_text()
        present = {p.name for p in (REPO / "examples").glob("*.py")}
        indexed = set(re.findall(r"`([a-z0-9_]+\.py)`", index))
        stale = indexed - present
        assert not stale, f"examples/README.md indexes missing {stale}"
