"""Unit tests for the quantization-accuracy harness."""

import math

import numpy as np
import pytest

from repro.analysis import evaluate_accuracy, sqnr_db


class TestSqnr:
    def test_known_ratio(self):
        sig = np.ones(100)
        err = np.full(100, 0.1)
        assert sqnr_db(sig, err) == pytest.approx(20.0)

    def test_zero_error_is_infinite(self):
        assert sqnr_db(np.ones(4), np.zeros(4)) == math.inf

    def test_zero_signal(self):
        assert sqnr_db(np.zeros(4), np.ones(4)) == -math.inf


class TestEvaluateAccuracy:
    def test_report_structure(self, small_accel, small_encoder, small_input):
        report = evaluate_accuracy(small_accel, small_encoder, small_input)
        assert len(report.stages) == 3 * small_accel.config.num_layers
        assert report.output_rms > 0
        assert report.output_sqnr_db > 10  # 8-bit still usable

    def test_fix16_far_better_than_fix8(self, small_accel, small_accel_fix16,
                                        small_encoder, small_input):
        r8 = evaluate_accuracy(small_accel, small_encoder, small_input)
        r16 = evaluate_accuracy(small_accel_fix16, small_encoder, small_input)
        assert r16.output_sqnr_db > r8.output_sqnr_db + 10

    def test_error_accumulates_across_layers(self, small_accel,
                                             small_encoder, small_input):
        """Later layers should not be dramatically more accurate than
        earlier ones — the noise budget compounds."""
        report = evaluate_accuracy(small_accel, small_encoder, small_input)
        outs = [s for s in report.stages if s.stage == "layer_output"]
        assert outs[-1].rms >= outs[0].rms * 0.5

    def test_worst_stage_lookup(self, small_accel, small_encoder,
                                small_input):
        report = evaluate_accuracy(small_accel, small_encoder, small_input)
        worst = report.worst_stage()
        assert worst.sqnr_db == min(s.sqnr_db for s in report.stages)

    def test_by_layer_filter(self, small_accel, small_encoder, small_input):
        report = evaluate_accuracy(small_accel, small_encoder, small_input)
        assert len(report.by_layer(0)) == 3
        assert all(s.layer == 0 for s in report.by_layer(0))
