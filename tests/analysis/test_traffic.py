"""Unit tests for the memory-traffic / roofline analysis."""

import pytest

from repro.analysis import analyze_traffic
from repro.nn import BERT_VARIANT


@pytest.fixture(scope="module")
def report(default_accel):
    return analyze_traffic(default_accel, BERT_VARIANT)


class TestTrafficAccounting:
    def test_weight_bytes_exact(self, report):
        # 12 layers x (3d² + d² + 2·d·4d) bytes at 8-bit.
        d = 768
        expected = 12 * (4 * d * d + 8 * d * d)
        assert report.weight_bytes == expected

    def test_activation_traffic_is_io_only(self, report):
        assert report.activation_bytes == 2 * 64 * 768
        assert report.activation_bytes < report.weight_bytes / 100

    def test_totals(self, report):
        assert report.total_bytes == (report.weight_bytes
                                      + report.activation_bytes)


class TestRooflinePosition:
    def test_achieved_bandwidth_below_peak(self, report):
        assert 0 < report.achieved_gbps < report.device_peak_gbps
        assert 0 < report.bandwidth_utilization < 1

    def test_bert_is_compute_bound_on_u55c(self, report):
        """With 460 GB/s HBM and ~130 ops/byte intensity vs ~3 ops/byte
        machine balance, the design is firmly compute-bound — the
        premise behind the paper's DSP-centric optimization."""
        assert report.arithmetic_intensity > report.machine_balance
        assert report.compute_bound

    def test_intensity_value_sane(self, report):
        # 11.0 GOP / ~85 MB ≈ 130 ops per byte.
        assert 50 < report.arithmetic_intensity < 500

    def test_fix16_doubles_traffic(self, default_accel):
        from repro import ProTEA, SynthParams
        from repro.core import DatapathFormats

        accel16 = ProTEA.synthesize(SynthParams(),
                                    formats=DatapathFormats.fix16(),
                                    enforce_fit=False)
        r8 = analyze_traffic(default_accel, BERT_VARIANT)
        r16 = analyze_traffic(accel16, BERT_VARIANT)
        assert r16.weight_bytes == 2 * r8.weight_bytes
