"""Unit tests for the memory-traffic / roofline analysis."""

import pytest

from repro.analysis import analyze_traffic
from repro.nn import BERT_VARIANT


@pytest.fixture(scope="module")
def report(default_accel):
    return analyze_traffic(default_accel, BERT_VARIANT)


class TestTrafficAccounting:
    def test_weight_bytes_exact(self, report):
        # 12 layers x (3d² + d² + 2·d·4d) bytes at 8-bit.
        d = 768
        expected = 12 * (4 * d * d + 8 * d * d)
        assert report.weight_bytes == expected

    def test_activation_traffic_is_io_only(self, report):
        assert report.activation_bytes == 2 * 64 * 768
        assert report.activation_bytes < report.weight_bytes / 100

    def test_totals(self, report):
        assert report.total_bytes == (report.weight_bytes
                                      + report.activation_bytes)


class TestRooflinePosition:
    def test_achieved_bandwidth_below_peak(self, report):
        assert 0 < report.achieved_gbps < report.device_peak_gbps
        assert 0 < report.bandwidth_utilization < 1

    def test_bert_is_compute_bound_on_u55c(self, report):
        """With 460 GB/s HBM and ~130 ops/byte intensity vs ~3 ops/byte
        machine balance, the design is firmly compute-bound — the
        premise behind the paper's DSP-centric optimization."""
        assert report.arithmetic_intensity > report.machine_balance
        assert report.compute_bound

    def test_intensity_value_sane(self, report):
        # 11.0 GOP / ~85 MB ≈ 130 ops per byte.
        assert 50 < report.arithmetic_intensity < 500

    def test_fix16_doubles_traffic(self, default_accel):
        from repro import ProTEA, SynthParams
        from repro.core import DatapathFormats

        accel16 = ProTEA.synthesize(SynthParams(),
                                    formats=DatapathFormats.fix16(),
                                    enforce_fit=False)
        r8 = analyze_traffic(default_accel, BERT_VARIANT)
        r16 = analyze_traffic(accel16, BERT_VARIANT)
        assert r16.weight_bytes == 2 * r8.weight_bytes


class TestEdgeCases:
    def test_one_layer_config(self, default_accel):
        """A 1-layer model's weight traffic is exactly one layer's worth
        and its activation I/O is independent of depth."""
        from repro.nn import get_model

        cfg = get_model("model2-lhc-trigger")  # N=1, d=64, SL=20
        report = analyze_traffic(default_accel, cfg)
        d, dff = cfg.d_model, cfg.d_ff
        assert cfg.num_layers == 1
        assert report.weight_bytes == 4 * d * d + 2 * d * dff
        assert report.activation_bytes == 2 * cfg.seq_len * d
        assert report.total_bytes == (report.weight_bytes
                                      + report.activation_bytes)
        assert report.latency_s > 0

    def test_tiny_model_has_lowest_intensity(self, default_accel):
        """The LHC trigger model reuses each fetched weight the least
        (shortest sequence), but even it stays compute-bound on the
        U55C — every zoo workload sits right of the machine balance."""
        from repro.nn import MODEL_ZOO

        intensities = {
            name: analyze_traffic(default_accel, cfg).arithmetic_intensity
            for name, cfg in MODEL_ZOO.items()
        }
        assert min(intensities, key=intensities.get) == "model2-lhc-trigger"
        for cfg in MODEL_ZOO.values():
            assert analyze_traffic(default_accel, cfg).compute_bound

    def test_bandwidth_utilization_bounds_across_zoo(self, default_accel):
        """Achieved bandwidth must land strictly inside (0, peak) for
        every servable zoo model — the model never claims more traffic
        than the HBM can move in the modelled time."""
        from repro.nn import MODEL_ZOO

        for cfg in MODEL_ZOO.values():
            report = analyze_traffic(default_accel, cfg)
            assert 0 < report.achieved_gbps < report.device_peak_gbps, cfg.name
            assert 0 < report.bandwidth_utilization < 1, cfg.name

    def test_scalar_consistency(self, default_accel):
        report = analyze_traffic(default_accel, BERT_VARIANT)
        assert report.achieved_gbps == pytest.approx(
            report.total_bytes / report.latency_s / 1e9)
        assert report.bandwidth_utilization == pytest.approx(
            report.achieved_gbps / report.device_peak_gbps)
