"""Unit tests for the generic grid sweep driver."""

import pytest

from repro.analysis import grid_sweep


class TestGridSweep:
    def test_cartesian_product(self):
        results = grid_sweep({"a": [1, 2], "b": [10, 20, 30]},
                             evaluate=lambda a, b: a * b)
        assert len(results) == 6
        assert {r.value for r in results} == {10, 20, 30, 40, 60}
        assert all(r.ok for r in results)

    def test_params_recorded(self):
        results = grid_sweep({"x": [5]}, evaluate=lambda x: x + 1)
        assert results[0].params == {"x": 5}

    def test_error_propagates_by_default(self):
        def boom(x):
            raise RuntimeError("no")

        with pytest.raises(RuntimeError):
            grid_sweep({"x": [1]}, boom)

    def test_continue_on_error_records_failure(self):
        def sometimes(x):
            if x == 2:
                raise ValueError("bad corner")
            return x

        results = grid_sweep({"x": [1, 2, 3]}, sometimes,
                             continue_on_error=True)
        assert [r.ok for r in results] == [True, False, True]
        assert "bad corner" in results[1].error

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            grid_sweep({}, lambda: 1)


class TestDseBackedPath:
    """grid_sweep now fronts the repro.dse engine; the legacy contract
    (ordering, error text, result shape) must survive the delegation."""

    def test_results_in_nested_loop_order(self):
        results = grid_sweep({"a": [1, 2], "b": [10, 20]},
                             evaluate=lambda a, b: (a, b))
        assert [r.params for r in results] == [
            {"a": 1, "b": 10}, {"a": 1, "b": 20},
            {"a": 2, "b": 10}, {"a": 2, "b": 20},
        ]

    def test_runs_through_the_engine(self, monkeypatch):
        import repro.dse.engine as engine

        calls = {}
        original = engine.explore

        def spy(*args, **kwargs):
            result = original(*args, **kwargs)
            calls["strategy"] = result.strategy
            calls["n"] = len(result.results)
            return result

        monkeypatch.setattr(engine, "explore", spy)
        grid_sweep({"x": [1, 2, 3]}, evaluate=lambda x: x)
        assert calls == {"strategy": "grid", "n": 3}

    def test_error_text_keeps_type_prefix(self):
        def boom(x):
            raise KeyError("gone")

        results = grid_sweep({"x": [1]}, boom, continue_on_error=True)
        assert results[0].error == "KeyError: 'gone'"
        assert results[0].value is None

    def test_multiple_errors_recorded_independently(self):
        def picky(x):
            if x % 2:
                raise ValueError(f"odd {x}")
            return x

        results = grid_sweep({"x": [1, 2, 3, 4]}, picky,
                             continue_on_error=True)
        assert [r.ok for r in results] == [False, True, False, True]
        assert "odd 1" in results[0].error
        assert "odd 3" in results[2].error

    def test_single_axis_many_values(self):
        results = grid_sweep({"n": list(range(20))},
                             evaluate=lambda n: n * n)
        assert [r.value for r in results] == [n * n for n in range(20)]

    def test_empty_value_list_yields_empty_grid(self):
        """product() semantics: an empty axis empties the grid."""
        assert grid_sweep({"a": [1, 2], "b": []},
                          evaluate=lambda a, b: a) == []
