"""Unit tests for the generic grid sweep driver."""

import pytest

from repro.analysis import grid_sweep


class TestGridSweep:
    def test_cartesian_product(self):
        results = grid_sweep({"a": [1, 2], "b": [10, 20, 30]},
                             evaluate=lambda a, b: a * b)
        assert len(results) == 6
        assert {r.value for r in results} == {10, 20, 30, 40, 60}
        assert all(r.ok for r in results)

    def test_params_recorded(self):
        results = grid_sweep({"x": [5]}, evaluate=lambda x: x + 1)
        assert results[0].params == {"x": 5}

    def test_error_propagates_by_default(self):
        def boom(x):
            raise RuntimeError("no")

        with pytest.raises(RuntimeError):
            grid_sweep({"x": [1]}, boom)

    def test_continue_on_error_records_failure(self):
        def sometimes(x):
            if x == 2:
                raise ValueError("bad corner")
            return x

        results = grid_sweep({"x": [1, 2, 3]}, sometimes,
                             continue_on_error=True)
        assert [r.ok for r in results] == [True, False, True]
        assert "bad corner" in results[1].error

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            grid_sweep({}, lambda: 1)
