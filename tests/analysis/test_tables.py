"""Unit tests for the ASCII table renderer."""

import pytest

from repro.analysis import format_value, render_table


class TestFormatValue:
    def test_floats_get_sig_digits(self):
        assert format_value(3.14159, precision=3) == "3.14"

    def test_large_floats_compact(self):
        assert "e" in format_value(1.23e9) or len(format_value(1.23e9)) <= 10

    def test_zero(self):
        assert format_value(0.0) == "0"

    def test_ints_and_strings_passthrough(self):
        assert format_value(42) == "42"
        assert format_value("abc") == "abc"

    def test_none_and_bool(self):
        assert format_value(None) == "None"
        assert format_value(True) == "True"


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len({len(l) for l in lines}) == 1  # rectangular

    def test_title_and_separator(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.startswith("My Table")
        assert "---" in out or "=" in out

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out
