"""Unit tests for workload op counting and throughput metrics."""

import pytest

from repro.analysis import (
    encoder_layer_ops,
    encoder_ops,
    gops,
    gops_per_dsp,
    speedup,
)
from repro.nn import BERT_VARIANT, TransformerConfig


class TestOpCounts:
    def test_bert_variant_total(self):
        """24·SL·d² + 4·SL²·d per layer, 12 layers ≈ 11.0 GOP."""
        total = encoder_ops(BERT_VARIANT)
        expected = 12 * (24 * 64 * 768 ** 2 + 4 * 64 ** 2 * 768)
        assert total == expected

    def test_breakdown_sums(self):
        b = encoder_layer_ops(BERT_VARIANT)
        assert b.total == (b.qkv + b.scores + b.attention_apply
                           + b.projection + b.ffn)

    def test_ffn_dominates(self):
        b = encoder_layer_ops(BERT_VARIANT)
        assert b.ffn > b.qkv > b.scores

    def test_quadratic_in_d_model(self):
        small = encoder_ops(TransformerConfig("a", 256, 8, 1, 64))
        big = encoder_ops(TransformerConfig("b", 512, 8, 1, 64))
        assert big / small == pytest.approx(4.0, rel=0.05)

    def test_custom_d_ff_respected(self):
        narrow = TransformerConfig("n", 256, 8, 1, 64, d_ff=256)
        wide = TransformerConfig("w", 256, 8, 1, 64, d_ff=1024)
        assert (encoder_layer_ops(wide).ffn
                == 4 * encoder_layer_ops(narrow).ffn)


class TestThroughput:
    def test_gops(self):
        assert gops(BERT_VARIANT, 1.0) == pytest.approx(
            encoder_ops(BERT_VARIANT) / 1e9)

    def test_gops_requires_positive_latency(self):
        with pytest.raises(ValueError):
            gops(BERT_VARIANT, 0.0)

    def test_gops_per_dsp_scaled(self):
        assert gops_per_dsp(79.0, 3612) == pytest.approx(21.87, rel=1e-3)
        assert gops_per_dsp(79.0, 3612, scaled=False) == pytest.approx(
            0.02187, rel=1e-3)

    def test_gops_per_dsp_validation(self):
        with pytest.raises(ValueError):
            gops_per_dsp(1.0, 0)

    def test_speedup_convention(self):
        assert speedup(10.0, 5.0) == 2.0  # new twice as fast
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)

    def test_paper_table2_gops_per_dsp_row(self):
        """[25]: 279 GOPS on 1024 DSPs → 272 (GOPS/DSP)x1000."""
        assert gops_per_dsp(279.0, 1024) == pytest.approx(272.46, rel=1e-3)
