"""Unit tests for array→memory binding."""

import pytest

from repro.hls import (
    ArrayPartition,
    ArraySpec,
    PartitionKind,
    PortConflictError,
    fully_partitioned,
)


class TestBanking:
    def test_unpartitioned_single_bank(self):
        spec = ArraySpec("a", (64, 64), 8)
        assert spec.banks == 1

    def test_complete_partition_dim2(self):
        spec = fully_partitioned("w", (96, 64), dim=2)
        assert spec.banks == 64

    def test_multi_dim_partitions_multiply(self):
        spec = ArraySpec("a", (16, 16), 8, (
            ArrayPartition(PartitionKind.CYCLIC, factor=4, dim=1),
            ArrayPartition(PartitionKind.CYCLIC, factor=2, dim=2),
        ))
        assert spec.banks == 8

    def test_banks_capped_by_elements(self):
        spec = ArraySpec("a", (2, 2), 8, (
            ArrayPartition(PartitionKind.CYCLIC, factor=100, dim=1),
        ))
        assert spec.banks <= 4

    def test_partition_dim_validated(self):
        with pytest.raises(ValueError):
            ArraySpec("a", (4,), 8,
                      (ArrayPartition(PartitionKind.CYCLIC, 2, dim=3),))


class TestStorageBinding:
    def test_small_banks_bind_to_lutram(self):
        # 96x64 8-bit fully partitioned: 768 bits/bank ≤ 1024 → LUTRAM.
        spec = fully_partitioned("w", (96, 64), dim=2)
        b = spec.bind()
        assert b.storage == "lutram"
        assert b.bram18k == 0
        assert b.lutram_luts > 0

    def test_large_banks_bind_to_bram(self):
        spec = ArraySpec("big", (1024, 64), 8)
        b = spec.bind()
        assert b.storage == "bram"
        assert b.bram18k >= 1024 * 64 * 8 // (18 * 1024)

    def test_bank_over_18k_uses_multiple_brams(self):
        spec = ArraySpec("huge", (8192,), 8)  # 64 Kbit in one bank
        assert spec.bind().bram18k == 4


class TestPorts:
    def test_parallel_access_within_budget(self):
        spec = fully_partitioned("w", (96, 64), dim=2)
        spec.check_parallel_access(64)  # one per bank — fine
        spec.check_parallel_access(128)  # two ports per bank — fine

    def test_port_conflict_detected(self):
        spec = ArraySpec("w", (96, 64), 8)  # 1 bank
        with pytest.raises(PortConflictError):
            spec.check_parallel_access(3)

    def test_required_ii(self):
        spec = ArraySpec("w", (96, 64), 8)  # 1 bank, 2 ports
        assert spec.required_ii(2) == 1
        assert spec.required_ii(8) == 4

    def test_paper_banking_supports_unroll(self):
        """The QKV weight buffer partitioning must feed TS_MHA=64 MACs
        at II=1 — the design invariant of Section IV-A."""
        spec = fully_partitioned("wq", (96, 64), dim=2)
        assert spec.required_ii(64) == 1


class TestValidation:
    def test_bad_shape(self):
        with pytest.raises(ValueError):
            ArraySpec("a", (0, 4), 8)

    def test_bad_bits(self):
        with pytest.raises(ValueError):
            ArraySpec("a", (4,), 0)
