"""Unit tests for the Fmax model."""

import pytest

from repro.hls import DEFAULT_TIMING, EnginePath, TimingModel
from repro.hls.timing import tile_regularity


class TestPathDelay:
    def test_sweet_spot_is_base_delay(self):
        p = EnginePath("e", width=64, iters=12, width_ref=64, iters_ref=12)
        assert DEFAULT_TIMING.path_delay_ns(p) == DEFAULT_TIMING.t_base_ns

    def test_below_reference_is_free(self):
        p = EnginePath("e", width=16, iters=4, width_ref=64, iters_ref=12)
        assert DEFAULT_TIMING.path_delay_ns(p) == DEFAULT_TIMING.t_base_ns

    def test_wide_unroll_penalized(self):
        narrow = EnginePath("n", 64, 12)
        wide = EnginePath("w", 256, 12)
        assert (DEFAULT_TIMING.path_delay_ns(wide)
                > DEFAULT_TIMING.path_delay_ns(narrow))

    def test_many_iters_penalized(self):
        few = EnginePath("f", 64, 12)
        many = EnginePath("m", 64, 48)
        assert (DEFAULT_TIMING.path_delay_ns(many)
                > DEFAULT_TIMING.path_delay_ns(few))

    def test_irregular_and_unaligned_penalties(self):
        base = EnginePath("b", 64, 12)
        irr = EnginePath("i", 64, 12, irregular=True)
        una = EnginePath("u", 64, 12, unaligned=True)
        t = DEFAULT_TIMING
        assert t.path_delay_ns(irr) == pytest.approx(
            t.path_delay_ns(base) + t.t_irregular_ns)
        assert t.path_delay_ns(una) == pytest.approx(
            t.path_delay_ns(base) + t.t_unaligned_ns)

    def test_invalid_path_rejected(self):
        with pytest.raises(ValueError):
            EnginePath("bad", width=0, iters=1)


class TestFmax:
    def test_slowest_engine_decides(self):
        fast = EnginePath("f", 64, 12)
        slow = EnginePath("s", 512, 12, width_ref=64)
        fmax = DEFAULT_TIMING.fmax_mhz([fast, slow])
        assert fmax == pytest.approx(
            1000.0 / DEFAULT_TIMING.path_delay_ns(slow))

    def test_ceiling_applied(self):
        tm = TimingModel(t_base_ns=1.0, ceiling_mhz=300.0)
        p = EnginePath("e", 64, 12)
        assert tm.fmax_mhz([p]) == 300.0

    def test_published_optimum_hits_200mhz(self):
        """TS_MHA=64 (12 tiles) + TS_FFN=128 (6 tiles) → 200 MHz."""
        paths = [
            EnginePath("qkv", 64, 12, width_ref=64, iters_ref=12),
            EnginePath("ffn1", 128, 6, width_ref=128, iters_ref=6),
            EnginePath("ffn3", 512, 6, width_ref=512, iters_ref=6),
        ]
        assert DEFAULT_TIMING.fmax_mhz(paths) == pytest.approx(200.0)

    def test_per_engine_diagnostics(self):
        paths = [EnginePath("a", 64, 12), EnginePath("b", 256, 12)]
        per = DEFAULT_TIMING.per_engine_mhz(paths)
        assert per["a"] > per["b"]


class TestTileRegularity:
    def test_divisor_regular(self):
        assert tile_regularity(768, 128) == {
            "irregular": False, "unaligned": False}

    def test_non_divisor_irregular(self):
        assert tile_regularity(768, 154)["irregular"]

    def test_non_divisor_non_pow2_unaligned(self):
        assert tile_regularity(768, 154)["unaligned"]

    def test_power_of_two_always_aligned(self):
        assert not tile_regularity(768, 16)["unaligned"]

    def test_64_multiple_aligned(self):
        assert not tile_regularity(768, 192)["unaligned"]
