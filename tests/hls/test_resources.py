"""Unit tests for resource aggregation."""

from repro.hls import (
    Body,
    Loop,
    Pipeline,
    ResourceEstimate,
    Statement,
    Unroll,
    estimate_loop_resources,
    fully_partitioned,
    static_infrastructure,
    walk_statements,
)

MAC = Statement("mac", depth=4, dsps=1)


class TestWalkStatements:
    def test_unrolled_instances(self):
        inner = Loop("i", 8, [MAC], unroll=Unroll(None))
        found = dict()
        for stmt, inst in walk_statements(inner):
            found[stmt.name] = inst
        assert found["mac"] == 8

    def test_pipeline_implicitly_unrolls_inner(self):
        inner = Loop("i", 8, [MAC])  # no explicit unroll
        outer = Loop("o", 100, [inner], pipeline=Pipeline(ii=1))
        insts = [i for _, i in walk_statements(outer)]
        assert insts == [8]

    def test_sequential_loop_shares_hardware(self):
        """A non-pipelined, non-unrolled loop reuses one instance."""
        lp = Loop("s", 100, [MAC])
        insts = [i for _, i in walk_statements(lp)]
        assert insts == [1]

    def test_nested_unroll_multiplies(self):
        inner = Loop("i", 4, [MAC], unroll=Unroll(None))
        outer = Loop("o", 3, [inner], unroll=Unroll(None))
        insts = [i for _, i in walk_statements(outer)]
        assert insts == [12]


class TestEstimates:
    def test_pe_count_equals_mac_instances(self):
        inner = Loop("i", 64, [MAC, MAC, MAC])
        outer = Loop("o", 96, [inner], pipeline=Pipeline(ii=1))
        est = estimate_loop_resources(outer)
        assert est.dsps == 192
        assert est.pes == 192
        assert est.luts > 0  # per-PE overhead applied

    def test_arrays_add_memory(self):
        lp = Loop("o", 4, [MAC])
        est = estimate_loop_resources(
            lp, arrays=[fully_partitioned("w", (96, 64), dim=2)])
        assert est.banks == 64

    def test_addition_merges_breakdown(self):
        a = ResourceEstimate(dsps=1, breakdown={"x": 1})
        b = ResourceEstimate(dsps=2, breakdown={"x": 2, "y": 2})
        c = a + b
        assert c.dsps == 3
        assert c.breakdown == {"x": 3, "y": 2}

    def test_scaled(self):
        a = ResourceEstimate(dsps=10, luts=5, banks=2, pes=10,
                             breakdown={"e": 10})
        s = a.scaled(8)
        assert s.dsps == 80
        assert s.breakdown["e"] == 80

    def test_as_dict_keys_match_device_resources(self):
        from repro.fpga import ALVEO_U55C

        est = static_infrastructure()
        for key in est.as_dict():
            ALVEO_U55C.capacity(key)  # must not raise

    def test_body_estimate(self):
        b = Body("e", [Loop("l", 4, [MAC], unroll=Unroll(None))])
        assert estimate_loop_resources(b).dsps == 4
