"""Unit tests for pragma descriptors."""

import pytest

from repro.hls import ArrayPartition, PartitionKind, Pipeline, Unroll


class TestPipeline:
    def test_default_ii(self):
        assert Pipeline().ii == 1

    def test_invalid_ii(self):
        with pytest.raises(ValueError):
            Pipeline(ii=0)

    def test_off_flag(self):
        assert Pipeline(off=True).off


class TestUnroll:
    def test_complete_unroll_instances(self):
        assert Unroll(None).instances(17) == 17

    def test_partial_unroll_capped_at_trip(self):
        assert Unroll(8).instances(5) == 5
        assert Unroll(8).instances(100) == 8

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            Unroll(0)


class TestArrayPartition:
    def test_cyclic_banks(self):
        p = ArrayPartition(PartitionKind.CYCLIC, factor=4, dim=1)
        assert p.banks((16, 8)) == 4

    def test_factor_capped_by_extent(self):
        p = ArrayPartition(PartitionKind.CYCLIC, factor=100, dim=2)
        assert p.banks((16, 8)) == 8

    def test_complete_single_dim(self):
        p = ArrayPartition(PartitionKind.COMPLETE, dim=2)
        assert p.banks((16, 8)) == 8

    def test_complete_all_dims(self):
        p = ArrayPartition(PartitionKind.COMPLETE, dim=0)
        assert p.banks((4, 4)) == 16

    def test_dim0_only_for_complete(self):
        p = ArrayPartition(PartitionKind.BLOCK, factor=2, dim=0)
        with pytest.raises(ValueError):
            p.banks((4, 4))

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            ArrayPartition(factor=0)
