"""Unit tests for the loop-nest IR itself (construction + traversal)."""

import pytest

from repro.hls import (
    MAC_STATEMENT,
    Body,
    Loop,
    Pipeline,
    Statement,
    Unroll,
    walk_statements,
)


class TestStatement:
    def test_mac_statement_constants(self):
        assert MAC_STATEMENT.dsps == 1
        assert MAC_STATEMENT.depth >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Statement("bad", depth=0)
        with pytest.raises(ValueError):
            Statement("bad", dsps=-1)


class TestLoopConstruction:
    def test_negative_trip_rejected(self):
        with pytest.raises(ValueError):
            Loop("l", trip=-1)

    def test_pipeline_off_plus_unroll_rejected(self):
        with pytest.raises(ValueError):
            Loop("l", 4, pipeline=Pipeline(off=True), unroll=Unroll(2))

    def test_accessors(self):
        inner = Loop("i", 2)
        lp = Loop("o", 4, body=[inner, MAC_STATEMENT])
        assert lp.subloops() == [inner]
        assert lp.statements() == [MAC_STATEMENT]

    def test_validate_recurses(self):
        lp = Loop("o", 4, body=[Loop("i", 2)])
        lp.validate()  # must not raise

    def test_body_validate(self):
        Body("e", [Loop("l", 1)]).validate()


class TestWalkEdgeCases:
    def test_empty_loop_yields_nothing(self):
        assert list(walk_statements(Loop("e", 8))) == []

    def test_deeply_nested_pipeline_unrolls_transitively(self):
        """Pipeline on the outer loop unrolls *all* inner levels."""
        innermost = Loop("a", 2, [MAC_STATEMENT])
        mid = Loop("b", 3, [innermost])
        outer = Loop("c", 100, [mid], pipeline=Pipeline(ii=1))
        insts = [i for _, i in walk_statements(outer)]
        assert insts == [6]

    def test_explicit_partial_unroll_respected_under_pipeline(self):
        inner = Loop("a", 8, [MAC_STATEMENT], unroll=Unroll(2))
        outer = Loop("c", 10, [inner], pipeline=Pipeline(ii=1))
        insts = [i for _, i in walk_statements(outer)]
        assert insts == [2]

    def test_statement_before_and_after_subloop(self):
        s1 = Statement("pre", depth=1, dsps=1)
        s2 = Statement("post", depth=1, dsps=1)
        lp = Loop("o", 4, body=[s1, Loop("i", 3, [MAC_STATEMENT],
                                         unroll=Unroll(None)), s2])
        found = {stmt.name: inst for stmt, inst in walk_statements(lp)}
        assert found == {"pre": 1, "post": 1, "mac": 3}
