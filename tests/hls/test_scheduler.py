"""Unit + property tests for the loop-nest latency scheduler.

The key identities Vitis reports for the paper's engines:

* pipelined loop: ``depth + (trip-1)·II``
* sequential loop: ``trip · (body + overhead)``
* nested pipelined loop under a sequential outer loop — Algorithms 1–4.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hls import (
    Body,
    Loop,
    Pipeline,
    Statement,
    Unroll,
    schedule_body,
    schedule_loop,
)

MAC = Statement("mac", depth=4, dsps=1)


def pipelined(trip, ii=1, body=None):
    return Loop("p", trip, body or [MAC], pipeline=Pipeline(ii=ii))


class TestPipelinedLoops:
    def test_basic_formula(self):
        s = schedule_loop(pipelined(100))
        assert s.cycles == 4 + 99  # depth + (trip-1)*II

    def test_ii_scaling(self):
        s = schedule_loop(pipelined(100, ii=2))
        assert s.cycles == 4 + 99 * 2

    def test_single_iteration_is_just_depth(self):
        assert schedule_loop(pipelined(1)).cycles == 4

    @given(st.integers(1, 10_000), st.integers(1, 8))
    def test_formula_property(self, trip, ii):
        s = schedule_loop(pipelined(trip, ii=ii))
        assert s.cycles == 4 + (trip - 1) * ii

    def test_inner_loop_fully_unrolled_adds_tree_depth(self):
        inner = Loop("i", 64, [MAC])  # implicit unroll under pipeline
        outer = Loop("o", 10, [inner], pipeline=Pipeline(ii=1))
        s = schedule_loop(outer)
        # depth = MAC(4) + log2(64)=6 tree stages
        assert s.depth == 4 + 6
        assert s.cycles == 10 + s.depth - 1


class TestSequentialLoops:
    def test_basic_formula(self):
        lp = Loop("s", 10, [MAC], overhead=1)
        assert schedule_loop(lp).cycles == 10 * (4 + 1)

    def test_pipeline_off_is_sequential(self):
        lp = Loop("s", 10, [MAC], pipeline=Pipeline(off=True))
        assert schedule_loop(lp).cycles == 10 * 5

    def test_nested_sequential(self):
        inner = Loop("i", 4, [MAC])
        outer = Loop("o", 3, [inner])
        s = schedule_loop(outer)
        assert s.cycles == 3 * (4 * 5 + 1)
        assert s.detail["i"] == 20

    def test_partial_unroll_divides_trip(self):
        lp = Loop("s", 16, [MAC], unroll=Unroll(4))
        assert schedule_loop(lp).cycles == 4 * 5

    def test_zero_trip_is_free(self):
        assert schedule_loop(Loop("z", 0, [MAC])).cycles == 0


class TestFullUnroll:
    def test_becomes_parallel_tree(self):
        lp = Loop("u", 16, [MAC], unroll=Unroll(None))
        s = schedule_loop(lp)
        assert s.cycles == 4 + 4  # depth + log2(16)
        assert s.trip == 1


class TestAlgorithmNests:
    """The paper's Algorithm 1 structure: rows off / dk pipelined / tile
    unrolled — per-tile cycles = SL·(depth + dk − 1 + overhead)."""

    def test_algorithm1_shape(self):
        ts, dk, sl = 64, 96, 64
        inner = Loop("tile", ts, [MAC, MAC, MAC])
        middle = Loop("dk", dk, [inner], pipeline=Pipeline(ii=1))
        outer = Loop("rows", sl, [middle], pipeline=Pipeline(off=True))
        s = schedule_loop(outer)
        depth = 3 * 4 + 6  # three chained MACs + log2(64) tree
        assert s.cycles == sl * ((depth + dk - 1) + 1)

    @given(st.integers(1, 256), st.integers(1, 256))
    def test_monotone_in_trips(self, t1, t2):
        """More iterations never cost fewer cycles."""
        lo, hi = sorted([t1, t2])
        c_lo = schedule_loop(pipelined(lo)).cycles
        c_hi = schedule_loop(pipelined(hi)).cycles
        assert c_hi >= c_lo


class TestBody:
    def test_loops_run_back_to_back(self):
        b = Body("engine", [pipelined(10), pipelined(20)])
        s = schedule_body(b)
        assert s.cycles == (4 + 9) + (4 + 19)
        assert s.detail["p"] == 4 + 19  # same-name overwrite is fine

    def test_empty_body(self):
        assert schedule_body(Body("e", [])).cycles == 0
